"""Figures 1-4: the paper's program listings and symbolic-execution rules.

These "figures" are code, not plots; regenerating them means rendering
the programs from our AST (Figures 1, 2, 4) and exercising each rule of
the symbolic-execution judgment (Figure 3).
"""

import random

from repro.lang import ast, pretty
from repro.lang.transform import compose, desugar_program
from repro.symexec.executor import SymbolicExecutor
from repro.symexec.paths import Def, Guard
from repro.suite import get_benchmark


def test_figure1_runlength_listing(benchmark):
    bench = get_benchmark("inplace_rl")
    text = benchmark.pedantic(lambda: pretty(bench.task.program),
                              rounds=1, iterations=1)
    print("\n" + text)
    assert "while" in text and "upd(A, m, sel(A, i))" in text


def test_figure2_composed_template(benchmark):
    bench = get_benchmark("inplace_rl")

    def render():
        composed = compose(bench.task.program, bench.task.inverse)
        return pretty(desugar_program(composed))

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + text)
    # The figure's shape: the original program followed by the unknown-
    # laden inverse, in nondeterministic normal form.
    assert text.count("while (*)") == 4
    assert "[e1]" in text and "[p1]" in text
    phi = ", ".join(str(e) for e in bench.task.phi_e)
    print(f"\nPhi_e = {{{phi}}}")
    print("Phi_p = {" + ", ".join(str(p) for p in bench.task.phi_p) + "}")


def test_figure3_symbolic_execution_rules(benchmark):
    """Drive one path that exercises ASSN, ASSUME, COND, LOOP, EXIT."""
    from repro.lang.parser import parse_program

    program = desugar_program(parse_program("""
    program rules [int x; int n] {
      in(n);
      assume(n >= 0);
      x := 0;
      while (x < n) {
        x := x + 1;
      }
      if (*) { x := x + 10; } else { skip; }
      out(x);
    }
    """))

    def run():
        ex = SymbolicExecutor(program, seed_inputs=[{"n": 1}])
        return ex.find_path({}, {}, set(), random.Random(0))

    path = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(isinstance(i, Def) for i in path.items)     # ASSN
    assert any(isinstance(i, Guard) for i in path.items)   # ASSUME
    assert dict(path.final_vmap)["x"] >= 1                 # versions advanced
    print(f"\npath ({len(path.items)} items): {path}")


def test_figure4_lz77_lzw_listings(benchmark):
    def render():
        return (pretty(get_benchmark("lz77").task.program),
                pretty(get_benchmark("lzw").task.program))

    lz77_text, lzw_text = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + lz77_text + "\n\n" + lzw_text)
    assert "bestp" in lz77_text
    assert "findidx" in lzw_text and "single" in lzw_text
