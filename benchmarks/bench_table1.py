"""Table 1 — template-mining characteristics (all 14 benchmarks)."""

from repro.experiments.tables import TABLE1_HEADERS, render, table1
from repro.suite import BENCHMARK_MODULES


def test_table1_regenerates(benchmark):
    rows = benchmark(table1)
    assert len(rows) == len(BENCHMARK_MODULES)
    print("\n" + render(TABLE1_HEADERS, rows))
    by_name = {row[0]: row for row in rows}
    # Shape checks against the paper: mined sets are larger than the
    # handful of lines in each program, and the chosen subsets are small.
    for name, row in by_name.items():
        loc, mined, subset = row[1], row[3], row[5]
        assert mined >= 4, name
        assert subset <= 30, name  # curated subsets stay small (paper: 2-15)
