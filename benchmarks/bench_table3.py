"""Table 3 — validating PINS output (round-trip, BMC substitute, sketchlite)."""

import pytest

from repro.pins import build_template
from repro.validate.bmc import BmcBounds, bounded_check
from repro.validate.roundtrip import random_pool, validate_inverse
from repro.baselines.sketchlite import run_sketchlite
from conftest import FAST


@pytest.mark.parametrize("name", FAST)
def test_table3_validation(benchmark, pins_results, name):
    bench_obj, result, _elapsed = pins_results(name)
    task = bench_obj.task
    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    pool = list(task.initial_inputs)
    if task.input_gen is not None:
        pool += random_pool(task.input_gen, 30, seed=11)

    def validate():
        return [
            validate_inverse(task.program, inv, spec, pool, task.externs,
                             precondition=task.precondition)
            for inv in result.inverse_programs()
        ]

    reports = benchmark.pedantic(validate, rounds=1, iterations=1)
    correct = sum(1 for r in reports if r.ok)
    print(f"\n{name}: {correct}/{len(reports)} candidates correct, "
          f"{len(result.tests)} tests generated "
          f"(paper: {bench_obj.paper.manual_ok}, {bench_obj.paper.tests} tests)")
    assert correct >= 1


@pytest.mark.parametrize("name", ["sumi", "vector_shift"])
def test_table3_bmc_times(benchmark, pins_results, name):
    bench_obj, result, _ = pins_results(name)
    task = bench_obj.task
    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    inverse = result.inverse_programs()[0]
    bounds = BmcBounds(unroll=task.bmc_unroll, array_size=min(task.bmc_array_size, 2),
                       value_range=task.bmc_value_range, max_cases=2000)

    outcome = benchmark.pedantic(
        lambda: bounded_check(task.program, inverse, spec, bounds, task.externs,
                              precondition=task.precondition),
        rounds=1, iterations=1)
    print(f"\n{name}: BMC {outcome.cases} cases in {outcome.elapsed:.2f}s "
          f"(paper CBMC: {bench_obj.paper.cbmc_seconds}s)")


@pytest.mark.parametrize("name", ["vector_shift", "sumi"])
def test_table3_sketchlite(benchmark, pins_results, name):
    """Sketch comparison shape: works with bounds on axiom-free benchmarks;
    sumi (paper: Sketch fails — unrolling explosion) gets a short timeout."""
    bench_obj, _result, _ = pins_results(name)
    task = bench_obj.task
    template = build_template(task)
    bounds = BmcBounds(unroll=task.bmc_unroll, array_size=2,
                       value_range=(0, 1), scalar_range=(0, 2), max_cases=300)

    outcome = benchmark.pedantic(
        lambda: run_sketchlite(task, template, bounds, timeout=30),
        rounds=1, iterations=1)
    print(f"\n{name}: sketchlite {outcome.status} in {outcome.elapsed:.2f}s, "
          f"{outcome.candidates_tried} candidates "
          f"(paper Sketch: {bench_obj.paper.sketch_seconds})")
    assert outcome.status in ("sat", "timeout", "unsat")
