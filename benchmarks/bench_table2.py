"""Table 2 — PINS performance (search space, solutions, iterations, time).

The full 14-benchmark sweep at paper budgets takes tens of minutes; the
default bench run covers every benchmark at a reduced budget and asserts
the paper's qualitative claims: PINS succeeds, few paths suffice (1-14,
median ~5), and the solution sets are tiny relative to the search space.
"""

import pytest

from repro.experiments.tables import TABLE2_HEADERS, render, table2_row
from conftest import FAST

NAMES = FAST


@pytest.mark.parametrize("name", NAMES)
def test_table2_row(benchmark, pins_results, name):
    bench_obj, result, elapsed = pins_results(name)

    def report():
        return table2_row(bench_obj, result, elapsed)

    row = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + render(TABLE2_HEADERS, [row]))
    assert result.succeeded or result.status == "no_solution"
    if result.succeeded:
        # Small path-bound hypothesis: handful of paths.
        assert 1 <= result.stats.paths_explored <= 30
        # PINS winnows a huge space to a few candidates.
        assert len(result.solutions) <= 10
