"""Query-cache / worker-pool A/B: serial baseline vs cached+parallel PINS.

For each benchmark the harness runs PINS three times — serial with no
cache, cold-cache (populating a disk tier in a temp dir), and warm-cache
(re-reading that tier) — and reports wall times, cache hit rates, and
the warm-over-baseline speedup.  The determinism contract (DESIGN.md
§10) is asserted every time: all three runs must synthesize identical
inverses.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_perf.py``)
or through pytest (``pytest benchmarks/bench_perf.py``).
"""

import tempfile
import time

import pytest

from repro.experiments.tables import render
from repro.lang.pretty import pretty_program
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark

NAMES = ["sumi", "vector_shift", "runlength"]

CONFIGS = {
    "sumi": PinsConfig(m=10, max_iterations=25, seed=1),
    "vector_shift": PinsConfig(m=10, max_iterations=25, seed=1),
    "runlength": PinsConfig(m=6, max_iterations=12, seed=1),
}

HEADERS = ["benchmark", "serial s", "cold s", "warm s", "speedup",
           "warm hits", "hit %", "status", "sols"]


def timed_run(name, **overrides):
    cfg = CONFIGS[name]
    t0 = time.time()
    result = run_pins(get_benchmark(name).task,
                      PinsConfig(**{**cfg.__dict__, **overrides}))
    return time.time() - t0, result


def inverses(result):
    return sorted(pretty_program(p) for p in result.inverse_programs())


def ab_row(name):
    with tempfile.TemporaryDirectory() as cache_dir:
        spec = cache_dir + "/"
        serial_t, serial = timed_run(name)
        cold_t, cold = timed_run(name, query_cache=spec)
        warm_t, warm = timed_run(name, query_cache=spec)

    hits = warm.stats.smt_cache_hits
    misses = warm.stats.smt_cache_misses
    row = [
        name,
        f"{serial_t:.2f}", f"{cold_t:.2f}", f"{warm_t:.2f}",
        f"{serial_t / warm_t:.2f}x" if warm_t > 0 else "-",
        hits,
        f"{100 * hits / (hits + misses):.0f}" if hits + misses else "-",
        f"{warm.status}/{serial.status}",
        f"{len(warm.solutions)}/{len(serial.solutions)}",
    ]
    return row, serial, cold, warm


@pytest.mark.parametrize("name", NAMES)
def test_cache_ab(benchmark, name):
    row, serial, cold, warm = benchmark.pedantic(ab_row, args=(name,),
                                                 rounds=1, iterations=1)
    print("\n" + render(HEADERS, [row]))
    # The cache may only change wall time, never the outcome.
    assert cold.status == warm.status == serial.status
    assert inverses(cold) == inverses(serial)
    assert inverses(warm) == inverses(serial)
    # The warm run must actually hit: every solver query it issues was
    # answered by the cold run's disk tier (trajectories are identical).
    assert warm.stats.smt_cache_hits > 0
    assert warm.stats.smt_cache_misses <= cold.stats.smt_cache_misses


def main() -> None:
    rows = []
    for name in NAMES:
        row, *_ = ab_row(name)
        rows.append(row)
    print(render(HEADERS, rows))


if __name__ == "__main__":
    main()
