"""Shared fixtures/config for the benchmark harness.

Each ``bench_tableN.py`` regenerates one of the paper's tables; rows are
printed so a ``pytest benchmarks/ --benchmark-only`` run leaves the full
paper-vs-measured comparison in the log.  The heavy compressors run with
reduced iteration budgets here (the ``repro.experiments.runner`` CLI runs
them at full budget).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace", action="store", default=None, metavar="PATH",
        help="write a repro.obs JSONL trace of every synthesis run in this "
             "benchmark session to PATH (equivalent to REPRO_TRACE=PATH); "
             "inspect with `python -m repro.obs report PATH`")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "static_pruning: A/B benchmarks for the repro.analysis pruning layer")
    # One session-wide recorder so every bench_table*.py synthesis run
    # lands in a single trace; run_pins sees an active recorder and does
    # not open its own.
    path = config.getoption("--obs-trace") or os.environ.get("REPRO_TRACE")
    if path:
        from repro import obs

        config._obs_recorder = obs.JsonlRecorder(path)
        config._obs_restore = obs.set_recorder(config._obs_recorder)


def pytest_unconfigure(config):
    recorder = getattr(config, "_obs_recorder", None)
    if recorder is not None:
        from repro import obs

        obs.set_recorder(getattr(config, "_obs_restore", None))
        recorder.close()
        config._obs_recorder = None


# Benchmarks grouped by how long a PINS run takes on a laptop.
FAST = ["sumi", "vector_shift", "vector_scale", "vector_rotate", "serialize"]
MEDIUM = ["permute_count", "base64", "uuencode", "pkt_wrapper", "lu_decomp"]
SLOW = ["inplace_rl", "runlength", "lz77", "lzw"]


def pins_config(name):
    from repro.pins import PinsConfig

    if name in SLOW:
        return PinsConfig(m=6, max_iterations=12, seed=1)
    if name in MEDIUM:
        return PinsConfig(m=8, max_iterations=15, seed=1)
    return PinsConfig(m=10, max_iterations=25, seed=1)


@pytest.fixture(scope="session")
def pins_results():
    """Synthesize once per session; shared across table benchmarks."""
    cache = {}

    def get(name):
        if name not in cache:
            from repro.experiments.tables import run_benchmark

            cache[name] = run_benchmark(name, pins_config(name))
        return cache[name]

    return get
