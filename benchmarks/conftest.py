"""Shared fixtures/config for the benchmark harness.

Each ``bench_tableN.py`` regenerates one of the paper's tables; rows are
printed so a ``pytest benchmarks/ --benchmark-only`` run leaves the full
paper-vs-measured comparison in the log.  The heavy compressors run with
reduced iteration budgets here (the ``repro.experiments.runner`` CLI runs
them at full budget).
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "static_pruning: A/B benchmarks for the repro.analysis pruning layer")


# Benchmarks grouped by how long a PINS run takes on a laptop.
FAST = ["sumi", "vector_shift", "vector_scale", "vector_rotate", "serialize"]
MEDIUM = ["permute_count", "base64", "uuencode", "pkt_wrapper", "lu_decomp"]
SLOW = ["inplace_rl", "runlength", "lz77", "lzw"]


def pins_config(name):
    from repro.pins import PinsConfig

    if name in SLOW:
        return PinsConfig(m=6, max_iterations=12, seed=1)
    if name in MEDIUM:
        return PinsConfig(m=8, max_iterations=15, seed=1)
    return PinsConfig(m=10, max_iterations=25, seed=1)


@pytest.fixture(scope="session")
def pins_results():
    """Synthesize once per session; shared across table benchmarks."""
    cache = {}

    def get(name):
        if name not in cache:
            from repro.experiments.tables import run_benchmark

            cache[name] = run_benchmark(name, pins_config(name))
        return cache[name]

    return get
