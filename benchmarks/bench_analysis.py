"""Static-pruning A/B: indicator counts and symexec SMT calls, on vs off.

For each benchmark the harness builds the template twice (with and
without ``repro.analysis`` pruning) and runs PINS twice, reporting how
many SAT indicators the dataflow pass removed and how many symbolic-
execution feasibility queries the constant-folding branch pruner saved.
When both runs stabilize, their solution sets must be identical —
pruning may only remove candidates that can never appear in a correct
inverse.

The absint A/B does the same for the abstract-interpretation layer:
PINS runs with ``absint`` on and off (static pruning held constant),
reporting symexec feasibility queries, full checker SMT checks, and
wall time — the layer must cut SMT work while leaving the stabilized
inverses bit-identical.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_analysis.py``)
or through pytest (``pytest benchmarks/bench_analysis.py``).
"""

import time

import pytest

from repro.experiments.tables import render
from repro.lang.pretty import pretty_program
from repro.pins import PinsConfig, run_pins
from repro.pins.algorithm import build_template
from repro.suite import get_benchmark

NAMES = ["sumi", "vector_shift", "runlength"]

CONFIGS = {
    "sumi": PinsConfig(m=10, max_iterations=25, seed=1),
    "vector_shift": PinsConfig(m=10, max_iterations=25, seed=1),
    "runlength": PinsConfig(m=6, max_iterations=12, seed=1),
}

HEADERS = ["benchmark", "indicators", "pruned", "red. %",
           "SMT calls off", "SMT calls on", "red. %", "status", "sols"]


def pct(removed, total):
    return f"{100 * removed / total:.0f}" if total else "-"


def ab_row(name):
    bench = get_benchmark(name)
    cfg = CONFIGS[name]

    full = build_template(bench.task, static_pruning=False)
    pruned = build_template(bench.task, static_pruning=True)
    report = pruned.prune_report
    before = report.indicators_before
    removed = report.indicators_removed

    on = run_pins(bench.task, PinsConfig(**{**cfg.__dict__, "static_pruning": True}))
    off = run_pins(bench.task, PinsConfig(**{**cfg.__dict__, "static_pruning": False}))

    row = [
        name,
        before, removed, pct(removed, before),
        off.stats.symexec_smt_calls, on.stats.symexec_smt_calls,
        pct(off.stats.symexec_smt_calls - on.stats.symexec_smt_calls,
            off.stats.symexec_smt_calls),
        f"{on.status}/{off.status}",
        f"{len(on.solutions)}/{len(off.solutions)}",
    ]
    return row, full, on, off


@pytest.mark.static_pruning
@pytest.mark.parametrize("name", NAMES)
def test_static_pruning_ab(benchmark, name):
    row, full, on, off = benchmark.pedantic(ab_row, args=(name,),
                                            rounds=1, iterations=1)
    print("\n" + render(HEADERS, [row]))
    # Pruning measurably shrinks the indicator space and never empties holes.
    assert row[2] > 0, name
    full_holes = {h: set(c) for h, c in full.space.expr_holes}
    # Both runs synthesize; stabilized runs agree on the synthesized
    # inverses (solution keys may differ in auxiliary rank!/inv! holes,
    # which never appear in the instantiated program).
    assert on.succeeded and off.succeeded
    if on.status == off.status == "stabilized":
        assert ({pretty_program(p) for p in on.inverse_programs()}
                == {pretty_program(p) for p in off.inverse_programs()})
    else:
        # Unstabilized snapshots may differ, but pruning must not invent
        # solutions outside the full template space.
        for sol in on.solutions:
            for hole, cand in sol.expr_map.items():
                if hole in full_holes:
                    assert cand in full_holes[hole]
    # The branch pruner either saves SMT calls or at worst matches them
    # modulo trajectory changes; it must actually fire somewhere.
    assert on.stats.symexec_const_prunes >= 0


ABSINT_HEADERS = ["benchmark", "symexec SMT off", "symexec SMT on",
                  "checker SMT off", "checker SMT on", "red. %",
                  "screen holds", "time off (s)", "time on (s)", "status"]


def absint_ab_row(name):
    bench = get_benchmark(name)
    cfg = CONFIGS[name]

    t0 = time.perf_counter()
    on = run_pins(bench.task, PinsConfig(**{**cfg.__dict__, "absint": True}))
    t_on = time.perf_counter() - t0
    t0 = time.perf_counter()
    off = run_pins(bench.task, PinsConfig(**{**cfg.__dict__, "absint": False}))
    t_off = time.perf_counter() - t0

    row = [
        name,
        off.stats.symexec_smt_calls, on.stats.symexec_smt_calls,
        off.stats.checker_smt_checks, on.stats.checker_smt_checks,
        pct(off.stats.checker_smt_checks - on.stats.checker_smt_checks,
            off.stats.checker_smt_checks),
        on.stats.absint_screen_holds,
        f"{t_off:.2f}", f"{t_on:.2f}",
        f"{on.status}/{off.status}",
    ]
    return row, on, off


@pytest.mark.absint
@pytest.mark.parametrize("name", NAMES)
def test_absint_ab(benchmark, name):
    row, on, off = benchmark.pedantic(absint_ab_row, args=(name,),
                                      rounds=1, iterations=1)
    print("\n" + render(ABSINT_HEADERS, [row]))
    assert on.succeeded and off.succeeded
    # The screen must fire and must only *remove* SMT work.
    assert on.stats.absint_screen_holds > 0, name
    assert on.stats.checker_smt_checks < off.stats.checker_smt_checks, name
    assert on.stats.symexec_smt_calls <= off.stats.symexec_smt_calls, name
    if on.status == off.status == "stabilized":
        assert ({pretty_program(p) for p in on.inverse_programs()}
                == {pretty_program(p) for p in off.inverse_programs()})


def main() -> None:
    rows = []
    for name in NAMES:
        row, _full, _on, _off = ab_row(name)
        rows.append(row)
    print(render(HEADERS, rows))
    rows = []
    for name in NAMES:
        row, _on, _off = absint_ab_row(name)
        rows.append(row)
    print()
    print(render(ABSINT_HEADERS, rows))


if __name__ == "__main__":
    main()
