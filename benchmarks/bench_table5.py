"""Table 5 — finitization parameters for the BMC substitute / sketchlite."""

from repro.experiments.tables import TABLE5_HEADERS, render, table5_row
from conftest import FAST


def test_table5_bounds(benchmark):
    def rows():
        return [table5_row(name, sketch_timeout=20) for name in FAST]

    result = benchmark.pedantic(rows, rounds=1, iterations=1)
    print("\n" + render(TABLE5_HEADERS, result))
    assert len(result) == len(FAST)
