"""Table 4 — running-time breakdown per PINS phase."""

import pytest

from conftest import FAST, MEDIUM


@pytest.mark.parametrize("name", FAST)
def test_table4_breakdown(benchmark, pins_results, name):
    bench_obj, result, elapsed = pins_results(name)

    def report():
        return result.stats.breakdown()

    b = benchmark.pedantic(report, rounds=1, iterations=1)
    print(f"\n{name}: symexec {100*b['symexec']:.0f}%  "
          f"SMT-reduction {100*b['smt_reduction']:.0f}%  "
          f"SAT {100*b['sat']:.0f}%  pickOne {100*b['pickone']:.0f}%  "
          f"(total {elapsed:.2f}s)")
    if result.succeeded and elapsed > 0.5:
        # Paper: symbolic execution + SMT reduction take >90%, SAT solving
        # and pickOne take little.  Assert the weak form of that shape.
        assert b["smt_reduction"] + b["symexec"] >= b["pickone"]
        assert b["pickone"] < 0.5
