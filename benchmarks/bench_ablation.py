"""Ablations from Sections 2.3-2.4: pickOne heuristic, path explosion."""

from repro.baselines.randompath import compare_pickone, path_explosion
from repro.pins import PinsConfig
from repro.suite import get_benchmark


def test_ablation_pickone_vs_random(benchmark):
    """Paper: random selection yields ~20% longer runtimes."""
    task = get_benchmark("sumi").task

    def run():
        return compare_pickone(task, seeds=[1, 2, 3],
                               config=PinsConfig(m=10, max_iterations=25))

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npickOne ablation: infeasible={comparison.infeasible_times} "
          f"random={comparison.random_times} slowdown=x{comparison.slowdown:.2f}")
    # Both strategies must converge; the heuristic should not be (much)
    # slower than random.
    assert comparison.slowdown > 0.5


def test_ablation_path_explosion(benchmark):
    """Section 2.4: ~7k syntactic run-length paths at three unrollings,
    versus the handful PINS explores."""
    task = get_benchmark("inplace_rl").task
    explosion = benchmark.pedantic(lambda: path_explosion(task, 3),
                                   rounds=1, iterations=1)
    print(f"\n{explosion.benchmark}: {explosion.paths} paths at unroll<=3")
    assert explosion.paths > 1000


def test_ablation_m_width(benchmark):
    """Solution-enumeration width m: smaller m converges too but may
    return before winnowing; m=10 is the paper's setting."""
    from repro.pins import run_pins

    task = get_benchmark("vector_shift").task

    def run():
        out = {}
        for m in (1, 4, 10):
            result = run_pins(task, PinsConfig(m=m, max_iterations=20, seed=1))
            out[m] = (result.status, len(result.solutions),
                      result.stats.paths_explored)
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nm-sweep: {outcomes}")
    assert outcomes[10][1] >= 1
