#!/usr/bin/env python
"""The paper's running example: invert an in-place run-length encoder.

Reproduces the Section 3 walkthrough end to end: the benchmark carries
the paper's final candidate sets (after its template-debugging loop), and
PINS prunes ~2^30 template instantiations down to a couple of candidates,
the paper's decoder among them.  Takes a minute or two.
"""

from repro.lang import pretty
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark
from repro.validate import validate_inverse, random_pool


def main() -> None:
    bench = get_benchmark("inplace_rl")
    task = bench.task
    print(pretty(task.program))
    print("\nPhi_e =", ", ".join(str(e) for e in task.phi_e))
    print("Phi_p =", ", ".join(str(p) for p in task.phi_p))
    print(f"\nSynthesizing (paper: {bench.paper.iterations} iterations, "
          f"{bench.paper.time_seconds}s, 1 solution)...")

    result = run_pins(task, PinsConfig(m=10, max_iterations=25, seed=1))
    print(f"status: {result.status}; {result.stats.paths_explored} paths; "
          f"{len(result.solutions)} candidates")

    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    pool = list(task.initial_inputs) + random_pool(task.input_gen, 30, seed=7)
    for idx, inverse in enumerate(result.inverse_programs()):
        report = validate_inverse(task.program, inverse, spec, pool, task.externs)
        print(f"\n--- candidate {idx}: "
              f"{'CORRECT' if report.ok else 'WRONG'} on {report.total} tests ---")
        print(pretty(inverse))

    # Section 2.5: concrete tests that drive the explored paths.
    print("\nconcrete tests harvested during synthesis:")
    for test in result.tests[:6]:
        print("  ", {k: (v.prefix(6) if hasattr(v, 'prefix') else v)
                     for k, v in test.items()})


if __name__ == "__main__":
    main()
