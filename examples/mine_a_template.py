#!/usr/bin/env python
"""Semi-automated template mining (Section 3).

Starting from only the program text, mine candidate expression/predicate
sets with the inversion projections, build an inverse-template skeleton
with the same control flow, and show the sets a user would then prune
before running PINS.
"""

from repro.lang import pretty
from repro.mining import SkeletonOptions, build_skeleton, mine
from repro.suite import get_benchmark


def main() -> None:
    program = get_benchmark("inplace_rl").task.program
    print("=== program to invert ===")
    print(pretty(program))

    mined = mine(program)
    print(f"\n=== mined candidates ({mined.size} total) ===")
    print("expressions:")
    for e in mined.exprs:
        print("   ", e)
    print("predicates:")
    for p in mined.preds:
        print("   ", p)

    print("\n=== inverse skeleton (same control flow, holes everywhere) ===")
    skeleton = build_skeleton(program, SkeletonOptions(
        drop_assignments_to={"A", "N", "i"},  # the paper's manual removal
    ))
    print(pretty(skeleton))

    print("\nNext steps (the human part of the loop): pick a subset of the "
          "mined sets, run PINS, and use the explored paths to refine — "
          "see examples/invert_runlength.py for the curated result.")


if __name__ == "__main__":
    main()
