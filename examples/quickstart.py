#!/usr/bin/env python
"""Quickstart: synthesize the inverse of an iterative summation.

The forward program computes s = 1 + 2 + ... + n.  We give PINS a
template for the inverse (a loop with unknown guard and unknown update
expressions) plus candidate sets, and it discovers the program that
recovers n from s by *iteratively subtracting* — without being told that
trick.
"""

from repro.lang import parse_expr, parse_pred, parse_program, pretty
from repro.pins import PinsConfig, SynthesisTask, run_pins
from repro.validate import validate_inverse

PROGRAM = parse_program("""
program sumi [int n; int s; int i] {
  in(n);
  assume(n >= 0);
  s, i := 0, 0;
  while (i < n) {
    i := i + 1;
    s := s + i;
  }
  out(s);
}
""")

# The template: same control-flow shape, holes for the guard and updates.
TEMPLATE = parse_program("""
program sumi_inv [int s; int ip; int sp] {
  ip, sp := [e1], [e2];
  while ([p1]) {
    ip := [e3];
    sp := [e4];
  }
  out(ip);
}
""")

PHI_E = tuple(parse_expr(t) for t in
              ["0", "1", "s", "ip + 1", "ip - 1", "sp - ip", "sp + ip", "sp - 1"])
PHI_P = tuple(parse_pred(t) for t in ["sp > 0", "ip > 0", "sp < 0"])


def main() -> None:
    task = SynthesisTask(
        name="quickstart",
        program=PROGRAM,
        inverse=TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        input_gen=lambda rng: {"n": rng.randint(0, 6)},
        initial_inputs=tuple({"n": k} for k in range(6)),
        pred_overrides={"inv!loop1": (parse_pred("ip >= 0"),)},
    )
    print(f"Search space: 2^{0:.0f}..." if False else "Running PINS...")
    result = run_pins(task, PinsConfig(m=10, max_iterations=25, seed=1))
    print(f"status: {result.status} after {result.stats.iterations} iterations, "
          f"{result.stats.paths_explored} paths explored")
    print(f"search space ~ 2^{result.stats.search_space_log2:.0f} template "
          f"instantiations; {len(result.solutions)} candidate(s) survive\n")

    spec = task.derived_spec({**PROGRAM.decls, **TEMPLATE.decls})
    pool = [{"n": k} for k in range(10)]
    for idx, inverse in enumerate(result.inverse_programs()):
        report = validate_inverse(PROGRAM, inverse, spec, pool)
        verdict = "CORRECT" if report.ok else "refuted by round-trip testing"
        print(f"--- candidate {idx} ({verdict}) ---")
        print(pretty(inverse))
        print()


if __name__ == "__main__":
    main()
