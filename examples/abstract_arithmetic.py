#!/usr/bin/env python
"""Axiomatized synthesis: un-rotate vectors with one trigonometric axiom.

The rotation (x, y) -> (x cos t - y sin t, x sin t + y cos t) uses
*uninterpreted* cos/sin/mul; the only fact the solver knows is
cos(t)^2 + sin(t)^2 = 1.  PINS still finds the inverse rotation — the
paper's showcase for modular, axiom-based synthesis (Section 2.3).
"""

from repro.lang import pretty
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark
from repro.validate import random_pool, validate_inverse


def main() -> None:
    for name in ("vector_scale", "vector_rotate"):
        bench = get_benchmark(name)
        task = bench.task
        print(f"\n=== {name} (axioms: "
              f"{', '.join(a.name for a in task.axioms)}) ===")
        result = run_pins(task, PinsConfig(m=10, max_iterations=20, seed=1))
        print(f"status: {result.status}; {len(result.solutions)} candidate(s)")
        spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
        pool = list(task.initial_inputs) + random_pool(task.input_gen, 20, seed=3)
        for inverse in result.inverse_programs():
            report = validate_inverse(task.program, inverse, spec, pool,
                                      task.externs)
            print(f"candidate ({'CORRECT' if report.ok else 'WRONG'}):")
            print(pretty(inverse))


if __name__ == "__main__":
    main()
