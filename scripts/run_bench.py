#!/usr/bin/env python
"""Run PINS on suite benchmarks and validate the results (dev harness)."""

import argparse
import sys
import time

from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark
from repro.validate import BmcBounds, bounded_check, random_pool, validate_inverse


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("names", nargs="+")
    ap.add_argument("--m", type=int, default=10)
    ap.add_argument("--iters", type=int, default=30)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--bmc", action="store_true")
    args = ap.parse_args()

    for name in args.names:
        bench = get_benchmark(name)
        task = bench.task
        t0 = time.time()
        result = run_pins(task, PinsConfig(m=args.m, max_iterations=args.iters,
                                           seed=args.seed))
        elapsed = time.time() - t0
        print(f"=== {name}: {result.status}, {len(result.solutions)} sols, "
              f"{result.stats.iterations} iters, {result.stats.paths_explored} paths, "
              f"{elapsed:.1f}s", flush=True)
        spec = task.derived_spec(
            {**task.program.decls, **task.inverse.decls})
        pool = list(task.initial_inputs)
        if task.input_gen is not None:
            pool += random_pool(task.input_gen, 30, seed=7)
        n_correct = 0
        for idx, inv in enumerate(result.inverse_programs()):
            report = validate_inverse(task.program, inv, spec, pool, task.externs,
                                      precondition=task.precondition)
            ok = "CORRECT" if report.ok else f"WRONG ({len(report.failures)} fails)"
            if report.ok:
                n_correct += 1
            print(f"  candidate {idx}: {ok}", flush=True)
        print(f"  => {n_correct}/{len(result.solutions)} candidates correct", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
