#!/usr/bin/env python
"""Run PINS on suite benchmarks, validate results, and record bench data.

Program names come from the ``repro.suite`` registry — ``--help`` lists
every registered program, ``--all`` runs all of them, and ``--set
fast|slow|all`` runs the named profile set (``repro.suite.profiles``).
Per-program default budgets from the profiles keep the slow programs
(lz77, lu_decomp, base64, …) terminating deterministically; ``--budget``
overrides them globally and ``--no-program-budgets`` disables them.

Beyond the original dev-harness behavior (run + validate each named
benchmark), this emits machine-readable performance records so runs can
be compared across configurations::

    # Record the full Table-2-style matrix.
    python scripts/run_bench.py --all \\
        --bench-json BENCH_pins.json --bench-label full-suite

    # Fast-set regression run; fail on inverse-digest drift or an SMT
    # query-count regression against the recorded matrix.
    python scripts/run_bench.py --set fast --no-validate \\
        --bench-json BENCH_pins.json --bench-label fast-ci \\
        --check-inverses-against full-suite \\
        --check-queries-against full-suite --queries-slack 0.05

Each labeled run records, per benchmark: wall time (of the synthesis
loop only, not validation), status, iterations, paths, SMT query count,
query-cache hit/miss counts and hit rate, solution count, the budget
spec in force, and a digest of the pretty-printed inverse programs.
When the JSON already holds a ``serial-baseline`` label, a
total-wall-time speedup against it is computed and stored.  The JSON
file is written atomically (tmp + ``os.replace``) so a crashed run never
corrupts previous records.

Render a recorded matrix with ``python -m repro.experiments table2``.

The digest gate honors each program's ``digest_stable`` profile bit
(wall-truncated programs are reported but don't fail the gate) and the
query gate adds each program's ``queries_slack`` on top of
``--queries-slack``.
"""

import argparse
import json
import os
import sys
import time

from repro.pins import PinsConfig, run_pins
from repro.resil import Budget
from repro.suite import (BENCH_SETS, BENCHMARK_MODULES, bench_profile,
                         bench_set, get_benchmark, resolved_budget)
from repro.validate import random_pool, validate_inverse

BASELINE_LABEL = "serial-baseline"
PROFILE_FRACTIONS = (0.25, 0.5, 1.0)


def inverse_digest(result) -> str:
    """Canonical digest of the synthesized inverse set (see
    :meth:`repro.pins.algorithm.PinsResult.inverse_digest`)."""
    return result.inverse_digest()


def bench_record(result, elapsed: float, budget=None) -> dict:
    stats = result.stats
    hits = stats.smt_cache_hits
    misses = stats.smt_cache_misses
    queries = result.metrics.counter("smt.queries")
    record = {
        "wall_time_s": round(elapsed, 4),
        "status": result.status,
        "iterations": stats.iterations,
        "paths": stats.paths_explored,
        "smt_queries": queries,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "solutions": stats.num_solutions,
        "inverse_digest": inverse_digest(result),
    }
    if budget is not None:
        record["budget"] = budget
    if stats.budget_exhausted:
        record["budget_exhausted"] = stats.budget_exhausted
    # Counterexample-replay health (the lzw axiom-incompleteness story):
    # recorded only when nonzero so untouched programs keep their exact
    # historical record shape.
    replay_failed = result.metrics.counter("analysis.regions.replay_failed")
    downgraded = result.metrics.counter("analysis.regions.downgraded")
    if replay_failed:
        record["cex_replay_failed"] = replay_failed
    if downgraded:
        record["cex_replay_downgraded"] = downgraded
    return record


def budget_profile(task, config, full_record: dict) -> list:
    """Anytime-quality curve: rerun under a wall budget at fractions of
    the unbudgeted wall time and record the best-so-far quality.

    ``digest_matches_full`` flags the fraction at which the budgeted
    run's solution set already equals the unbudgeted one — the headline
    "how early could we have stopped" number.
    """
    points = []
    full_wall = full_record["wall_time_s"]
    for frac in PROFILE_FRACTIONS:
        budget = Budget(wall_s=max(frac * full_wall, 1e-3))
        cfg = dict(config.__dict__)
        cfg["budget"] = budget
        t0 = time.time()
        result = run_pins(task, PinsConfig(**cfg))
        elapsed = time.time() - t0
        digest = inverse_digest(result)
        points.append({
            "fraction": frac,
            "wall_budget_s": round(budget.wall_s, 4),
            "wall_time_s": round(elapsed, 4),
            "status": result.status,
            "solutions": result.stats.num_solutions,
            "inverse_digest": digest,
            "digest_matches_full": digest == full_record["inverse_digest"],
        })
    return points


def load_bench_json(path: str) -> dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, dict) and isinstance(data.get("labels"), dict):
            return data
    return {"labels": {}}


def save_bench_json(path: str, data: dict) -> None:
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def build_parser() -> argparse.ArgumentParser:
    sets = {s: bench_set(s) for s in BENCH_SETS if s != "all"}
    epilog_lines = ["registered programs (registry order):",
                    "  " + " ".join(BENCHMARK_MODULES), ""]
    for set_name, names in sets.items():
        epilog_lines.append(f"--set {set_name}:")
        epilog_lines.append("  " + " ".join(names))
    ap = argparse.ArgumentParser(
        description="PINS benchmark harness with machine-readable records",
        epilog="\n".join(epilog_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("names", nargs="*",
                    help="benchmark names from the registry (see epilog); "
                         "or use --all / --set")
    ap.add_argument("--all", action="store_true",
                    help="run every registered suite program")
    ap.add_argument("--set", choices=BENCH_SETS, default=None, dest="bench_set",
                    help="run a profile set of programs (fast|slow|all)")
    ap.add_argument("--m", type=int, default=10)
    ap.add_argument("--iters", type=int, default=30)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes for parallel probe fan-out")
    ap.add_argument("--workers", choices=("persistent", "fork", "serial"),
                    default=None,
                    help="worker strategy for --jobs > 1: 'persistent' "
                         "forks one warm fleet per run, 'fork' (default) "
                         "forks per iteration, 'serial' disables the pool")
    ap.add_argument("--no-incremental", action="store_true",
                    help="disable assumption-based incremental SMT "
                         "contexts (restores one-shot solving) for A/B "
                         "runs")
    ap.add_argument("--query-cache", default=None,
                    help="SMT query-cache spec: 'mem', a file, or a dir/")
    ap.add_argument("--no-validate", action="store_true",
                    help="skip inverse validation (pure perf runs)")
    ap.add_argument("--no-absint", action="store_true",
                    help="disable the abstract-interpretation layer "
                         "(screen + path pruning) for A/B runs")
    ap.add_argument("--no-fwdbwd", action="store_true",
                    help="disable the forward-backward unknowns analysis "
                         "(static clause seeding + linear constraint "
                         "screen) for A/B runs")
    ap.add_argument("--no-regions", action="store_true",
                    help="disable the array-region / loop-bound analysis "
                         "(guided axiom instantiation, replay-failure "
                         "downgrades, inferred path budgets) for A/B runs")
    ap.add_argument("--budget", default=None, metavar="SPEC",
                    help="resource budget, e.g. 'wall=30;smt=5000' "
                         "(see repro.resil.parse_budget_spec); overrides "
                         "the per-program profile budgets")
    ap.add_argument("--no-program-budgets", action="store_true",
                    help="ignore the per-program default budgets from "
                         "repro.suite.profiles (unbudgeted unless --budget)")
    ap.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault-injection plan, e.g. 'pool.worker_crash@0' "
                         "(chaos runs; see repro.resil.faults)")
    ap.add_argument("--budget-profile", action="store_true",
                    help="after each run, rerun at 25/50/100%% of its "
                         "wall time and record best-so-far quality")
    ap.add_argument("--bench-json", default=None,
                    help="merge a per-benchmark record into this JSON file")
    ap.add_argument("--bench-label", default=None,
                    help="label for this run in the bench JSON")
    ap.add_argument("--check-inverses-against", default=None, metavar="LABEL",
                    help="exit 1 unless inverse digests match LABEL's "
                         "(programs profiled digest_stable=False are "
                         "reported but don't fail; see --strict-digests)")
    ap.add_argument("--strict-digests", action="store_true",
                    help="apply --check-inverses-against to every program, "
                         "ignoring the digest_stable profile bit")
    ap.add_argument("--check-queries-against", default=None, metavar="LABEL",
                    help="exit 1 if a benchmark issues more SMT queries "
                         "than LABEL's record (query-count regression gate)")
    ap.add_argument("--queries-slack", type=float, default=0.0,
                    help="fractional headroom for --check-queries-against "
                         "(0.05 allows 5%% more queries than the record); "
                         "per-program profile slack is added on top")
    ap.add_argument("--min-speedup", type=float, default=None, metavar="X",
                    help="exit 1 unless this label's total-wall speedup vs "
                         "the recorded serial-baseline label is > X "
                         "(perf-regression gate; requires --bench-json)")
    return ap


def resolve_names(ap: argparse.ArgumentParser, args) -> list:
    picked = [bool(args.names), args.all, args.bench_set is not None]
    if sum(picked) > 1:
        ap.error("give program names, --all, or --set — not a combination")
    if args.all:
        return list(BENCHMARK_MODULES)
    if args.bench_set is not None:
        return bench_set(args.bench_set)
    if not args.names:
        ap.error("no programs selected; pass names, --all, or --set "
                 "(see --help for the registry)")
    try:
        for name in args.names:
            get_benchmark(name)
    except KeyError as exc:
        ap.error(str(exc.args[0]))
    return args.names


def main() -> int:
    ap = build_parser()
    args = ap.parse_args()
    names = resolve_names(ap, args)

    if args.bench_json and not args.bench_label:
        ap.error("--bench-json requires --bench-label")

    bench_data = load_bench_json(args.bench_json) if args.bench_json else None
    records = {}
    exit_code = 0

    for name in names:
        bench = get_benchmark(name)
        profile = bench_profile(name)
        task = bench.task
        # Precedence: --budget > REPRO_BUDGET env > per-program profile.
        # The env var is the resilience layer's documented knob; profile
        # defaults must not outrank an operator's explicit tightening.
        budget = args.budget
        if budget is None and os.environ.get("REPRO_BUDGET"):
            budget = os.environ["REPRO_BUDGET"]
        if budget is None and not args.no_program_budgets:
            # Profile budget plus the inferred never-firing paths=
            # ceiling (hand paths= values win; see suite.resolved_budget).
            budget = resolved_budget(name, regions=not args.no_regions)
        config = PinsConfig(m=args.m, max_iterations=args.iters,
                            seed=args.seed, jobs=args.jobs,
                            workers=args.workers,
                            query_cache=args.query_cache,
                            absint=False if args.no_absint else None,
                            fwdbwd=False if args.no_fwdbwd else None,
                            incremental=False if args.no_incremental else None,
                            regions=False if args.no_regions else None,
                            budget=budget, faults=args.faults)
        t0 = time.time()
        result = run_pins(task, config)
        elapsed = time.time() - t0
        record = bench_record(result, elapsed, budget=budget)
        records[name] = record
        if args.budget_profile:
            record["budget_profile"] = budget_profile(task, config, record)
            for point in record["budget_profile"]:
                match = "=full" if point["digest_matches_full"] else "partial"
                print(f"  budget {int(point['fraction'] * 100):3d}%: "
                      f"{point['status']}, {point['solutions']} sols, "
                      f"{match}", flush=True)
        print(f"=== {name}: {result.status}, {len(result.solutions)} sols, "
              f"{result.stats.iterations} iters, "
              f"{result.stats.paths_explored} paths, {elapsed:.2f}s, "
              f"cache {record['cache_hits']}/{record['cache_hits'] + record['cache_misses']} hits",
              flush=True)

        if args.check_inverses_against and bench_data is not None:
            ref = (bench_data["labels"]
                   .get(args.check_inverses_against, {})
                   .get("benchmarks", {}).get(name))
            if ref is None:
                print(f"  !! no '{args.check_inverses_against}' record for "
                      f"{name}; cannot check inverses", flush=True)
                exit_code = 1
            elif ref["inverse_digest"] != record["inverse_digest"]:
                if profile.digest_stable or args.strict_digests:
                    print(f"  !! inverse digest differs from "
                          f"'{args.check_inverses_against}' "
                          f"({record['inverse_digest'][:12]} vs "
                          f"{ref['inverse_digest'][:12]})", flush=True)
                    exit_code = 1
                else:
                    print(f"  inverse digest differs from "
                          f"'{args.check_inverses_against}' but {name} is "
                          f"profiled digest_stable=False; not gating",
                          flush=True)
            else:
                print(f"  inverses identical to "
                      f"'{args.check_inverses_against}'", flush=True)

        if args.check_queries_against and bench_data is not None:
            ref = (bench_data["labels"]
                   .get(args.check_queries_against, {})
                   .get("benchmarks", {}).get(name))
            if ref is None or "smt_queries" not in ref:
                print(f"  !! no '{args.check_queries_against}' query record "
                      f"for {name}; cannot check query count", flush=True)
                exit_code = 1
            else:
                slack = args.queries_slack + profile.queries_slack
                limit = int(ref["smt_queries"] * (1.0 + slack))
                if record["smt_queries"] > limit:
                    print(f"  !! SMT query regression vs "
                          f"'{args.check_queries_against}': "
                          f"{record['smt_queries']} > {limit} "
                          f"(record {ref['smt_queries']}, "
                          f"slack {slack:.0%})", flush=True)
                    exit_code = 1
                else:
                    print(f"  SMT queries within "
                          f"'{args.check_queries_against}' budget "
                          f"({record['smt_queries']} <= {limit})", flush=True)

        if not args.no_validate:
            spec = task.derived_spec(
                {**task.program.decls, **task.inverse.decls})
            pool = list(task.initial_inputs)
            if task.input_gen is not None:
                pool += random_pool(task.input_gen, 30, seed=7)
            n_correct = 0
            for idx, inv in enumerate(result.inverse_programs()):
                report = validate_inverse(task.program, inv, spec, pool,
                                          task.externs,
                                          precondition=task.precondition)
                ok = "CORRECT" if report.ok else f"WRONG ({len(report.failures)} fails)"
                if report.ok:
                    n_correct += 1
                print(f"  candidate {idx}: {ok}", flush=True)
            print(f"  => {n_correct}/{len(result.solutions)} candidates correct",
                  flush=True)

    if bench_data is not None:
        # Merge into an existing label so multi-invocation protocols
        # (per-benchmark --m/--iters) accumulate one record set.
        entry = bench_data["labels"].setdefault(
            args.bench_label,
            {"jobs": args.jobs, "workers": args.workers,
             "query_cache": args.query_cache,
             "seed": args.seed, "benchmarks": {}})
        entry["benchmarks"].update(records)
        baseline = bench_data["labels"].get(BASELINE_LABEL)
        if baseline is not None and args.bench_label != BASELINE_LABEL:
            common = (set(baseline.get("benchmarks", {}))
                      & set(entry["benchmarks"]))
            if common:
                base_total = sum(
                    baseline["benchmarks"][n]["wall_time_s"] for n in common)
                this_total = sum(
                    entry["benchmarks"][n]["wall_time_s"] for n in common)
                if this_total > 0:
                    entry["speedup_vs_serial_baseline"] = round(
                        base_total / this_total, 3)
                    entry["speedup_benchmarks"] = sorted(common)
                    print(f"speedup vs {BASELINE_LABEL} on "
                          f"{sorted(common)}: "
                          f"{entry['speedup_vs_serial_baseline']}x "
                          f"({base_total:.2f}s -> {this_total:.2f}s)",
                          flush=True)
        save_bench_json(args.bench_json, bench_data)
        print(f"bench record '{args.bench_label}' written to "
              f"{args.bench_json}", flush=True)

    if args.min_speedup is not None:
        speedup = None
        if bench_data is not None:
            speedup = (bench_data["labels"]
                       .get(args.bench_label, {})
                       .get("speedup_vs_serial_baseline"))
        if speedup is None:
            print(f"!! --min-speedup {args.min_speedup} given but no "
                  f"speedup vs {BASELINE_LABEL} was computed "
                  f"(need --bench-json and a recorded baseline)", flush=True)
            exit_code = 1
        elif speedup <= args.min_speedup:
            print(f"!! speedup regression: {speedup}x vs {BASELINE_LABEL} "
                  f"is not above the {args.min_speedup}x floor", flush=True)
            exit_code = 1
        else:
            print(f"speedup {speedup}x clears the "
                  f"{args.min_speedup}x floor", flush=True)

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
