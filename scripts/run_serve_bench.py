#!/usr/bin/env python
"""Load-test the synthesis service and record BENCH_serve.json.

Starts a real :class:`repro.serve.ServeApp` (in-thread, forked worker
fleet, shared cache store), submits ``--jobs`` concurrent jobs cycling
over ``--programs``, and records service-level performance::

    python scripts/run_serve_bench.py --jobs 8 --workers 2 \\
        --bench-json BENCH_serve.json --bench-label serve-ci

Per label the record carries throughput (jobs/s over the busy window)
and the client-visible latency distribution (p50/p95/p99, from the
server's own submit/finish timestamps so client polling cadence does
not pollute the numbers), plus fleet/queue counters and per-program
digests.

The run **fails** (exit 1) unless every job finishes ``done`` AND every
program's served inverse digest is bit-identical to a one-shot
``run_pins`` reference computed in-process — the load test doubles as
the service's determinism gate under concurrency.

The JSON is written atomically (tmp + ``os.replace``), merging into any
existing labels, mirroring ``run_bench.py``.
"""

import argparse
import json
import os
import sys
import time


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[idx]


def reference_digests(programs, config):
    """One-shot run_pins digests, the determinism yardstick."""
    from repro.pins import PinsConfig, run_pins
    from repro.suite import get_benchmark, resolved_budget

    refs = {}
    for name in programs:
        cfg = dict(config, budget=resolved_budget(name))
        result = run_pins(get_benchmark(name).task, PinsConfig(**cfg))
        refs[name] = {"status": result.status,
                      "inverse_digest": result.inverse_digest()}
    return refs


def save_bench_json(path, label, record):
    data = {"labels": {}}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            pass
    data.setdefault("labels", {})[label] = record
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Load-test repro.serve and record BENCH_serve.json.")
    ap.add_argument("--jobs", type=int, default=8,
                    help="concurrent jobs to submit (default 8)")
    ap.add_argument("--workers", type=int, default=2,
                    help="serve worker processes (default 2)")
    ap.add_argument("--programs", default="sumi,vector_shift,vector_scale",
                    help="comma-separated suite programs to cycle over")
    ap.add_argument("--m", type=int, default=10)
    ap.add_argument("--iters", type=int, default=30)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--cache-dir", default=None,
                    help="shared store directory (default: a temp dir)")
    ap.add_argument("--bench-json", default=None, metavar="PATH",
                    help="record results into this JSON file")
    ap.add_argument("--bench-label", default="serve", metavar="LABEL")
    ap.add_argument("--timeout", type=float, default=600.0,
                    help="per-job completion deadline (seconds)")
    args = ap.parse_args(argv)

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.serve import ServeConfig, ServerThread

    programs = [p.strip() for p in args.programs.split(",") if p.strip()]
    if not programs:
        ap.error("--programs must name at least one suite program")
    job_config = {"m": args.m, "max_iterations": args.iters,
                  "seed": args.seed}

    print(f"computing one-shot references for {', '.join(programs)} ...")
    refs = reference_digests(programs, job_config)

    import tempfile

    with tempfile.TemporaryDirectory() as tmpdir:
        cache_dir = args.cache_dir or os.path.join(tmpdir, "store")
        os.makedirs(cache_dir, exist_ok=True)
        serve_config = ServeConfig(workers=args.workers, cache_dir=cache_dir)
        t_start = time.time()
        with ServerThread(serve_config) as client:
            submitted = []
            for i in range(args.jobs):
                name = programs[i % len(programs)]
                job = client.submit(name, config=job_config)
                submitted.append((job["id"], name))
            print(f"submitted {len(submitted)} jobs "
                  f"across {args.workers} workers")

            finals = {}
            for job_id, _name in submitted:
                finals[job_id] = client.wait_for(job_id,
                                                 timeout=args.timeout)
            stats = client.stats()
        wall_s = time.time() - t_start

    failures = []
    latencies = []
    first_submit = None
    last_finish = None
    per_program = {}
    for job_id, name in submitted:
        final = finals[job_id]
        if final["state"] != "done":
            failures.append(f"{job_id} ({name}): state={final['state']} "
                            f"error={final.get('error')}")
            continue
        latencies.append(final["latency_s"])
        sub, fin = final["submitted_at"], final["finished_at"]
        first_submit = sub if first_submit is None else min(first_submit, sub)
        last_finish = fin if last_finish is None else max(last_finish, fin)
        record = final["result"]
        slot = per_program.setdefault(
            name, {"jobs": 0, "status": record["status"],
                   "inverse_digest": record["inverse_digest"]})
        slot["jobs"] += 1
        if record["inverse_digest"] != refs[name]["inverse_digest"]:
            failures.append(
                f"{job_id} ({name}): served digest "
                f"{record['inverse_digest'][:12]} != one-shot "
                f"{refs[name]['inverse_digest'][:12]}")
        if slot["inverse_digest"] != record["inverse_digest"]:
            failures.append(f"{name}: digests differ across served jobs")

    latencies.sort()
    busy = ((last_finish - first_submit)
            if latencies and last_finish > first_submit else wall_s)
    bench = {
        "jobs": args.jobs,
        "workers": args.workers,
        "programs": per_program,
        "config": job_config,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": round(len(latencies) / busy, 3) if busy else 0.0,
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p95": round(percentile(latencies, 0.95), 4),
            "p99": round(percentile(latencies, 0.99), 4),
            "max": round(latencies[-1], 4) if latencies else 0.0,
            "mean": round(sum(latencies) / len(latencies), 4) if latencies else 0.0,
        },
        "queue": {k: stats[k] for k in ("completed", "requeues",
                                        "compactions")},
        "fleet": stats["fleet"],
        "digest_parity": not failures,
    }

    print(json.dumps(bench, indent=2, sort_keys=True))
    if args.bench_json:
        save_bench_json(args.bench_json, args.bench_label, bench)
        print(f"recorded label {args.bench_label!r} in {args.bench_json}")

    if failures:
        print("FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"OK: {len(latencies)}/{args.jobs} jobs done, "
          f"{bench['throughput_jobs_per_s']} jobs/s, "
          f"p95 {bench['latency_s']['p95']}s, digests bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
