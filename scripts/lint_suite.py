#!/usr/bin/env python
"""Lint every suite benchmark (program, template, ground truth).

Exit code 0 when nothing fails, 1 otherwise; ``--strict`` also fails on
warnings.  Same engine as ``python -m repro.analysis --suite``.
"""

import argparse
import sys

from repro.analysis.suitelint import run_suite_lint


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("names", nargs="*", help="benchmark names (default: all)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on warnings as well as errors")
    ap.add_argument("--verbose", action="store_true",
                    help="show every finding, not just failing ones")
    args = ap.parse_args()
    return run_suite_lint(names=args.names or None, strict=args.strict,
                          verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
