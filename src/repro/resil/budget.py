"""Cooperative cancellation budgets for the synthesis stack.

A :class:`Budget` bounds a run four ways — a wall-clock deadline plus
count limits on SMT queries, SAT conflicts, and symexec paths — and is
threaded by reference through every expensive layer:

* :meth:`repro.smt.solver.Solver.check` charges one SMT query per cache
  miss (cache hits are free) and answers ``unknown`` once exhausted;
* :class:`repro.smt.sat.SatSolver` charges each conflict as it is
  analyzed, so a restart storm cannot outlive the deadline;
* :class:`repro.symexec.executor.SymbolicExecutor` charges each found
  path and re-checks the wall clock while backtracking;
* :func:`repro.pins.solve.solve` stops proposing candidates and returns
  the solutions found so far;
* :func:`repro.pins.algorithm._run_pins` converts exhaustion into the
  ``budget_exhausted`` status carrying the best-so-far solution set —
  callers never see a traceback.

Charging is cooperative and approximate at process boundaries: forked
pool workers inherit a *copy* of the budget, so count limits bound each
worker independently while the wall deadline (an absolute monotonic
timestamp) stays globally meaningful.  Exhaustion is recorded once per
budget in the obs counters ``resil.budget_exhausted`` and
``resil.budget_exhausted.<reason>``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Union

from .. import obs

ENV_BUDGET = "REPRO_BUDGET"

_FIELD_ALIASES = {
    "wall": "wall_s",
    "wall_s": "wall_s",
    "time": "wall_s",
    "smt": "smt_queries",
    "smt_queries": "smt_queries",
    "queries": "smt_queries",
    "sat": "sat_conflicts",
    "sat_conflicts": "sat_conflicts",
    "conflicts": "sat_conflicts",
    "paths": "symexec_paths",
    "symexec_paths": "symexec_paths",
}


class BudgetExhausted(RuntimeError):
    """Raised (cooperatively) when a :class:`Budget` limit is crossed.

    ``reason`` names the exhausted dimension (``"wall"``,
    ``"smt_queries"``, ``"sat_conflicts"``, or ``"symexec_paths"``).
    """

    def __init__(self, reason: str = "budget"):
        super().__init__(f"budget exhausted: {reason}")
        self.reason = reason


class Budget:
    """A shared, mutable budget; ``None`` limits are unbounded.

    Layers call the ``charge_*`` methods at cheap boundaries; the first
    crossing flips :attr:`exhausted`, records the obs counters, and
    raises :class:`BudgetExhausted`.  Every later charge (and
    :meth:`check`) keeps raising, so a budget poisons all remaining work
    the moment any layer trips it.
    """

    __slots__ = ("wall_s", "smt_queries", "sat_conflicts", "symexec_paths",
                 "used_smt_queries", "used_sat_conflicts",
                 "used_symexec_paths", "deadline", "exhausted", "reason")

    def __init__(self, wall_s: Optional[float] = None,
                 smt_queries: Optional[int] = None,
                 sat_conflicts: Optional[int] = None,
                 symexec_paths: Optional[int] = None):
        for name, value in (("wall_s", wall_s), ("smt_queries", smt_queries),
                            ("sat_conflicts", sat_conflicts),
                            ("symexec_paths", symexec_paths)):
            if value is not None and value < 0:
                raise ValueError(f"budget {name} must be >= 0, got {value!r}")
        self.wall_s = wall_s
        self.smt_queries = smt_queries
        self.sat_conflicts = sat_conflicts
        self.symexec_paths = symexec_paths
        self.used_smt_queries = 0
        self.used_sat_conflicts = 0
        self.used_symexec_paths = 0
        self.deadline: Optional[float] = None
        self.exhausted = False
        self.reason: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the wall-clock deadline (idempotent)."""
        if self.wall_s is not None and self.deadline is None:
            self.deadline = time.monotonic() + self.wall_s
        return self

    def _exhaust(self, reason: str) -> None:
        if not self.exhausted:
            self.exhausted = True
            self.reason = reason
            obs.count("resil.budget_exhausted")
            obs.count(f"resil.budget_exhausted.{reason}")
        raise BudgetExhausted(self.reason or reason)

    # -- checks and charges -------------------------------------------------

    def check(self) -> None:
        """Raise if already exhausted or the wall deadline has passed."""
        if self.exhausted:
            raise BudgetExhausted(self.reason or "budget")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._exhaust("wall")

    def ok(self) -> bool:
        """:meth:`check` as a predicate (still flips ``exhausted``)."""
        try:
            self.check()
        except BudgetExhausted:
            return False
        return True

    def charge_smt_query(self) -> None:
        self.check()
        if self.smt_queries is None:
            return
        self.used_smt_queries += 1
        if self.used_smt_queries > self.smt_queries:
            self._exhaust("smt_queries")

    def charge_sat_conflicts(self, n: int = 1) -> None:
        self.check()
        if self.sat_conflicts is None:
            return
        self.used_sat_conflicts += n
        if self.used_sat_conflicts > self.sat_conflicts:
            self._exhaust("sat_conflicts")

    def charge_symexec_path(self) -> None:
        self.check()
        if self.symexec_paths is None:
            return
        self.used_symexec_paths += 1
        if self.used_symexec_paths > self.symexec_paths:
            self._exhaust("symexec_paths")

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "wall_s": self.wall_s,
            "smt_queries": self.smt_queries,
            "sat_conflicts": self.sat_conflicts,
            "symexec_paths": self.symexec_paths,
            "used_smt_queries": self.used_smt_queries,
            "used_sat_conflicts": self.used_sat_conflicts,
            "used_symexec_paths": self.used_symexec_paths,
            "exhausted": self.exhausted,
            "reason": self.reason,
        }

    def describe(self) -> str:
        parts = []
        if self.wall_s is not None:
            parts.append(f"wall={self.wall_s:g}")
        if self.smt_queries is not None:
            parts.append(f"smt={self.smt_queries}")
        if self.sat_conflicts is not None:
            parts.append(f"sat={self.sat_conflicts}")
        if self.symexec_paths is not None:
            parts.append(f"paths={self.symexec_paths}")
        return ";".join(parts) if parts else "unbounded"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f", exhausted={self.reason!r}" if self.exhausted else ""
        return f"Budget({self.describe()}{state})"


def parse_budget_spec(spec: str) -> Budget:
    """Parse ``"wall=2.5;smt=500;sat=100000;paths=50"`` into a Budget.

    Field aliases: ``wall``/``wall_s``/``time`` (float seconds),
    ``smt``/``smt_queries``/``queries``, ``sat``/``sat_conflicts``/
    ``conflicts``, ``paths``/``symexec_paths`` (non-negative ints).
    """
    fields: Dict[str, object] = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad budget entry {part!r}: expected <field>=<value>")
        name, _, raw = part.partition("=")
        field = _FIELD_ALIASES.get(name.strip().lower())
        if field is None:
            raise ValueError(
                f"unknown budget field {name.strip()!r}; expected one of "
                f"{sorted(set(_FIELD_ALIASES))}")
        raw = raw.strip()
        try:
            value: Union[int, float] = (float(raw) if field == "wall_s"
                                        else int(raw))
        except ValueError:
            raise ValueError(
                f"bad budget value {raw!r} for field {name.strip()!r}")
        if field in fields:
            raise ValueError(f"duplicate budget field {name.strip()!r}")
        fields[field] = value
    if not fields:
        raise ValueError(f"empty budget spec {spec!r}")
    return Budget(**fields)  # type: ignore[arg-type]


def resolve_budget(config_value: Union[Budget, str, None] = None
                   ) -> Optional[Budget]:
    """Effective budget: explicit config wins, else ``REPRO_BUDGET``.

    Accepts a ready-made :class:`Budget`, a spec string, or None (defer
    to the environment).  ``""`` and ``"0"`` mean "no budget".
    """
    if isinstance(config_value, Budget):
        return config_value
    spec = config_value
    if spec is None:
        spec = os.environ.get(ENV_BUDGET, "")
    spec = spec.strip()
    if not spec or spec == "0":
        return None
    return parse_budget_spec(spec)
