"""Resilience layer: budgets, fault injection, graceful degradation.

PINS is an anytime search (the paper reports wall-clock-bounded
results throughout), so every expensive layer in this repo must be
*cancellable* and must *survive partial failure*:

``repro.resil.budget``
    A :class:`Budget` carries a wall-clock deadline plus count limits
    (SMT queries, SAT conflicts, symexec paths) through the whole
    stack.  Layers charge against it at cheap boundaries and bail out
    cooperatively; PINS then returns the best-so-far solution set with
    status ``budget_exhausted`` instead of raising.

``repro.resil.faults``
    A deterministic fault injector (``REPRO_FAULTS`` /
    ``PinsConfig.faults``) whose injection sites are zero-overhead
    no-op hooks when no plan is installed — the same module-global
    early-return pattern ``repro.obs`` uses.

Degradation cascades themselves live where the failures happen
(``perf.pool`` worker death -> serial re-execution, ``perf.cache``
shard corruption -> quarantine, repeated per-candidate SMT timeouts
-> demotion in ``pins.solve``); this package supplies the budget and
the faults that drive them.
"""

from .budget import (
    ENV_BUDGET,
    Budget,
    BudgetExhausted,
    parse_budget_spec,
    resolve_budget,
)
from .faults import (
    ENV_FAULTS,
    FaultPlan,
    active_plan,
    install_plan,
    parse_fault_spec,
    resolve_fault_plan,
    should_fail,
    uninstall_plan,
)

__all__ = [
    "ENV_BUDGET",
    "ENV_FAULTS",
    "Budget",
    "BudgetExhausted",
    "FaultPlan",
    "active_plan",
    "install_plan",
    "parse_budget_spec",
    "parse_fault_spec",
    "resolve_budget",
    "resolve_fault_plan",
    "should_fail",
    "uninstall_plan",
]
