"""Deterministic fault injection for resilience testing.

A :class:`FaultPlan` maps *site* names to the occurrence indices at
which they fire.  Sites are string labels baked into the code paths the
resilience layer protects::

    smt.timeout          Solver.check answers "unknown" (an injected
                         solver timeout) instead of solving.
    pool.worker_crash    The next task submitted to a parallel
                         WorkerPool hard-exits its worker (os._exit).
    pool.worker_hang     The next submitted task wedges its worker;
                         the pool's per-task liveness timeout must
                         rescue the run.
    cache.corrupt_shard  QueryCache._load_disk corrupts the first
                         on-disk cache file before reading it, forcing
                         the quarantine path.
    serve.worker_crash   The next job dispatched by the repro.serve
                         fleet hard-exits its worker; the dispatcher
                         must respawn the worker and requeue the job.
    serve.worker_hang    The next dispatched serve job wedges its
                         worker; the service's job timeout must reap
                         and requeue it.

Spec grammar (``REPRO_FAULTS`` / ``PinsConfig.faults``)::

    site@N[,M...]   fire at the N-th (0-based) hit of the site, ...
    site@*          fire at every hit
    entries joined by ";", e.g. "smt.timeout@3;pool.worker_crash@0"

Injection is deterministic: each site keeps a hit counter in the plan,
so the same plan against the same run fires at exactly the same
moments.  :func:`repro.pins.algorithm.run_pins` installs a *fresh* plan
per run (counters reset), making chaos reproducible run-to-run.  Pool
faults are decided in the parent process at submission time and worker
processes uninstall any inherited plan, so fault decisions never depend
on work distribution across forks.

The hot-path hook is :func:`should_fail`, which follows the
``repro.obs`` zero-overhead pattern: when no plan is installed it is a
module-global load plus an ``is None`` test.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Mapping, Optional, Union

from .. import obs

ENV_FAULTS = "REPRO_FAULTS"
ALWAYS = "*"


class FaultPlan:
    """Per-site occurrence sets plus mutable hit counters."""

    def __init__(self, sites: Mapping[str, Union[str, FrozenSet[int]]]):
        self.sites: Dict[str, Union[str, FrozenSet[int]]] = dict(sites)
        self.hits: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def hit(self, site: str) -> bool:
        """Count one occurrence of ``site``; True when it should fail."""
        spec = self.sites.get(site)
        if spec is None:
            return False
        n = self.hits.get(site, 0)
        self.hits[site] = n + 1
        fire = spec == ALWAYS or n in spec
        if fire:
            self.fired[site] = self.fired.get(site, 0) + 1
            obs.count(f"resil.fault.{site}")
        return fire

    def describe(self) -> str:
        parts = []
        for site in sorted(self.sites):
            spec = self.sites[site]
            occ = ALWAYS if spec == ALWAYS else ",".join(
                str(i) for i in sorted(spec))
            parts.append(f"{site}@{occ}")
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()!r}, fired={self.fired})"


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse ``"site@N[,M...];site@*"`` into a :class:`FaultPlan`."""
    sites: Dict[str, Union[str, FrozenSet[int]]] = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if "@" not in part:
            raise ValueError(
                f"bad fault entry {part!r}: expected <site>@<occurrences>")
        site, _, occ = part.partition("@")
        site, occ = site.strip(), occ.strip()
        if not site or not occ:
            raise ValueError(f"bad fault entry {part!r}")
        if occ == ALWAYS:
            sites[site] = ALWAYS
            continue
        try:
            idxs = frozenset(int(x) for x in occ.split(","))
        except ValueError:
            raise ValueError(
                f"bad occurrence list {occ!r} for site {site!r}")
        if any(i < 0 for i in idxs):
            raise ValueError(
                f"negative occurrence in {occ!r} for site {site!r}")
        prev = sites.get(site)
        if prev == ALWAYS:
            continue
        sites[site] = (prev or frozenset()) | idxs
    if not sites:
        raise ValueError(f"empty fault spec {spec!r}")
    return FaultPlan(sites)


_PLAN: Optional[FaultPlan] = None


def should_fail(site: str) -> bool:
    """The injection hook; a no-op ``is None`` test when no plan is set."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.hit(site)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` (None uninstalls); returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def uninstall_plan() -> Optional[FaultPlan]:
    return install_plan(None)


def resolve_fault_plan(config_value: Union[FaultPlan, str, None] = None
                       ) -> Optional[FaultPlan]:
    """Effective plan: explicit config wins, else ``REPRO_FAULTS``.

    ``""`` and ``"0"`` mean "no faults".  The returned plan is freshly
    parsed (zeroed hit counters) unless a :class:`FaultPlan` instance
    was passed directly.
    """
    if isinstance(config_value, FaultPlan):
        return config_value
    spec = config_value
    if spec is None:
        spec = os.environ.get(ENV_FAULTS, "")
    spec = spec.strip()
    if not spec or spec == "0":
        return None
    return parse_fault_spec(spec)
