"""Pattern-driven axiom instantiation (a small E-matching).

External library functions (``strlen``, ``append``, ``cos`` ...) are
uninterpreted symbols constrained by universally quantified axioms, as in
Section 2.3 of the paper.  Before ground solving, each axiom is
instantiated against the ground terms occurring in the query: a *trigger*
pattern is matched syntactically against every ground subterm, the
resulting substitution is applied to the axiom body, and the ground
instance is added as an ordinary assertion.  Instantiation runs for a
bounded number of rounds because instances introduce new ground terms.

This is sound (every instance is implied by the axiom) and incomplete
(like every trigger-based instantiation, including Z3's) — acceptable
here because PINS is inductive and validates its output post-hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .terms import Op, Term, mk_int, substitute, subterms


@dataclass(frozen=True)
class Axiom:
    """A universally quantified axiom.

    ``variables`` are the quantified variables (as ``mk_var`` terms whose
    names conventionally start with ``?``); ``body`` is the matrix;
    ``patterns`` are triggers over those variables.  A trigger is either a
    single term or a *multi-pattern* (tuple of terms matched jointly
    against the ground pool); each trigger must cover every variable.
    """

    name: str
    variables: Tuple[Term, ...]
    body: Term
    patterns: Tuple[object, ...]  # Term or Tuple[Term, ...]

    def normalized_patterns(self) -> Tuple[Tuple[Term, ...], ...]:
        return tuple(
            pat if isinstance(pat, tuple) else (pat,) for pat in self.patterns
        )

    def __post_init__(self) -> None:
        bound = set(self.variables)
        for pat in self.normalized_patterns():
            covered: Set[Term] = set()
            for component in pat:
                covered |= {t for t in subterms(component) if t in bound}
            if covered != bound:
                missing = {v.payload for v in bound - covered}
                raise ValueError(
                    f"axiom {self.name!r}: pattern {pat!r} does not cover {missing}"
                )


def match(pattern: Term, ground: Term, bound: Set[Term],
          subst: Optional[Dict[Term, Term]] = None) -> Optional[Dict[Term, Term]]:
    """Syntactic one-way matching of ``pattern`` against ``ground``."""
    if subst is None:
        subst = {}
    if pattern in bound:
        seen = subst.get(pattern)
        if seen is None:
            if pattern.sort is not ground.sort:
                return None
            subst[pattern] = ground
            return subst
        return subst if seen is ground else None
    if pattern.op != ground.op or pattern.payload != ground.payload:
        return None
    if len(pattern.args) != len(ground.args):
        return None
    for p_arg, g_arg in zip(pattern.args, ground.args):
        if match(p_arg, g_arg, bound, subst) is None:
            return None
    return subst


def instantiate(axioms: Sequence[Axiom], assertions: Sequence[Term],
                rounds: int = 2, max_instances: int = 2000) -> List[Term]:
    """Ground instances of ``axioms`` relevant to ``assertions``."""
    instances: List[Term] = []
    produced: Set[Tuple[str, Tuple[int, ...]]] = set()
    ground_pool: List[Term] = []
    pool_ids: Set[int] = set()

    def feed(term: Term) -> None:
        for sub in subterms(term):
            if sub.id not in pool_ids:
                pool_ids.add(sub.id)
                ground_pool.append(sub)

    for formula in assertions:
        feed(formula)

    def joint_matches(components: Tuple[Term, ...], bound: Set[Term],
                      pool: List[Term]):
        """All substitutions matching every component against the pool."""
        partials: List[Dict[Term, Term]] = [{}]
        for component in components:
            extended: List[Dict[Term, Term]] = []
            for partial in partials:
                for ground in pool:
                    subst = match(component, ground, bound, dict(partial))
                    if subst is not None:
                        extended.append(subst)
                if len(extended) > 50_000:
                    break
            partials = extended
            if not partials:
                return
        yield from partials

    for _ in range(rounds):
        new_instances: List[Term] = []
        pool_snapshot = list(ground_pool)
        for axiom in axioms:
            bound = set(axiom.variables)
            for pattern in axiom.normalized_patterns():
                for subst in joint_matches(pattern, bound, pool_snapshot):
                    if len(subst) != len(bound):
                        continue
                    key = (axiom.name,
                           tuple(subst[v].id for v in axiom.variables))
                    if key in produced:
                        continue
                    produced.add(key)
                    new_instances.append(substitute(axiom.body, dict(subst)))
                    if len(produced) >= max_instances:
                        break
                if len(produced) >= max_instances:
                    break
        if not new_instances:
            break
        for inst in new_instances:
            feed(inst)
        instances.extend(new_instances)
    return instances


def guided_instances(axioms: Sequence[Axiom],
                     guided: Mapping[str, Sequence[int]],
                     max_instances: int = 2000) -> List[Term]:
    """Ground instances covering a statically known index region.

    The region analysis (:mod:`repro.analysis.regions`) hands the solver
    the finite set of indices each array can be accessed at; any
    single-variable axiom whose trigger selects from such an array over
    its quantified index is instantiated at *every* region index —
    independent of which ground index terms happen to occur in the query,
    which is exactly the gap trigger E-matching leaves (a model can
    assign garbage to cells the triggers never touched, making SMT
    counterexamples that do not replay concretely).  Array names in
    ``guided`` are version-stripped (``A``, not ``A#0``).
    """
    out: List[Term] = []
    produced: Set[Tuple[str, int]] = set()
    for axiom in axioms:
        if len(axiom.variables) != 1:
            continue
        var = axiom.variables[0]
        arrays: Set[str] = set()
        for pattern in axiom.normalized_patterns():
            for component in pattern:
                for sub in subterms(component):
                    if (sub.op == Op.SELECT and sub.args[1] is var
                            and sub.args[0].op == Op.VAR):
                        name = str(sub.args[0].payload).split("#", 1)[0]
                        arrays.add(name)
        indices = sorted({i for name in arrays
                          for i in guided.get(name, ())})
        for i in indices:
            key = (axiom.name, i)
            if key in produced:
                continue
            produced.add(key)
            out.append(substitute(axiom.body, {var: mk_int(i)}))
            if len(out) >= max_instances:
                return out
    return out
