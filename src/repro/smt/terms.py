"""Hash-consed terms for the SMT substrate.

The solver works over a small many-sorted first-order language:

* sorts: ``INT``, ``BOOL``, arrays (int-indexed), plus uninterpreted sorts
  (strings, opaque objects) declared on the fly;
* interpreted symbols: linear arithmetic (``+``, ``-``, integer constants,
  constant multiplication), comparisons (``=``, ``<=``), boolean
  connectives;
* partially interpreted symbols: ``select``/``store`` (handled by lazy
  read-over-write expansion), and nonlinear ``mul``/``div``/``mod`` which
  the core treats as uninterpreted but the model evaluator interprets;
* uninterpreted functions for external library calls, constrained by
  user-supplied axioms (:mod:`repro.smt.quant`).

Terms are hash-consed: structural equality is pointer equality, and every
term carries a unique ``id`` so union-find structures can be array-backed.
``id`` values depend on cons *history* (what was built earlier in the
process), so anything that must be reproducible across processes — in
particular the orientation of commutative operands in ``mk_add`` /
``mk_mul`` / ``mk_eq`` — orders by ``skey``, a structural digest computed
once at construction.  Without this, running benchmark A before benchmark
B changes B's term structure (and hence its synthesis trajectory and
inverse digest) relative to running B alone.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple


class SortKind:
    INT = "Int"
    BOOL = "Bool"
    ARRAY = "Array"
    UNINTERPRETED = "U"


class TSort:
    """A solver sort.  Use the module-level constructors, not this class."""

    __slots__ = ("kind", "name", "elem")

    def __init__(self, kind: str, name: str = "", elem: Optional["TSort"] = None):
        self.kind = kind
        self.name = name
        self.elem = elem

    def __repr__(self) -> str:
        if self.kind == SortKind.ARRAY:
            return f"(Array Int {self.elem!r})"
        return self.name or self.kind

    def __reduce__(self):
        return (_restore_sort, (self.kind, self.name, self.elem))

    @property
    def is_int(self) -> bool:
        return self.kind == SortKind.INT

    @property
    def is_bool(self) -> bool:
        return self.kind == SortKind.BOOL

    @property
    def is_array(self) -> bool:
        return self.kind == SortKind.ARRAY


INT = TSort(SortKind.INT, "Int")
BOOL = TSort(SortKind.BOOL, "Bool")


def _restore_sort(kind: str, name: str, elem: Optional["TSort"]) -> "TSort":
    """Unpickle a sort through the canonical constructors so identity
    (``id(sort)``-keyed tables, ``is`` checks) survives the round trip."""
    if kind == SortKind.INT:
        return INT
    if kind == SortKind.BOOL:
        return BOOL
    if kind == SortKind.ARRAY:
        assert elem is not None
        return array_sort(elem)
    return uninterpreted_sort(name)

_UNINTERPRETED: Dict[str, TSort] = {}
_ARRAYS: Dict[int, TSort] = {}


def uninterpreted_sort(name: str) -> TSort:
    """Declare (or fetch) an uninterpreted sort by name."""
    if name not in _UNINTERPRETED:
        _UNINTERPRETED[name] = TSort(SortKind.UNINTERPRETED, name)
    return _UNINTERPRETED[name]


STR = uninterpreted_sort("Str")
OBJ = uninterpreted_sort("Obj")


def array_sort(elem: TSort) -> TSort:
    """The sort of int-indexed arrays with ``elem`` elements."""
    key = id(elem)
    if key not in _ARRAYS:
        _ARRAYS[key] = TSort(SortKind.ARRAY, f"Array<{elem!r}>", elem)
    return _ARRAYS[key]


ARR = array_sort(INT)
SARR = array_sort(STR)


class Op:
    """Operator tags."""

    VAR = "var"
    INT_CONST = "const"
    ADD = "+"  # n-ary
    MUL_CONST = "*c"  # constant * term
    MUL = "mul"  # nonlinear, treated as uninterpreted by the core
    DIV = "div"
    MOD = "mod"
    SELECT = "select"
    STORE = "store"
    APP = "app"  # uninterpreted function application
    EQ = "="
    LE = "<="
    NOT = "not"
    AND = "and"
    OR = "or"
    TRUE = "true"
    FALSE = "false"


class Term:
    """An immutable, hash-consed term."""

    __slots__ = ("id", "op", "args", "payload", "sort", "skey", "shash",
                 "__weakref__")

    _ids = itertools.count()
    _table: Dict[tuple, "Term"] = {}

    def __new__(cls, op: str, args: Tuple["Term", ...], payload, sort: TSort):
        key = (op, args, payload, id(sort))
        cached = cls._table.get(key)
        if cached is not None:
            return cached
        term = object.__new__(cls)
        term.id = next(cls._ids)
        term.op = op
        term.args = args
        term.payload = payload
        term.sort = sort
        h = hashlib.blake2b(digest_size=16)
        h.update(op.encode())
        h.update(repr(payload).encode())
        h.update(repr(sort).encode())
        for a in args:
            h.update(a.skey)
        term.skey = h.digest()
        term.shash = int.from_bytes(term.skey[:8], "big")
        cls._table[key] = term
        return term

    def __repr__(self) -> str:
        return term_to_str(self)

    def __reduce__(self):
        # Rebuild through __new__ so unpickled terms re-enter the target
        # process's hash-cons table: structural round trips preserve
        # identity semantics (same structure => same object), even though
        # raw ``id`` values differ between processes.
        return (Term, (self.op, self.args, self.payload, self.sort))

    # Hash-consing makes default identity *equality* correct and fast,
    # but the default identity hash is an address: any iterated
    # Set[Term]/Dict[Term, _] would then order by allocation history,
    # leaking nondeterminism into clause and lemma order.  A structural
    # hash keeps membership semantics (eq is still identity) while
    # making container iteration layout-independent.
    def __hash__(self) -> int:
        return self.shash

    @property
    def is_atom(self) -> bool:
        return self.op in (Op.EQ, Op.LE) or (
            self.sort.is_bool and self.op in (Op.VAR, Op.APP, Op.SELECT)
        )


def term_to_str(t: Term) -> str:
    if t.op == Op.VAR:
        return str(t.payload)
    if t.op == Op.INT_CONST:
        return str(t.payload)
    if t.op == Op.TRUE:
        return "true"
    if t.op == Op.FALSE:
        return "false"
    if t.op == Op.MUL_CONST:
        return f"({t.payload} * {term_to_str(t.args[0])})"
    if t.op == Op.APP:
        return f"{t.payload}({', '.join(term_to_str(a) for a in t.args)})"
    if t.op in (Op.EQ, Op.LE, Op.ADD):
        return "(" + f" {t.op} ".join(term_to_str(a) for a in t.args) + ")"
    return f"({t.op} {' '.join(term_to_str(a) for a in t.args)})"


# ---------------------------------------------------------------------------
# Constructors (with light normalization / constant folding)
# ---------------------------------------------------------------------------

TRUE = Term(Op.TRUE, (), None, BOOL)
FALSE = Term(Op.FALSE, (), None, BOOL)


def mk_var(name: str, sort: TSort) -> Term:
    return Term(Op.VAR, (), name, sort)


def mk_int(value: int) -> Term:
    return Term(Op.INT_CONST, (), int(value), INT)


ZERO = mk_int(0)
ONE = mk_int(1)


def _flatten_add(parts: Iterable[Term]):
    const = 0
    flat = []
    for p in parts:
        if p.op == Op.INT_CONST:
            const += p.payload
        elif p.op == Op.ADD:
            inner_const, inner = _flatten_add(p.args)
            const += inner_const
            flat.extend(inner)
        else:
            flat.append(p)
    return const, flat


def mk_add(*parts: Term) -> Term:
    """N-ary addition with constant folding and coefficient merging."""
    const, flat = _flatten_add(parts)
    # Merge repeated terms into coefficient form.
    coeffs: Dict[Term, int] = {}
    order = []
    for p in flat:
        if p.op == Op.MUL_CONST:
            base, c = p.args[0], p.payload
        else:
            base, c = p, 1
        if base not in coeffs:
            coeffs[base] = 0
            order.append(base)
        coeffs[base] += c
    out = []
    for base in order:
        c = coeffs[base]
        if c == 0:
            continue
        out.append(base if c == 1 else Term(Op.MUL_CONST, (base,), c, INT))
    if const != 0 or not out:
        out.append(mk_int(const))
    if len(out) == 1:
        return out[0]
    out.sort(key=lambda t: t.skey)
    return Term(Op.ADD, tuple(out), None, INT)


def mk_mul_const(c: int, t: Term) -> Term:
    if c == 0:
        return ZERO
    if t.op == Op.INT_CONST:
        return mk_int(c * t.payload)
    if c == 1:
        return t
    if t.op == Op.MUL_CONST:
        return mk_mul_const(c * t.payload, t.args[0])
    if t.op == Op.ADD:
        return mk_add(*(mk_mul_const(c, a) for a in t.args))
    return Term(Op.MUL_CONST, (t,), c, INT)


def mk_sub(a: Term, b: Term) -> Term:
    return mk_add(a, mk_mul_const(-1, b))


def mk_mul(a: Term, b: Term) -> Term:
    """Multiplication; linear cases are folded, others stay symbolic."""
    if a.op == Op.INT_CONST:
        return mk_mul_const(a.payload, b)
    if b.op == Op.INT_CONST:
        return mk_mul_const(b.payload, a)
    x, y = (a, b) if a.skey <= b.skey else (b, a)
    return Term(Op.MUL, (x, y), None, INT)


def mk_div(a: Term, b: Term) -> Term:
    if a.op == Op.INT_CONST and b.op == Op.INT_CONST and b.payload != 0:
        q, r = divmod(a.payload, b.payload)
        return mk_int(q)
    return Term(Op.DIV, (a, b), None, INT)


def mk_mod(a: Term, b: Term) -> Term:
    if a.op == Op.INT_CONST and b.op == Op.INT_CONST and b.payload != 0:
        return mk_int(a.payload % b.payload)
    return Term(Op.MOD, (a, b), None, INT)


def mk_select(arr: Term, idx: Term) -> Term:
    if not arr.sort.is_array:
        raise TypeError(f"select from non-array term {arr!r}")
    return Term(Op.SELECT, (arr, idx), None, arr.sort.elem)


def mk_store(arr: Term, idx: Term, val: Term) -> Term:
    if not arr.sort.is_array:
        raise TypeError(f"store into non-array term {arr!r}")
    return Term(Op.STORE, (arr, idx, val), None, arr.sort)


def mk_app(name: str, args: Sequence[Term], sort: TSort) -> Term:
    return Term(Op.APP, tuple(args), name, sort)


def mk_eq(a: Term, b: Term) -> Term:
    if a is b:
        return TRUE
    if a.op == Op.INT_CONST and b.op == Op.INT_CONST:
        return TRUE if a.payload == b.payload else FALSE
    x, y = (a, b) if a.skey <= b.skey else (b, a)
    return Term(Op.EQ, (x, y), None, BOOL)


def mk_le(a: Term, b: Term) -> Term:
    if a.op == Op.INT_CONST and b.op == Op.INT_CONST:
        return TRUE if a.payload <= b.payload else FALSE
    if a is b:
        return TRUE
    return Term(Op.LE, (a, b), None, BOOL)


def mk_lt(a: Term, b: Term) -> Term:
    return mk_le(mk_add(a, ONE), b)


def mk_ge(a: Term, b: Term) -> Term:
    return mk_le(b, a)


def mk_gt(a: Term, b: Term) -> Term:
    return mk_lt(b, a)


def mk_not(t: Term) -> Term:
    if t is TRUE:
        return FALSE
    if t is FALSE:
        return TRUE
    if t.op == Op.NOT:
        return t.args[0]
    return Term(Op.NOT, (t,), None, BOOL)


def mk_and(*parts: Term) -> Term:
    flat = []
    for p in parts:
        if p is TRUE:
            continue
        if p is FALSE:
            return FALSE
        if p.op == Op.AND:
            flat.extend(p.args)
        else:
            flat.append(p)
    seen = set()
    uniq = []
    for p in flat:
        if p.id not in seen:
            seen.add(p.id)
            uniq.append(p)
    if not uniq:
        return TRUE
    if len(uniq) == 1:
        return uniq[0]
    return Term(Op.AND, tuple(uniq), None, BOOL)


def mk_or(*parts: Term) -> Term:
    flat = []
    for p in parts:
        if p is FALSE:
            continue
        if p is TRUE:
            return TRUE
        if p.op == Op.OR:
            flat.extend(p.args)
        else:
            flat.append(p)
    seen = set()
    uniq = []
    for p in flat:
        if p.id not in seen:
            seen.add(p.id)
            uniq.append(p)
    if not uniq:
        return FALSE
    if len(uniq) == 1:
        return uniq[0]
    return Term(Op.OR, tuple(uniq), None, BOOL)


def mk_implies(a: Term, b: Term) -> Term:
    return mk_or(mk_not(a), b)


def mk_distinct(a: Term, b: Term) -> Term:
    return mk_not(mk_eq(a, b))


def subterms(t: Term) -> Iterable[Term]:
    """All subterms of ``t`` (pre-order, may repeat shared nodes once)."""
    seen = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if cur.id in seen:
            continue
        seen.add(cur.id)
        yield cur
        stack.extend(cur.args)


def term_vars(t: Term) -> frozenset:
    """The free variables of a term."""
    return frozenset(s for s in subterms(t) if s.op == Op.VAR)


def substitute(t: Term, mapping: Dict[Term, Term]) -> Term:
    """Capture-free substitution of variables (or arbitrary subterms)."""
    hit = mapping.get(t)
    if hit is not None:
        return hit
    if not t.args:
        return t
    new_args = tuple(substitute(a, mapping) for a in t.args)
    if new_args == t.args:
        return t
    return rebuild(t, new_args)


def rebuild(t: Term, args: Tuple[Term, ...]) -> Term:
    """Rebuild a term with new arguments, re-running normalization."""
    if t.op == Op.ADD:
        return mk_add(*args)
    if t.op == Op.MUL_CONST:
        return mk_mul_const(t.payload, args[0])
    if t.op == Op.MUL:
        return mk_mul(*args)
    if t.op == Op.DIV:
        return mk_div(*args)
    if t.op == Op.MOD:
        return mk_mod(*args)
    if t.op == Op.SELECT:
        return mk_select(*args)
    if t.op == Op.STORE:
        return mk_store(*args)
    if t.op == Op.APP:
        return mk_app(t.payload, args, t.sort)
    if t.op == Op.EQ:
        return mk_eq(*args)
    if t.op == Op.LE:
        return mk_le(*args)
    if t.op == Op.NOT:
        return mk_not(args[0])
    if t.op == Op.AND:
        return mk_and(*args)
    if t.op == Op.OR:
        return mk_or(*args)
    return Term(t.op, args, t.payload, t.sort)
