"""Tseitin CNF conversion from boolean term structure to SAT clauses."""

from __future__ import annotations

from typing import Dict, List, Optional

from .sat import SatSolver
from .terms import FALSE, Op, TRUE, Term


class CnfBuilder:
    """Compiles boolean :class:`Term` structure into a :class:`SatSolver`.

    Every *atom* (theory literal or boolean variable) gets a proxy SAT
    variable; composite formulas get Tseitin variables.  The atom<->var
    mapping is exposed so the DPLL(T) layer can read the theory-relevant
    part of a boolean model.
    """

    def __init__(self, sat: SatSolver):
        self.sat = sat
        self.atom_var: Dict[Term, int] = {}
        self.var_atom: Dict[int, Term] = {}
        self._cache: Dict[int, int] = {}  # term id -> SAT literal

    def atom_literal(self, term: Term) -> int:
        """The SAT variable standing for an atomic term."""
        var = self.atom_var.get(term)
        if var is None:
            var = self.sat.new_var()
            self.atom_var[term] = var
            self.var_atom[var] = term
        return var

    def literal_for(self, term: Term) -> int:
        """Compile a formula to a SAT literal (adding Tseitin clauses)."""
        if term is TRUE or term is FALSE:
            # Encode constants via a dedicated always-true variable.
            v = self.atom_literal(TRUE)
            self.sat.add_clause([v])
            return v if term is TRUE else -v
        cached = self._cache.get(term.id)
        if cached is not None:
            return cached
        if term.op == Op.NOT:
            lit = -self.literal_for(term.args[0])
        elif term.op == Op.AND:
            lits = [self.literal_for(a) for a in term.args]
            out = self.sat.new_var()
            for l in lits:
                self.sat.add_clause([-out, l])
            self.sat.add_clause([out] + [-l for l in lits])
            lit = out
        elif term.op == Op.OR:
            lits = [self.literal_for(a) for a in term.args]
            out = self.sat.new_var()
            for l in lits:
                self.sat.add_clause([-l, out])
            self.sat.add_clause([-out] + lits)
            lit = out
        else:
            lit = self.atom_literal(term)
        self._cache[term.id] = lit
        return lit

    def assert_formula(self, term: Term, guard: Optional[int] = None) -> None:
        """Assert a formula at the top level.

        With ``guard`` (a SAT literal, typically the negation of an
        assumption variable), every *top-level* clause additionally
        contains the guard — the formula is asserted conditionally and
        becomes inert once the guard literal is satisfied.  Tseitin
        definition clauses for subformulas stay unguarded: they only
        define fresh variables (an equivalence), so they are globally
        consistent and safely shared across scopes.
        """
        if term is TRUE:
            return
        if term.op == Op.AND:
            for part in term.args:
                self.assert_formula(part, guard)
            return
        if term.op == Op.OR:
            # Top-level disjunctions become a single clause directly.
            lits: List[int] = []
            for part in term.args:
                lits.append(self.literal_for(part))
            if guard is not None:
                lits.append(guard)
            self.sat.add_clause(lits)
            return
        lit = self.literal_for(term)
        self.sat.add_clause([lit] if guard is None else [lit, guard])

    def asserted_atoms(self, model: Dict[int, bool]):
        """Theory literals implied by a boolean model: (atom, polarity)."""
        for atom, var in self.atom_var.items():
            if atom is TRUE:
                continue
            if var in model:
                yield atom, model[var]
