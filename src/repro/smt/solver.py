"""The DPLL(T) core: CDCL SAT + EUF + LIA + arrays + axiom instantiation.

One :class:`Solver` instance answers one query (PINS creates thousands of
short-lived queries; construction is cheap).  The solving loop is:

1. Preprocess assertions: inline SSA array definitions, add
   read-over-write lemmas, instantiate library axioms, linearize
   ``div``/``mod`` by constants, and add trichotomy lemmas for integer
   equalities that occur negatively.
2. CDCL enumerates boolean models of the clause skeleton.
3. Each boolean model's theory literals are checked by congruence closure
   (EUF) and simplex + branch-and-bound (LIA); conflicts become learned
   clauses.
4. A theory-consistent assignment is turned into a candidate
   :class:`~repro.smt.models.Model` and *verified* by concrete
   re-evaluation; congruence violations found by verification are repaired
   with lemmas (lemma-on-demand combination) and the loop continues.

``check()`` answers ``sat`` (with a verified model), ``unsat``, or
``unknown`` (budget exhausted / nonlinear fragment) — callers treat
``unknown`` conservatively.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs
from ..resil import BudgetExhausted
from ..resil.faults import should_fail as _fault_should_fail
from . import arrays as arrays_mod
from . import lia as lia_mod
from .cnf import CnfBuilder
from .euf import CongruenceClosure, EufConflict
from .models import Model, ModelInconsistency, build_model, verify_literals
from .quant import Axiom, guided_instances, instantiate
from .sat import SatSolver
from .terms import (
    FALSE,
    Op,
    TRUE,
    Term,
    mk_add,
    mk_and,
    mk_eq,
    mk_int,
    mk_le,
    mk_lt,
    mk_mul_const,
    mk_not,
    mk_or,
    subterms,
)

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


# Theory participation bits, OR-combined up the term DAG.
_TH_LIA = 1
_TH_EUF = 2
_TH_ARRAYS = 4

_LIA_OPS = frozenset((Op.ADD, Op.MUL_CONST, Op.MUL, Op.DIV, Op.MOD, Op.LE))
_ARRAY_OPS = frozenset((Op.SELECT, Op.STORE))
_COMMUTATIVE_OPS = frozenset((Op.EQ, Op.ADD, Op.MUL))

_SIG_MEMO: Dict[int, Tuple[bytes, int]] = {}
"""``term.id -> (structural sha1 digest, theory bitmask)``.

Terms are hash-consed and immortal (the cons table holds strong
references), so a process-global memo keyed by ``id`` is safe; it interns
the per-subterm work so fingerprinting a query costs one walk over the
*new* nodes only — tracing and the query cache no longer pay a full tree
walk per query.
"""


def _term_signature(t: Term) -> Tuple[bytes, int]:
    """Fused digest + theory classification in a single subterm traversal."""
    hit = _SIG_MEMO.get(t.id)
    if hit is not None:
        return hit
    stack = [t]
    while stack:
        cur = stack[-1]
        if cur.id in _SIG_MEMO:
            stack.pop()
            continue
        pending = [a for a in cur.args if a.id not in _SIG_MEMO]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if cur.op in _LIA_OPS:
            flags = _TH_LIA
        elif cur.op == Op.APP:
            flags = _TH_EUF
        elif cur.op in _ARRAY_OPS:
            flags = _TH_ARRAYS
        else:
            flags = 0
        h = hashlib.sha1()
        h.update(str(cur.op).encode())
        if cur.payload is not None:
            h.update(b"|" + repr(cur.payload).encode())
        child = [_SIG_MEMO[arg.id] for arg in cur.args]
        digests = [d for d, _ in child]
        if cur.op in _COMMUTATIVE_OPS:
            # mk_eq/mk_add/mk_mul orient their arguments by term id —
            # i.e. by construction history, which differs between runs
            # that take different paths (a warm cache run skips solves
            # the cold run performed).  Sorting the child digests makes
            # the fingerprint history-independent, so `a = b` and
            # `b = a` key the same cache entry.
            digests.sort()
        for d in digests:
            h.update(d)
        for _, f in child:
            flags |= f
        _SIG_MEMO[cur.id] = (h.digest(), flags)
    return _SIG_MEMO[t.id]


def query_signature(formulas: Iterable[Term]) -> Tuple[str, str]:
    """``(theories label, full structural fingerprint)`` in one traversal.

    Fuses the former ``query_theories`` + ``query_fingerprint`` double
    walk: each subterm is visited once (and, thanks to the process-global
    memo, only on first sight ever).  The fingerprint is the full sha1
    hexdigest — the query cache keys on all 160 bits; the 16-char trace
    fingerprint is a prefix of it.
    """
    h = hashlib.sha1()
    flags = 0
    for f in formulas:
        d, fl = _term_signature(f)
        h.update(d)
        flags |= fl
    parts = [name for name, bit in
             (("arrays", _TH_ARRAYS), ("euf", _TH_EUF), ("lia", _TH_LIA))
             if flags & bit]
    return ("+".join(parts) if parts else "prop", h.hexdigest())


def query_theories(formulas: Iterable[Term]) -> str:
    """Classify a query by the theories its terms exercise.

    Returns a stable ``+``-joined label (``"euf+lia"``, ``"arrays+lia"``,
    ``"prop"`` for pure boolean structure) used to bucket trace counters.
    """
    return query_signature(formulas)[0]


def query_fingerprint(formulas: Iterable[Term]) -> str:
    """A structural hash of a query, stable across processes.

    Two queries with identical assertion structure (same ops, payloads,
    and argument shapes, in the same order) share a fingerprint, which is
    what makes trace fingerprints usable as a query-cache key
    (:mod:`repro.perf.cache` uses the untruncated digest).
    """
    return query_signature(formulas)[1][:16]


_AXIOM_MEMO: Dict[int, Tuple[object, str]] = {}
"""``id(axiom) -> (axiom, digest)``; the axiom is pinned so the id can
never be recycled by a different object."""


def axioms_digest(axioms: Iterable[Axiom]) -> str:
    """A structural digest of an axiom set (part of the cache key).

    Queries with identical assertions but different axiom environments
    can differ in satisfiability (axioms add constraints), so the cache
    key must separate them.
    """
    axioms = tuple(axioms)
    if not axioms:
        return "0"
    h = hashlib.sha1()
    for ax in axioms:
        entry = _AXIOM_MEMO.get(id(ax))
        if entry is None or entry[0] is not ax:
            hh = hashlib.sha1()
            hh.update(ax.name.encode())
            for var in ax.variables:
                hh.update(_term_signature(var)[0])
            hh.update(_term_signature(ax.body)[0])
            for pattern in ax.normalized_patterns():
                for part in pattern:
                    hh.update(_term_signature(part)[0])
            entry = (ax, hh.hexdigest())
            _AXIOM_MEMO[id(ax)] = entry
        h.update(entry[1].encode())
    return h.hexdigest()[:16]


class SolverStats:
    """Per-query statistics surfaced in the experiment tables."""

    def __init__(self) -> None:
        self.theory_rounds = 0
        self.lemmas = 0
        self.sat_vars = 0
        self.sat_clauses = 0


class Solver:
    """A one-shot SMT solver for ground QF_AUFLIA + instantiated axioms."""

    def __init__(self, axioms: Iterable[Axiom] = (),
                 instantiation_rounds: int = 2,
                 max_theory_rounds: int = 400,
                 sat_conflict_budget: int = 200_000,
                 lia_branch_limit: int = 200,
                 query_cache: Optional[object] = None,
                 budget: Optional[object] = None,
                 guided_indices: Optional[Dict[str, Tuple[int, ...]]] = None):
        self.axioms = list(axioms)
        self.instantiation_rounds = instantiation_rounds
        self.guided_indices = dict(guided_indices) if guided_indices else None
        """Optional region-analysis index sets (version-stripped array
        name -> finite reachable indices); preprocessing adds the guided
        axiom instances trigger E-matching may miss.  See
        :func:`repro.smt.quant.guided_instances`."""
        self.max_theory_rounds = max_theory_rounds
        self.sat_conflict_budget = sat_conflict_budget
        self.lia_branch_limit = lia_branch_limit
        self.query_cache = query_cache
        """Optional :class:`repro.perf.cache.QueryCache`.  Duck-typed so
        the smt layer stays import-independent of ``repro.perf``."""
        self.budget = budget
        """Optional :class:`repro.resil.Budget`.  ``check()`` charges one
        SMT query per cache miss, attaches the budget to the inner SAT
        solver, and degrades to ``unknown`` (never an exception) once the
        budget is exhausted."""
        self.unknown_reason = ""
        self.assertions: List[Term] = []
        self.stats = SolverStats()
        self._model: Optional[Model] = None
        self._inc: Optional[Tuple[object, Tuple[Term, ...]]] = None

    def add(self, *formulas: Term) -> None:
        for f in formulas:
            if f is not TRUE:
                self.assertions.append(f)

    def attach_incremental(self, pool: object, base: Iterable[Term]) -> None:
        """Route this query through a warm incremental context first.

        ``pool`` is a :class:`repro.smt.incremental.ContextPool` (duck-
        typed: anything with ``try_status(solver, base, want_model)``);
        ``base`` is the query-family prefix shared across many queries.
        The warm context answers status-only — see
        :mod:`repro.smt.incremental` for when it falls back here.
        """
        self._inc = (pool, tuple(base))

    def model_if_available(self) -> Optional[Model]:
        """The sat model, or None (unsat/unknown/status-only answers)."""
        return self._model

    # -- preprocessing ---------------------------------------------------------

    def _preprocess(self) -> List[Term]:
        formulas = arrays_mod.preprocess_arrays(self.assertions)
        if self.axioms:
            instances = instantiate(
                self.axioms, formulas, rounds=self.instantiation_rounds
            )
            if self.guided_indices:
                # Region-guided instances close the E-matching gap for
                # finite index regions; duplicates of trigger-found
                # instances are dropped (terms are hash-consed) so a
                # fully trigger-covered query is byte-identical with
                # guidance on or off.
                seen = {t.id for t in formulas} | {t.id for t in instances}
                for g in guided_instances(self.axioms, self.guided_indices):
                    if g.id not in seen:
                        seen.add(g.id)
                        instances.append(g)
            formulas = formulas + instances
            # Axiom instances can introduce new selects-over-stores.
            formulas = formulas + arrays_mod.read_over_write_lemmas(formulas)
        formulas = formulas + self._divmod_lemmas(formulas)
        return formulas

    @staticmethod
    def _divmod_lemmas(formulas: List[Term]) -> List[Term]:
        """Linearize div/mod by positive constants: a = c*q + r, 0<=r<c."""
        lemmas: List[Term] = []
        seen: Set[int] = set()
        for f in formulas:
            for t in subterms(f):
                if t.id in seen:
                    continue
                seen.add(t.id)
                if t.op in (Op.DIV, Op.MOD) and t.args[1].op == Op.INT_CONST:
                    c = t.args[1].payload
                    if c <= 0:
                        continue
                    a = t.args[0]
                    from .terms import mk_div, mk_mod

                    q = mk_div(a, t.args[1])
                    r = mk_mod(a, t.args[1])
                    lemmas.append(mk_eq(a, mk_add(mk_mul_const(c, q), r)))
                    lemmas.append(mk_le(mk_int(0), r))
                    lemmas.append(mk_lt(r, mk_int(c)))
        return lemmas

    @staticmethod
    def _negative_int_eq_atoms(formula: Term, polarity: bool, out: Set[Term]) -> None:
        if formula.op == Op.NOT:
            Solver._negative_int_eq_atoms(formula.args[0], not polarity, out)
        elif formula.op in (Op.AND, Op.OR):
            for part in formula.args:
                Solver._negative_int_eq_atoms(part, polarity, out)
        elif formula.op == Op.EQ and not polarity and formula.args[0].sort.is_int:
            out.add(formula)

    @staticmethod
    def _trichotomy(atom: Term) -> Term:
        a, b = atom.args
        return mk_or(atom, mk_lt(a, b), mk_lt(b, a))

    # -- main loop ----------------------------------------------------------------

    def check(self, want_model: bool = True) -> str:
        """Decide the query; ``want_model=False`` allows status-only answers.

        With the default ``want_model=True`` a ``sat`` answer always
        carries a model — exactly the historical behaviour.  Callers that
        only consume the status (vacuity and feasibility probes) may pass
        ``want_model=False``, which lets a warm incremental context
        answer directly and lets the query cache serve/store status-only
        entries without model re-verification.
        """
        if _fault_should_fail("smt.timeout"):
            # Injected solver timeout (repro.resil.faults): behave exactly
            # as a real budget-exhausted query — unknown, never cached.
            self.unknown_reason = "injected timeout (repro.resil.faults)"
            obs.count("smt.queries")
            obs.count("smt.queries.unknown")
            return UNKNOWN
        cache = self.query_cache
        if cache is None and not obs.active():
            return self._budgeted_check(want_model)
        if cache is not None or obs.tracing_enabled():
            # One fused, memoized traversal serves both the trace labels
            # and the cache key (the old code walked the query twice).
            theories, fingerprint = query_signature(self.assertions)
            if obs.tracing_enabled():
                obs.count(f"smt.queries.theory.{theories}")
                obs.mark("smt.fingerprint", fingerprint[:16])
        key = None
        if cache is not None:
            key = (f"{fingerprint}|{axioms_digest(self.axioms)}"
                   f"|{self.instantiation_rounds}")
            if self.guided_indices:
                # Guided instances change the preprocessed formula set,
                # so guided and unguided answers must not share entries.
                guided_repr = repr(sorted(
                    (name, tuple(idx))
                    for name, idx in self.guided_indices.items()))
                key += "|g" + hashlib.sha1(guided_repr.encode()).hexdigest()[:12]
            hit = cache.lookup(key, self.assertions, need_model=want_model)
            if hit is not None:
                # Correctness guard lives in the cache: ``unknown`` is
                # never stored, and a sat hit was re-verified against
                # *these* assertions before being served.
                status, model = hit
                if status == SAT and model is None and want_model:
                    # Status-only entry (stored when a warm context or a
                    # model-free probe answered first).  A run without
                    # incremental contexts would hold a full model here,
                    # so recompute it with the one-shot path — uncharged,
                    # like the hit it replaces — and upgrade the entry.
                    try:
                        with obs.span("smt.check"):
                            status = self._check_fresh()
                    except BudgetExhausted as exc:
                        self.unknown_reason = f"budget exhausted: {exc.reason}"
                        status = UNKNOWN
                    model = self._model if status == SAT else None
                    if status in (SAT, UNSAT):
                        cache.store(key, status, model, self.assertions)
                self._model = model
                obs.count("smt.cache.hit")
                obs.count("smt.queries")
                obs.count(f"smt.queries.{status}")
                return status
            obs.count("smt.cache.miss")
        lemmas0 = self.stats.lemmas
        with obs.span("smt.check"):
            result = self._budgeted_check(want_model)
        obs.count("smt.queries")
        obs.count(f"smt.queries.{result}")
        obs.count("smt.conflict_lemmas", self.stats.lemmas - lemmas0)
        obs.count("smt.theory_rounds", self.stats.theory_rounds)
        if key is not None and result in (SAT, UNSAT):
            cache.store(key, result,
                        self._model if result == SAT else None,
                        self.assertions)
            obs.count("smt.cache.store")
        return result

    def _budgeted_check(self, want_model: bool = True) -> str:
        """Charge the resil budget around :meth:`_check`.

        Cache hits never reach this point (they cost no solving), so one
        query is charged per actual solve; exhaustion — whether tripped by
        the charge here or by per-conflict charging inside the SAT core —
        degrades to ``unknown`` with the reason recorded, never raises.
        """
        budget = self.budget
        if budget is None:
            try:
                return self._check(want_model)
            except BudgetExhausted as exc:
                # A budget-carrying warm context can charge conflicts even
                # when this solver itself is unbudgeted.
                self.unknown_reason = f"budget exhausted: {exc.reason}"
                return UNKNOWN
        try:
            budget.charge_smt_query()
        except BudgetExhausted as exc:
            self.unknown_reason = f"budget exhausted: {exc.reason}"
            obs.count("resil.budget.refused_query")
            return UNKNOWN
        try:
            return self._check(want_model)
        except BudgetExhausted as exc:
            self.unknown_reason = f"budget exhausted: {exc.reason}"
            return UNKNOWN

    def _check(self, want_model: bool = True) -> str:
        if self._inc is not None:
            pool, base = self._inc
            status = pool.try_status(self, base, want_model)
            if status is not None:
                return status
        return self._check_fresh()

    def _check_fresh(self) -> str:
        formulas = self._preprocess()
        sat = SatSolver()
        sat.budget = self.budget
        builder = CnfBuilder(sat)
        for f in formulas:
            builder.assert_formula(f)
        # Trichotomy for integer equalities used negatively.  Assert in
        # structural order: iterating the raw set would follow Python's
        # address-based object hashes, making clause order — and hence
        # the SAT search and the returned model — depend on the
        # process's allocation history.
        negative_eqs: Set[Term] = set()
        for f in formulas:
            self._negative_int_eq_atoms(f, True, negative_eqs)
        has_trichotomy: Set[Term] = set()
        for atom in sorted(negative_eqs, key=lambda t: t.skey):
            builder.assert_formula(self._trichotomy(atom))
            has_trichotomy.add(atom)

        for _ in range(self.max_theory_rounds):
            self.stats.theory_rounds += 1
            sat_result = sat.solve(max_conflicts=self.sat_conflict_budget)
            self.stats.sat_vars = sat.num_vars
            self.stats.sat_clauses = sat.num_clauses()
            if sat_result is False:
                return UNSAT
            if sat_result is None:
                self.unknown_reason = "sat budget exhausted"
                return UNKNOWN
            bool_model = sat.model()
            literals = list(builder.asserted_atoms(bool_model))
            outcome = self._theory_check(literals, builder, sat, has_trichotomy)
            if outcome == SAT:
                return SAT
            if outcome == UNKNOWN:
                return UNKNOWN
            # CONTINUE: lemmas/conflict clauses were added; iterate.
        self.unknown_reason = "theory round limit"
        return UNKNOWN

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available; call check() first (and get sat)")
        return self._model

    # -- theory checking ---------------------------------------------------------

    def _theory_check(self, literals: List[Tuple[Term, bool]],
                      builder: CnfBuilder, sat: SatSolver,
                      has_trichotomy: Set[Term]) -> str:
        outcome, model, reason = theory_check_literals(
            literals, builder, sat, has_trichotomy,
            self.lia_branch_limit, self.stats)
        if reason:
            self.unknown_reason = reason
        if outcome == SAT:
            self._model = model
        return outcome


def trichotomy_lemma(atom: Term) -> Term:
    return Solver._trichotomy(atom)


def _euf_conflict_clause(exc: EufConflict, closure: CongruenceClosure,
                         builder: CnfBuilder) -> Optional[List[int]]:
    """Minimal *valid* conflict clause for a structured EUF conflict.

    Cites exactly the asserted equality atoms (via the proof forest) and
    the violated disequality atom the inconsistency rests on — a theory
    tautology safe to retain across queries, and short enough to actually
    prune the SAT search (the coarse negate-every-eq-literal clause is
    satisfied by flipping any one of dozens of irrelevant literals).
    Returns ``None`` when the conflict carries no structure or mentions
    an atom the builder has no variable for; the caller falls back to
    the coarse clause.
    """
    info = exc.conflict
    if info is None:
        return None
    lits: Set[int] = set()
    try:
        if info[0] == "diseq":
            _, aid, bid, reason = info
            var = builder.atom_var.get(reason)
            if var is None:
                return None
            lits.add(var)
            pairs = [(closure.terms[aid], closure.terms[bid])]
        elif info[0] == "consts":
            _, xid, yid, why = info
            u, v = closure.terms[xid], closure.terms[yid]
            pairs = [(u, closure.terms[closure.find(xid)]),
                     (v, closure.terms[closure.find(yid)])]
            if why[0] == "eq":
                var = builder.atom_var.get(why[1])
                if var is None:
                    return None
                lits.add(-var)
            else:  # congruence: the argument equalities triggered the merge
                pairs.extend(zip(u.args, v.args))
        else:
            return None
        for atom in closure.explain(pairs):
            var = builder.atom_var.get(atom)
            if var is None:
                return None
            lits.add(-var)
    except EufConflict:
        return None
    return sorted(lits) if lits else None


def theory_check_literals(literals: List[Tuple[Term, bool]],
                          builder: CnfBuilder, sat: SatSolver,
                          has_trichotomy: Set[Term],
                          lia_branch_limit: int,
                          stats: SolverStats,
                          on_lemma=None,
                          retain_valid: bool = False
                          ) -> Tuple[str, Optional[Model], str]:
    """One DPLL(T) theory round over a boolean model's literals.

    Shared by the one-shot :class:`Solver` and the incremental contexts
    (:mod:`repro.smt.incremental`).  Returns ``(outcome, model, reason)``
    with outcome one of ``"sat"`` (model attached), ``"continue"``
    (a conflict clause or lemma was added to ``sat``/``builder``; run
    another round) or ``"unknown"`` (reason attached).

    ``retain_valid`` selects the LIA conflict-clause flavour.  The
    default (one-shot solving) reproduces the historical clause exactly:
    linearization maps each term to its congruence representative's
    simplex variable, silently using the equalities that merged the
    class, and the learned clause does *not* cite them.  Such a clause
    is only meaningful inside the query that asserted those equalities —
    which is fine when the clause database dies with the query, and the
    extra strength (it prunes models where the merge doesn't hold) is
    what makes one-shot convergence fast on EUF-heavy queries.  An
    incremental context retains clauses *forever*, where a contextually
    valid clause becomes an unsound lemma poisoning later deltas — so it
    passes ``retain_valid=True`` and gets clauses expanded via the proof
    forest (:meth:`CongruenceClosure.explain`) into theory tautologies
    citing exactly the asserted equalities the core relied on.

    Trichotomy and congruence lemmas are tautologies either way.
    ``on_lemma`` (when given) is invoked with each *term-level* lemma
    asserted through the builder, so incremental callers can track the
    lemma's atoms and re-assert it after a context rebuild.
    """
    eq_literals: List[Tuple[Term, bool]] = []
    closure = CongruenceClosure()
    # Register every term so congruence sees the whole universe.
    for atom, _pol in literals:
        closure.add(atom)
    try:
        for atom, pol in literals:
            if atom.op == Op.EQ:
                eq_literals.append((atom, pol))
                if pol:
                    closure.merge(atom.args[0], atom.args[1], reason=atom)
                else:
                    closure.assert_diseq(atom.args[0], atom.args[1],
                                         reason=atom)
    except EufConflict as exc:
        clause = None
        if retain_valid:
            clause = _euf_conflict_clause(exc, closure, builder)
        if clause is None:
            # Historical coarse clause: negate every eq literal of the
            # current model.  Sound (their conjunction is EUF-unsat) but
            # long, hence weak — the one-shot trajectory is built on it.
            clause = [
                -builder.atom_var[a] if p else builder.atom_var[a]
                for a, p in eq_literals
            ]
        sat.add_clause(clause)
        stats.lemmas += 1
        return "continue", None, ""

    # Lazily add trichotomy for negated int equalities we skipped.
    added_trichotomy = False
    for atom, pol in literals:
        if (atom.op == Op.EQ and not pol and atom.args[0].sort.is_int
                and atom not in has_trichotomy):
            lemma = Solver._trichotomy(atom)
            builder.assert_formula(lemma)
            if on_lemma is not None:
                on_lemma(lemma)
            has_trichotomy.add(atom)
            added_trichotomy = True
    if added_trichotomy:
        stats.lemmas += 1
        return "continue", None, ""

    # -- LIA --------------------------------------------------------------
    lia = lia_mod.LiaSolver(branch_limit=lia_branch_limit)
    rep_var: Dict[int, int] = {}
    # Per-tag record of the rep substitutions linearization performed —
    # consumed only under ``retain_valid`` (see docstring).
    tag_subs: Dict[object, List[Tuple[Term, Term]]] = {}
    cur_subs: List[Tuple[Term, Term]] = []

    def lia_var(term: Term) -> int:
        rep = closure.find(term.id) if term.id in closure.parent else term.id
        if rep != term.id:
            cur_subs.append((term, closure.terms[rep]))
        if rep not in rep_var:
            rep_var[rep] = lia.new_var()
        return rep_var[rep]

    def linearize(term: Term) -> Tuple[Dict[int, int], int]:
        if term.op == Op.INT_CONST:
            return {}, term.payload
        if term.op == Op.ADD:
            coeffs: Dict[int, int] = {}
            const = 0
            for part in term.args:
                c2, k2 = linearize(part)
                const += k2
                for v, c in c2.items():
                    coeffs[v] = coeffs.get(v, 0) + c
            return coeffs, const
        if term.op == Op.MUL_CONST:
            c2, k2 = linearize(term.args[0])
            return {v: term.payload * c for v, c in c2.items()}, term.payload * k2
        return {lia_var(term): 1}, 0

    def add_ineq(a: Term, b: Term, op: str, tag) -> None:
        del cur_subs[:]
        ca, ka = linearize(a)
        cb, kb = linearize(b)
        if cur_subs:
            tag_subs.setdefault(tag, []).extend(cur_subs)
        coeffs = dict(ca)
        for v, c in cb.items():
            coeffs[v] = coeffs.get(v, 0) - c
        lia.add(coeffs, op, kb - ka, tag)

    for atom, pol in literals:
        tag = builder.atom_var[atom] * (1 if pol else -1)
        if atom.op == Op.LE:
            if pol:
                add_ineq(atom.args[0], atom.args[1], "<=", tag)
            else:
                add_ineq(atom.args[0], mk_add(atom.args[1], mk_int(1)), ">=", tag)
        elif atom.op == Op.EQ and atom.args[0].sort.is_int and pol:
            add_ineq(atom.args[0], atom.args[1], "=", tag)
    # Equalities derived by congruence, over integer terms.  Each gets
    # its own tag so a conflict core identifies exactly which derived
    # equalities it used; the pair is kept for proof-forest explanation.
    euf_pairs: Dict[object, Tuple[Term, Term]] = {}
    for k, (a, b) in enumerate(closure.int_equalities()):
        tag = ("euf", k)
        euf_pairs[tag] = (a, b)
        add_ineq(a, b, "=", tag)

    status, core, lia_model = lia.check()
    if status == lia_mod.UNSAT:
        if not retain_valid:
            # Historical one-shot clause: int tags negated directly, a
            # core touching derived equalities negates every eq literal
            # wholesale, rep substitutions uncited (see docstring).
            clause: List[int] = []
            coarse = False
            for tag in core or []:
                if isinstance(tag, int):
                    clause.append(-tag)
                else:
                    coarse = True
            if coarse:
                for a, p in eq_literals:
                    clause.append(
                        -builder.atom_var[a] if p else builder.atom_var[a])
            if not clause:
                return UNKNOWN, None, "lia conflict without core"
            sat.add_clause(sorted(set(clause)))
            stats.lemmas += 1
            return "continue", None, ""
        clause_lits: Set[int] = set()
        support: List[Tuple[Term, Term]] = []
        for tag in core or []:
            if isinstance(tag, int):
                clause_lits.add(-tag)
            else:
                support.append(euf_pairs[tag])
            support.extend(tag_subs.get(tag, ()))
        # Negate the asserted equalities whose merges the core relied on
        # (via rep substitution or derived equalities) — this makes the
        # clause a theory tautology rather than something conditional on
        # this round's eq literals.
        for atom in closure.explain(support):
            clause_lits.add(-builder.atom_var[atom])
        if not clause_lits:
            return UNKNOWN, None, "lia conflict without core"
        sat.add_clause(sorted(clause_lits))
        stats.lemmas += 1
        return "continue", None, ""
    if status == lia_mod.UNKNOWN:
        return UNKNOWN, None, "lia branch-and-bound limit"

    # -- candidate model ---------------------------------------------------
    universe: List[Term] = []
    seen: Set[int] = set()
    for atom, _pol in literals:
        for t in subterms(atom):
            if t.id not in seen:
                seen.add(t.id)
                universe.append(t)
    assigned: Dict[Term, int] = {}
    class_of: Dict[Term, int] = {}
    # Class values must be *query-local* dense numbers, not raw
    # representative term ids: cons ids depend on process history, and
    # these values leak into counterexample inputs (and hence the
    # whole synthesis trajectory) through build_model.
    dense: Dict[int, int] = {}
    assert lia_model is not None
    for t in universe:
        raw = closure.find(t.id) if t.id in closure.parent else None
        if raw is not None:
            if raw not in dense:
                dense[raw] = len(dense) + 1
            class_of[t] = dense[raw]
        if t.sort.is_int and t.op in (Op.VAR, Op.APP, Op.SELECT, Op.MUL, Op.DIV, Op.MOD):
            rep = raw if raw is not None else t.id
            if rep in rep_var:
                assigned[t] = lia_model[rep_var[rep]]
            else:
                const = closure.constant_of(t)
                assigned[t] = const if const is not None else 0
    try:
        model = build_model(universe, assigned, class_of)
    except ModelInconsistency as exc:
        _add_congruence_lemma(exc.left, exc.right, builder, stats, on_lemma)
        return "continue", None, ""
    violation = verify_literals(model, literals)
    if violation is not None:
        return UNKNOWN, None, f"model verification failed on {violation[0]!r}"
    return SAT, model, ""


def _add_congruence_lemma(left: Term, right: Term, builder: CnfBuilder,
                          stats: SolverStats, on_lemma=None) -> None:
    """Add the (valid) instance of congruence violated by the model."""
    stats.lemmas += 1
    if left.op != right.op or left.payload != right.payload:
        # Different heads can only clash through array reconstruction;
        # fall back to equating the terms outright is NOT valid, so use
        # select-index disambiguation below only for selects.
        raise RuntimeError(f"unexpected congruence clash {left!r} / {right!r}")
    parts = [mk_not(mk_eq(a, b)) for a, b in zip(left.args, right.args) if a is not b]
    parts.append(mk_eq(left, right))
    lemma = mk_or(*parts)
    builder.assert_formula(lemma)
    if on_lemma is not None:
        on_lemma(lemma)


def check_formulas(formulas: Iterable[Term], axioms: Iterable[Axiom] = (),
                   **kwargs) -> Tuple[str, Optional[Model]]:
    """Convenience one-shot check; returns (status, model or None)."""
    solver = Solver(axioms=axioms, **kwargs)
    solver.add(*formulas)
    status = solver.check()
    return status, (solver.model() if status == SAT else None)
