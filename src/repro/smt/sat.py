"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal clause
propagation, first-UIP conflict analysis with clause learning, VSIDS-style
activity decision heuristic with phase saving, and Luby restarts.  The
solver is incremental: clauses may be added between ``solve()`` calls,
which is how both the DPLL(T) layer (theory conflict clauses) and the PINS
``solve()`` procedure (blocking clauses over indicator variables) use it.

Literals follow the DIMACS convention: variables are positive integers,
and a literal is ``+v`` or ``-v``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..resil import BudgetExhausted


class SatStats:
    """Counters exposed for the experiment tables (|SAT|, etc.)."""

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.learned = 0
        self.restarts = 0


def _luby(i: int) -> int:
    """The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    if i < 0:
        raise ValueError("the Luby sequence index must be non-negative")
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i %= size
    return 1 << seq


class SatSolver:
    """CDCL solver over integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.learnts: List[List[int]] = []
        self.watches: Dict[int, List[List[int]]] = {}
        self.assign: List[int] = [0]  # 1-indexed; 0 unassigned, +1/-1 value
        self.level: List[int] = [0]
        self.reason: List[Optional[List[int]]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0]
        self.phase: List[int] = [0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.stats = SatStats()
        self._ok = True
        self._assumptions: Tuple[int, ...] = ()
        self.budget = None
        """Optional :class:`repro.resil.Budget`.  When set, every conflict
        is charged as it is analyzed and :class:`BudgetExhausted`
        propagates out of :meth:`solve` (with the trail cancelled, so the
        solver stays reusable)."""

    # -- variable / clause management ---------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(-1)
        v = self.num_vars
        self.watches[v] = []
        self.watches[-v] = []
        return v

    def _ensure_var(self, v: int) -> None:
        while self.num_vars < v:
            self.new_var()

    def value(self, lit: int) -> int:
        """+1 true, -1 false, 0 unassigned."""
        v = self.assign[abs(lit)]
        return v if lit > 0 else -v

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        # Backtrack to the root level before permanently adding clauses.
        self._cancel_until(0)
        clause = [lit for lit in clause if self.value(lit) != -1 or self.level[abs(lit)] > 0]
        clause = [lit for lit in clause if not (self.value(lit) == -1 and self.level[abs(lit)] == 0)]
        if any(self.value(lit) == 1 and self.level[abs(lit)] == 0 for lit in clause):
            return True  # already satisfied at root
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if self.value(clause[0]) == -1:
                self._ok = False
                return False
            if self.value(clause[0]) == 0:
                self._enqueue(clause[0], None)
                if self._propagate() is not None:
                    self._ok = False
                    return False
            return True
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: List[int]) -> None:
        self.watches[clause[0]].append(clause)
        self.watches[clause[1]].append(clause)

    # -- trail management ----------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        v = abs(lit)
        self.assign[v] = 1 if lit > 0 else -1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        bound = self.trail_lim[level]
        for lit in reversed(self.trail[bound:]):
            v = abs(lit)
            self.phase[v] = self.assign[v]
            self.assign[v] = 0
            self.reason[v] = None
        del self.trail[bound:]
        del self.trail_lim[level:]

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        i = len(self.trail) - 1
        qhead = getattr(self, "_qhead", 0)
        qhead = min(qhead, len(self.trail))
        while qhead < len(self.trail):
            lit = self.trail[qhead]
            qhead += 1
            falsified = -lit
            watchers = self.watches[falsified]
            new_watchers: List[List[int]] = []
            conflict: Optional[List[int]] = None
            for idx, clause in enumerate(watchers):
                if conflict is not None:
                    new_watchers.append(clause)
                    continue
                # Normalize: ensure falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self.value(first) == 1:
                    new_watchers.append(clause)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self.value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(clause)
                if self.value(first) == -1:
                    conflict = clause
                else:
                    self.stats.propagations += 1
                    self._enqueue(first, clause)
            self.watches[falsified] = new_watchers
            if conflict is not None:
                self._qhead = len(self.trail)
                return conflict
        self._qhead = qhead
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]):
        """First-UIP learning; returns (learnt clause, backjump level)."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        reason: Optional[List[int]] = conflict
        index = len(self.trail)
        cur_level = len(self.trail_lim)
        while True:
            assert reason is not None
            for q in reason:
                if q == lit:
                    continue
                v = abs(q)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next literal on the trail to resolve on.
            while True:
                index -= 1
                lit = self.trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            reason = self.reason[abs(lit)]
        learnt[0] = -lit
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.level[abs(learnt[i])] > self.level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    # -- decisions ---------------------------------------------------------------

    def _decide(self) -> int:
        best_v, best_a = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == 0 and self.activity[v] > best_a:
                best_v, best_a = v, self.activity[v]
        if best_v == 0:
            return 0
        sign = self.phase[best_v] or -1
        return best_v * sign

    # -- main solve loop -----------------------------------------------------------

    def solve(self, max_conflicts: Optional[int] = None,
              assumptions: Sequence[int] = ()) -> Optional[bool]:
        """Solve the current formula, optionally under assumptions.

        Returns True (SAT), False (UNSAT), or None if ``max_conflicts`` was
        exhausted.  On SAT the model is readable via :meth:`model`.

        ``assumptions`` are literals enqueued as the first decisions
        (MiniSat-style): a False answer under assumptions means the
        formula has no model *extending them* — the clause database stays
        intact and the solver reusable (``_ok`` is only cleared on a
        root-level conflict, which means the formula itself is UNSAT).
        Incremental callers (:mod:`repro.smt.incremental`) use this to
        activate per-query scopes guarded by assumption literals while
        retaining every learned clause across queries.
        """
        if not obs.active():
            return self._solve(max_conflicts, assumptions)
        s = self.stats
        d0, p0 = s.decisions, s.propagations
        c0, r0 = s.conflicts, s.restarts
        try:
            with obs.span("smt.sat.solve"):
                result = self._solve(max_conflicts, assumptions)
        finally:
            # Deltas are recorded even when a BudgetExhausted cancellation
            # propagates — the work was done either way.
            obs.count("smt.sat.solves")
            obs.count("smt.sat.decisions", s.decisions - d0)
            obs.count("smt.sat.propagations", s.propagations - p0)
            obs.count("smt.sat.conflicts", s.conflicts - c0)
            obs.count("smt.sat.restarts", s.restarts - r0)
        return result

    def _solve(self, max_conflicts: Optional[int] = None,
               assumptions: Sequence[int] = ()) -> Optional[bool]:
        if not self._ok:
            return False
        self._assumptions = tuple(assumptions)
        for lit in self._assumptions:
            self._ensure_var(abs(lit))
        self._qhead = 0
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        total_conflicts = 0
        restart_num = 0
        while True:
            if self.budget is not None:
                # Restart boundary: the trail is at the root level, so a
                # wall-deadline raise here leaves the solver reusable.
                self.budget.check()
            restart_budget = 64 * _luby(restart_num)
            restart_num += 1
            self.stats.restarts += 1
            try:
                result = self._search(restart_budget, max_conflicts,
                                      total_conflicts)
            except BudgetExhausted:
                self._cancel_until(0)
                raise
            if result == "sat":
                return True
            if result == "unsat":
                self._ok = False
                return False
            if result == "unsat-assumptions":
                # Conflicting only with the assumptions: the clause set
                # itself stays consistent, so keep the solver usable.
                self._cancel_until(0)
                return False
            if isinstance(result, int):
                total_conflicts = result
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._cancel_until(0)
                    return None
            self._cancel_until(0)

    def _search(self, restart_budget: int, max_conflicts: Optional[int],
                total: int):
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                total += 1
                if self.budget is not None:
                    self.budget.charge_sat_conflicts(1)
                # The clause may be falsified entirely below the current
                # decision level (possible with incrementally added
                # clauses); analysis must run at the conflict's top level.
                top = max((self.level[abs(q)] for q in conflict), default=0)
                if top == 0:
                    return "unsat"
                if top < len(self.trail_lim):
                    self._cancel_until(top)
                    self._qhead = len(self.trail)
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self._qhead = len(self.trail)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    self.learnts.append(learnt)
                    self.stats.learned += 1
                    self._watch(learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
                if max_conflicts is not None and total >= max_conflicts:
                    return total
                if conflicts_here >= restart_budget:
                    return total
            else:
                lit = 0
                # Assumptions are replayed as the first decisions after
                # every restart/backjump; one falsified by propagation
                # means no model extends them.
                for a in self._assumptions:
                    val = self.value(a)
                    if val == -1:
                        return "unsat-assumptions"
                    if val == 0:
                        lit = a
                        break
                if lit == 0:
                    lit = self._decide()
                    if lit == 0:
                        return "sat"
                    self.stats.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful solve."""
        return {v: self.assign[v] == 1 for v in range(1, self.num_vars + 1)}

    def num_clauses(self) -> int:
        return len(self.clauses)


def solve_cnf(clauses: Sequence[Sequence[int]]) -> Optional[Dict[int, bool]]:
    """One-shot convenience wrapper: returns a model dict or None (UNSAT)."""
    solver = SatSolver()
    for clause in clauses:
        if not solver.add_clause(clause):
            return None
    if solver.solve():
        return solver.model()
    return None
