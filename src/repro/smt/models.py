"""Model representation, evaluation, and verification.

A :class:`Model` assigns integers to integer terms, class identifiers to
uninterpreted-sorted terms, and finite maps to array variables.  After the
DPLL(T) loop finds a theory-consistent assignment, the candidate model is
*verified* by re-evaluating every asserted literal under concrete
semantics; a verification failure yields a (valid) congruence lemma that is
fed back into the search — the lemma-on-demand combination described in
DESIGN.md §3.1.

Uninterpreted applications (including nonlinear ``mul``/``div`` with
symbolic divisors) are evaluated through a consistent function table built
from the assignment; this mirrors the paper's abstract treatment of
library calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .terms import Op, Term, subterms


def _stable_id(term: Term) -> int:
    """History-independent surrogate class id for an unconstrained term.

    ``term.id`` depends on what was hash-consed earlier in the process;
    the structural ``skey`` does not.  Collisions with the query-local
    dense class numbers (small positives) or app-table ids (small
    negatives) are astronomically unlikely for a 64-bit digest prefix.
    """
    return int.from_bytes(term.skey[:8], "big")


class ModelInconsistency(Exception):
    """Raised during model construction when assignments clash.

    Carries the pair of terms whose congruence was violated so the solver
    can emit a repair lemma.
    """

    def __init__(self, left: Term, right: Term):
        super().__init__(f"model inconsistency between {left!r} and {right!r}")
        self.left = left
        self.right = right


@dataclass
class Model:
    """A first-order model over the query's term universe."""

    int_values: Dict[Term, int] = field(default_factory=dict)
    class_values: Dict[Term, int] = field(default_factory=dict)
    arrays: Dict[Term, Dict[int, int]] = field(default_factory=dict)
    app_table: Dict[tuple, int] = field(default_factory=dict)

    def eval(self, term: Term):
        """Evaluate a term to an int (int sort), class id, or array map."""
        if term.sort.is_int:
            return self.eval_int(term)
        if term.sort.is_array:
            return self.eval_array(term)
        return self.eval_class(term)

    def eval_int(self, term: Term) -> int:
        if term.op == Op.INT_CONST:
            return term.payload
        if term.op == Op.ADD:
            return sum(self.eval_int(a) for a in term.args)
        if term.op == Op.MUL_CONST:
            return term.payload * self.eval_int(term.args[0])
        if term.op == Op.SELECT:
            contents = self.eval_array(term.args[0])
            return contents.get(self.eval_int(term.args[1]), 0)
        if term.op in (Op.VAR, Op.APP, Op.MUL, Op.DIV, Op.MOD):
            if term in self.int_values:
                return self.int_values[term]
            if term.op in (Op.APP, Op.MUL, Op.DIV, Op.MOD):
                return self._app_value(term)
            return 0
        raise TypeError(f"cannot evaluate int term {term!r}")

    def _app_key(self, term: Term) -> tuple:
        name = term.payload if term.op == Op.APP else term.op
        return (name,) + tuple(self._arg_value(a) for a in term.args)

    def _arg_value(self, arg: Term):
        if arg.sort.is_array:
            return tuple(sorted(self.eval_array(arg).items()))
        return self.eval(arg)

    def _app_value(self, term: Term) -> int:
        key = self._app_key(term)
        if key not in self.app_table:
            self.app_table[key] = 0
        return self.app_table[key]

    def eval_array(self, term: Term) -> Dict[int, int]:
        if term.op == Op.VAR:
            return self.arrays.setdefault(term, {})
        if term.op == Op.STORE:
            base = dict(self.eval_array(term.args[0]))
            base[self.eval_int(term.args[1])] = self.eval(term.args[2])
            return base
        raise TypeError(f"cannot evaluate array term {term!r}")

    def eval_class(self, term: Term) -> int:
        """Value of an uninterpreted-sorted term (a class identifier)."""
        if term in self.class_values:
            return self.class_values[term]
        if term.op == Op.APP:
            key = self._app_key(term)
            if key not in self.app_table:
                self.app_table[key] = -(len(self.app_table) + 1)
            return self.app_table[key]
        return self.class_values.setdefault(term, _stable_id(term))

    def eval_atom(self, atom: Term) -> bool:
        if atom.op == Op.EQ:
            a, b = atom.args
            va, vb = self.eval(a), self.eval(b)
            if isinstance(va, dict) and isinstance(vb, dict):
                # Array contents are finite maps with an implicit default
                # of 0 (see eval_int's SELECT case), so {} and {0: 0}
                # denote the same array; compare as total functions.
                keys = set(va) | set(vb)
                return all(va.get(k, 0) == vb.get(k, 0) for k in keys)
            return va == vb
        if atom.op == Op.LE:
            return self.eval_int(atom.args[0]) <= self.eval_int(atom.args[1])
        if atom.op == Op.VAR and atom.sort.is_bool:
            return bool(self.int_values.get(atom, 0))
        raise TypeError(f"cannot evaluate atom {atom!r}")


def build_model(universe: List[Term], assigned: Dict[Term, int],
                class_of: Dict[Term, int]) -> Model:
    """Construct a model from per-term integer assignments.

    ``assigned`` maps integer-sorted opaque terms (variables, selects,
    applications) to values (from LIA); ``class_of`` maps every term to
    its EUF class representative id.  Array contents are reconstructed
    from the *assigned* values of ``select`` terms over base array
    variables; an inconsistent reconstruction (two selects with equal
    evaluated indices but different assigned values) raises
    :class:`ModelInconsistency` naming the clashing select terms, which
    the solver turns into a congruence lemma.

    Select terms are dropped from the final ``int_values`` so the model
    evaluates arrays *structurally* (through the reconstructed contents) —
    this is what makes :func:`verify_literals` a genuine semantic check.
    """

    def assigned_eval(term: Term) -> int:
        """Evaluate an int term using LIA assignments for opaque leaves."""
        if term.op == Op.INT_CONST:
            return term.payload
        if term.op == Op.ADD:
            return sum(assigned_eval(a) for a in term.args)
        if term.op == Op.MUL_CONST:
            return term.payload * assigned_eval(term.args[0])
        return assigned.get(term, 0)

    model = Model(
        int_values={t: v for t, v in assigned.items() if t.op != Op.SELECT}
    )
    # Class values for uninterpreted sorts.
    for term in universe:
        if not term.sort.is_int and not term.sort.is_array and not term.sort.is_bool:
            model.class_values[term] = class_of.get(term) or _stable_id(term)
    # Array contents: seed from selects over base variables.
    writers: Dict[Tuple[Term, int], Term] = {}
    for term in universe:
        if term.op == Op.SELECT and term.args[0].op == Op.VAR:
            base, idx = term.args
            idx_val = assigned_eval(idx)
            if term.sort.is_int:
                value = assigned_eval(term)
            else:
                value = class_of.get(term) or _stable_id(term)
            contents = model.arrays.setdefault(base, {})
            if idx_val in contents and contents[idx_val] != value:
                raise ModelInconsistency(writers[(base, idx_val)], term)
            contents[idx_val] = value
            writers[(base, idx_val)] = term
    # Consistent function tables for uninterpreted applications.
    app_writer: Dict[tuple, Term] = {}
    for term in universe:
        if term.op in (Op.APP, Op.MUL, Op.DIV, Op.MOD):
            key = model._app_key(term)
            value = (
                model.int_values.get(term)
                if term.sort.is_int
                else (class_of.get(term) or _stable_id(term))
            )
            if value is None:
                continue
            if key in model.app_table and model.app_table[key] != value:
                raise ModelInconsistency(app_writer[key], term)
            model.app_table[key] = value
            app_writer[key] = term
    return model


def verify_literals(model: Model,
                    literals: List[Tuple[Term, bool]]) -> Optional[Tuple[Term, bool]]:
    """Check every asserted literal; returns the first violated one."""
    for atom, polarity in literals:
        try:
            if model.eval_atom(atom) != polarity:
                return (atom, polarity)
        except TypeError:
            return (atom, polarity)
    return None


def eval_formula(model: Model, formula: Term) -> bool:
    """Evaluate a full boolean formula (not just a literal) under ``model``.

    Recurses through the propositional structure and delegates atoms to
    the same :meth:`Model.eval_atom` path :func:`verify_literals` uses.
    An atom the model cannot evaluate counts as *false* — callers use
    this to decide whether a cached model still witnesses a query, where
    "can't tell" must never be treated as "yes".
    """
    op = formula.op
    if op == Op.TRUE:
        return True
    if op == Op.FALSE:
        return False
    if op == Op.NOT:
        return not eval_formula(model, formula.args[0])
    if op == Op.AND:
        return all(eval_formula(model, part) for part in formula.args)
    if op == Op.OR:
        return any(eval_formula(model, part) for part in formula.args)
    return verify_literals(model, [(formula, True)]) is None


def satisfies(model: Model, formulas: List[Term]) -> bool:
    """True iff ``model`` concretely satisfies every formula.

    The soundness guard of the query-result cache
    (:mod:`repro.perf.cache`): a cached ``sat`` answer is only served
    when its stored model still verifies against the *current* query's
    assertions, so a fingerprint collision can degrade performance but
    never correctness.
    """
    try:
        return all(eval_formula(model, f) for f in formulas)
    except (TypeError, RecursionError):
        return False
