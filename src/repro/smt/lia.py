"""Linear integer arithmetic via general simplex + branch-and-bound.

The rational core is the Dutertre–de Moura *general simplex* used by most
DPLL(T) solvers: every asserted constraint ``sum(c_i * x_i) <= b`` gets a
slack variable ``s = sum(c_i * x_i)`` with an upper bound; feasibility is
restored by pivoting with Bland's rule (which guarantees termination).
Conflicts come with a *core*: the set of caller-supplied tags of the bounds
participating in the infeasible row, which the DPLL(T) layer turns into a
learned clause.

Integrality is enforced on top by branch-and-bound: when the rational
optimum assigns a fractional value to an integer variable, we split on
``x <= floor(v)`` / ``x >= ceil(v)`` and recurse (bounded depth, so the
solver answers UNKNOWN rather than diverging on pathological inputs).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

Coeffs = Dict[int, Fraction]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _Bound:
    __slots__ = ("value", "tag")

    def __init__(self, value: Fraction, tag: Hashable):
        self.value = value
        self.tag = tag


class Conflict(Exception):
    """Raised internally when a bound assertion is immediately inconsistent."""

    def __init__(self, core: List[Hashable]):
        super().__init__("lia conflict")
        self.core = core


class Simplex:
    """General simplex over the rationals with named conflict cores."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.is_int: List[bool] = []
        # rows: basic var -> {nonbasic var: coeff}
        self.rows: Dict[int, Coeffs] = {}
        self.basic: set = set()
        self.beta: List[Fraction] = []
        self.lower: List[Optional[_Bound]] = []
        self.upper: List[Optional[_Bound]] = []
        # Map from a canonical linear form to its slack variable, so the
        # same form asserted twice reuses one row.
        self._form_slack: Dict[Tuple[Tuple[int, Fraction], ...], int] = {}

    def new_var(self, is_int: bool = True) -> int:
        v = self.num_vars
        self.num_vars += 1
        self.is_int.append(is_int)
        self.beta.append(Fraction(0))
        self.lower.append(None)
        self.upper.append(None)
        return v

    # -- linear forms --------------------------------------------------------

    def slack_for(self, coeffs: Coeffs) -> int:
        """The slack variable representing ``sum(c_i * x_i)``."""
        key = tuple(sorted((v, Fraction(c)) for v, c in coeffs.items() if c != 0))
        if key in self._form_slack:
            return self._form_slack[key]
        if len(key) == 1 and key[0][1] == 1:
            # A single variable with unit coefficient needs no slack.
            v = key[0][0]
            self._form_slack[key] = v
            return v
        s = self.new_var(is_int=all(self.is_int[v] for v, _ in key))
        row = {v: Fraction(c) for v, c in key}
        # Express the new basic variable over the current nonbasic set:
        # substitute any basic variables appearing in the row.
        expanded: Coeffs = {}
        for v, c in row.items():
            if v in self.basic:
                for w, cw in self.rows[v].items():
                    expanded[w] = expanded.get(w, Fraction(0)) + c * cw
            else:
                expanded[v] = expanded.get(v, Fraction(0)) + c
        expanded = {v: c for v, c in expanded.items() if c != 0}
        self.rows[s] = expanded
        self.basic.add(s)
        self.beta[s] = sum((c * self.beta[v] for v, c in expanded.items()), Fraction(0))
        self._form_slack[key] = s
        return s

    # -- bound assertion ------------------------------------------------------

    def assert_upper(self, var: int, value: Fraction, tag: Hashable) -> None:
        ub = self.upper[var]
        if ub is not None and ub.value <= value:
            return
        lb = self.lower[var]
        if lb is not None and value < lb.value:
            raise Conflict([lb.tag, tag])
        self.upper[var] = _Bound(value, tag)
        if var not in self.basic and self.beta[var] > value:
            self._update(var, value)

    def assert_lower(self, var: int, value: Fraction, tag: Hashable) -> None:
        lb = self.lower[var]
        if lb is not None and lb.value >= value:
            return
        ub = self.upper[var]
        if ub is not None and value > ub.value:
            raise Conflict([ub.tag, tag])
        self.lower[var] = _Bound(value, tag)
        if var not in self.basic and self.beta[var] < value:
            self._update(var, value)

    def _update(self, var: int, value: Fraction) -> None:
        delta = value - self.beta[var]
        self.beta[var] = value
        for b in self.basic:
            c = self.rows[b].get(var)
            if c:
                self.beta[b] += c * delta

    # -- pivoting ---------------------------------------------------------------

    def _pivot(self, basic_var: int, nonbasic_var: int) -> None:
        row = self.rows.pop(basic_var)
        self.basic.discard(basic_var)
        a = row[nonbasic_var]
        # nonbasic_var = (basic_var - sum(other terms)) / a
        new_row: Coeffs = {basic_var: Fraction(1) / a}
        for v, c in row.items():
            if v != nonbasic_var:
                new_row[v] = -c / a
        # Substitute into all other rows.
        for b in list(self.basic):
            brow = self.rows[b]
            c = brow.pop(nonbasic_var, None)
            if c:
                for v, cv in new_row.items():
                    brow[v] = brow.get(v, Fraction(0)) + c * cv
                    if brow[v] == 0:
                        del brow[v]
        self.rows[nonbasic_var] = new_row
        self.basic.add(nonbasic_var)

    def check(self) -> Tuple[str, Optional[List[Hashable]]]:
        """Restore feasibility; returns (SAT, None) or (UNSAT, core)."""
        while True:
            # Bland's rule: smallest-index violating basic variable.
            violating = None
            for b in sorted(self.basic):
                lb, ub = self.lower[b], self.upper[b]
                if lb is not None and self.beta[b] < lb.value:
                    violating = (b, True)
                    break
                if ub is not None and self.beta[b] > ub.value:
                    violating = (b, False)
                    break
            if violating is None:
                return SAT, None
            b, need_increase = violating
            row = self.rows[b]
            pivot_var = None
            for v in sorted(row):
                c = row[v]
                if need_increase:
                    ok = (c > 0 and self._can_increase(v)) or (c < 0 and self._can_decrease(v))
                else:
                    ok = (c > 0 and self._can_decrease(v)) or (c < 0 and self._can_increase(v))
                if ok:
                    pivot_var = v
                    break
            if pivot_var is None:
                core = []
                bound = self.lower[b] if need_increase else self.upper[b]
                assert bound is not None
                core.append(bound.tag)
                for v in sorted(row):
                    c = row[v]
                    if need_increase:
                        blocked = self.upper[v] if c > 0 else self.lower[v]
                    else:
                        blocked = self.lower[v] if c > 0 else self.upper[v]
                    if blocked is not None:
                        core.append(blocked.tag)
                return UNSAT, core
            target = (self.lower[b].value if need_increase else self.upper[b].value)  # type: ignore[union-attr]
            self._pivot_and_update(b, pivot_var, target)

    def _can_increase(self, v: int) -> bool:
        ub = self.upper[v]
        return ub is None or self.beta[v] < ub.value

    def _can_decrease(self, v: int) -> bool:
        lb = self.lower[v]
        return lb is None or self.beta[v] > lb.value

    def _pivot_and_update(self, b: int, nb: int, target: Fraction) -> None:
        a = self.rows[b][nb]
        delta = (target - self.beta[b]) / a
        self.beta[b] = target
        self.beta[nb] += delta
        for other in self.basic:
            if other != b:
                c = self.rows[other].get(nb)
                if c:
                    self.beta[other] += c * delta
        self._pivot(b, nb)

    # -- models --------------------------------------------------------------------

    def model(self) -> List[Fraction]:
        return list(self.beta)

    def snapshot(self):
        """Copy bound state (cheap push/pop for branch-and-bound)."""
        return (list(self.lower), list(self.upper), list(self.beta),
                {b: dict(r) for b, r in self.rows.items()}, set(self.basic))

    def restore(self, snap) -> None:
        self.lower, self.upper, self.beta, rows, basic = snap
        self.lower = list(self.lower)
        self.upper = list(self.upper)
        self.beta = list(self.beta)
        self.rows = {b: dict(r) for b, r in rows.items()}
        self.basic = set(basic)


class LiaSolver:
    """Conjunction-level LIA solver with branch-and-bound integrality.

    Constraints are ``(coeffs, op, constant, tag)`` with op in
    ``{"<=", "=", ">="}`` over integer-valued variables.
    """

    def __init__(self, branch_limit: int = 200):
        self.simplex = Simplex()
        self.branch_limit = branch_limit
        self._branches_used = 0
        self.constraints: List[Tuple[Coeffs, str, Fraction, Hashable]] = []

    def new_var(self) -> int:
        return self.simplex.new_var(is_int=True)

    def add(self, coeffs: Dict[int, int], op: str, const: int, tag: Hashable) -> None:
        self.constraints.append(
            ({v: Fraction(c) for v, c in coeffs.items() if c != 0}, op, Fraction(const), tag)
        )

    def check(self) -> Tuple[str, Optional[List[Hashable]], Optional[Dict[int, int]]]:
        """Returns (status, conflict core or None, integer model or None)."""
        try:
            for coeffs, op, const, tag in self.constraints:
                if not coeffs:
                    holds = (op == "<=" and 0 <= const) or (op == ">=" and 0 >= const) or (
                        op == "=" and const == 0
                    )
                    if not holds:
                        return UNSAT, [tag], None
                    continue
                s = self.simplex.slack_for(coeffs)
                if op in ("<=", "="):
                    self.simplex.assert_upper(s, const, tag)
                if op in (">=", "="):
                    self.simplex.assert_lower(s, const, tag)
        except Conflict as c:
            return UNSAT, c.core, None
        status, core = self.simplex.check()
        if status == UNSAT:
            return UNSAT, core, None
        self._branches_used = 0
        result = self._branch()
        if result == UNSAT:
            # Integer infeasibility; the core is the full constraint set
            # (branch-and-bound does not produce minimal cores).
            return UNSAT, [tag for _, _, _, tag in self.constraints], None
        if result == UNKNOWN:
            return UNKNOWN, None, None
        model = {
            v: int(self.simplex.beta[v])
            for v in range(self.simplex.num_vars)
        }
        return SAT, None, model

    def _branch(self) -> str:
        status, _ = self.simplex.check()
        if status == UNSAT:
            return UNSAT
        frac_var = None
        for v in range(self.simplex.num_vars):
            if self.simplex.is_int[v] and self.simplex.beta[v].denominator != 1:
                frac_var = v
                break
        if frac_var is None:
            return SAT
        if self._branches_used >= self.branch_limit:
            return UNKNOWN
        self._branches_used += 1
        value = self.simplex.beta[frac_var]
        saw_unknown = False
        for direction in ("down", "up"):
            snap = self.simplex.snapshot()
            try:
                if direction == "down":
                    self.simplex.assert_upper(frac_var, Fraction(math.floor(value)), "_branch")
                else:
                    self.simplex.assert_lower(frac_var, Fraction(math.ceil(value)), "_branch")
            except Conflict:
                self.simplex.restore(snap)
                continue
            sub = self._branch()
            if sub == SAT:
                return SAT
            if sub == UNKNOWN:
                saw_unknown = True
            self.simplex.restore(snap)
        return UNKNOWN if saw_unknown else UNSAT
