"""Congruence closure for equality + uninterpreted functions.

The closure works over hash-consed :class:`~repro.smt.terms.Term` nodes.
Function-like terms (``select``, ``store``, uninterpreted applications,
nonlinear ``mul``/``div``/``mod``) participate in congruence; arithmetic
structure (``+``, constant multiples) is owned by the LIA solver, which
exchanges equalities with this module through the combination loop in
:mod:`repro.smt.solver`.

Conflicts are detected when (a) two terms asserted disequal become equal,
or (b) two distinct integer constants are merged.  Cores are coarse: the
caller learns a clause over every literal it asserted, which is sound and
adequate at the problem sizes PINS generates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .terms import Op, Term

_CONGRUENT_OPS = (Op.SELECT, Op.STORE, Op.APP, Op.MUL, Op.DIV, Op.MOD)


class EufConflict(Exception):
    """Raised when the asserted literals are EUF-inconsistent.

    ``conflict`` (when available) identifies the inconsistency so a
    caller can build a *minimal* valid conflict clause via
    :meth:`CongruenceClosure.explain` instead of the coarse
    negate-everything clause:

    * ``("diseq", a_id, b_id, reason)`` — terms ``a``/``b`` were merged
      while asserted disequal; ``reason`` is the opaque object passed to
      :meth:`CongruenceClosure.assert_diseq` (``None`` for legacy
      callers).  The proof forest connects ``a`` and ``b``.
    * ``("consts", x_id, y_id, why)`` — merging ``x = y`` (for ``why``
      as in the proof forest: ``("eq", reason)`` or ``("cong",)``)
      would unite classes whose representatives are distinct integer
      constants.  The union was *not* performed: ``x``/``y`` are each
      still connected to their own class representative.
    """

    def __init__(self, reason: str, conflict: Optional[tuple] = None):
        super().__init__(reason)
        self.conflict = conflict


class CongruenceClosure:
    """Incremental congruence closure with disequality tracking."""

    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}
        self.terms: Dict[int, Term] = {}
        self.members: Dict[int, List[int]] = {}
        # For each representative, the function applications that mention a
        # member of its class as an argument (the classic "use list").
        self.uses: Dict[int, List[Term]] = {}
        # Signature table: (op, payload, arg reprs) -> term
        self.sigs: Dict[tuple, Term] = {}
        self.diseqs: List[Tuple[int, int, object]] = []
        # Proof forest (Nieuwenhuis/Oliveras): one edge per union, labelled
        # with why the two terms were merged — either an asserted equality
        # (the caller's reason object, typically the equality atom) or a
        # congruence step whose argument equalities are explained
        # recursively.  :meth:`explain` walks it so the LIA side can learn
        # conflict clauses citing exactly the equalities it relied on.
        self.proof_parent: Dict[int, int] = {}
        self.proof_reason: Dict[int, tuple] = {}

    # -- union-find -----------------------------------------------------------

    def add(self, term: Term) -> None:
        """Register a term (and its subterms) with the closure."""
        if term.id in self.parent:
            return
        for arg in term.args:
            self.add(arg)
        self.parent[term.id] = term.id
        self.terms[term.id] = term
        self.members[term.id] = [term.id]
        self.uses.setdefault(term.id, [])
        if term.op in _CONGRUENT_OPS:
            for arg in term.args:
                self.uses[self.find(arg.id)].append(term)
            sig = self._signature(term)
            existing = self.sigs.get(sig)
            if existing is not None and self.find(existing.id) != self.find(term.id):
                self._do_merge(existing.id, term.id, ("cong",))
            else:
                self.sigs[sig] = term

    def find(self, tid: int) -> int:
        root = tid
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[tid] != root:
            self.parent[tid], tid = root, self.parent[tid]
        return root

    def _signature(self, term: Term) -> tuple:
        return (term.op, term.payload, tuple(self.find(a.id) for a in term.args))

    # -- assertions --------------------------------------------------------------

    def merge(self, a: Term, b: Term, reason: object = None) -> None:
        """Assert ``a = b``; raises :class:`EufConflict` on inconsistency.

        ``reason`` is an opaque caller object (typically the equality
        atom) recorded in the proof forest; :meth:`explain` returns the
        set of such reasons supporting a derived equality.
        """
        self.add(a)
        self.add(b)
        self._do_merge(a.id, b.id, ("eq", reason))
        self._check_diseqs()

    def assert_diseq(self, a: Term, b: Term, reason: object = None) -> None:
        """Assert ``a != b``; ``reason`` is recorded for conflict cores."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a.id), self.find(b.id)
        if ra == rb:
            raise EufConflict(f"disequality violated: {a!r} != {b!r}",
                              conflict=("diseq", a.id, b.id, reason))
        self.diseqs.append((a.id, b.id, reason))

    def _do_merge(self, aid: int, bid: int, reason: tuple) -> None:
        pending: List[Tuple[int, int, tuple]] = [(aid, bid, reason)]
        while pending:
            x, y, why = pending.pop()
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                continue
            # Keep the larger class as the root.
            if len(self.members[rx]) < len(self.members[ry]):
                rx, ry = ry, rx
            tx, ty = self.terms[rx], self.terms[ry]
            if tx.op == Op.INT_CONST and ty.op == Op.INT_CONST and tx.payload != ty.payload:
                raise EufConflict(
                    f"distinct constants merged: {tx.payload} = {ty.payload}",
                    conflict=("consts", x, y, why))
            # Prefer a constant as class representative for model building.
            if ty.op == Op.INT_CONST and tx.op != Op.INT_CONST:
                rx, ry = ry, rx
            self.parent[ry] = rx
            self.members[rx].extend(self.members[ry])
            self._proof_link(x, y, why)
            # Recompute signatures of applications using the merged class.
            moved_uses = self.uses.pop(ry, [])
            for app in moved_uses:
                sig = self._signature(app)
                existing = self.sigs.get(sig)
                if existing is not None and self.find(existing.id) != self.find(app.id):
                    pending.append((existing.id, app.id, ("cong",)))
                else:
                    self.sigs[sig] = app
            self.uses.setdefault(rx, []).extend(moved_uses)

    def _proof_link(self, x: int, y: int, reason: tuple) -> None:
        """Record the union of ``x``/``y`` in the proof forest.

        ``x`` becomes the root of its proof tree (path reversal keeps the
        forest shallow enough for our sizes) and points at ``y``.
        """
        path: List[Tuple[int, int, tuple]] = []
        cur = x
        while cur in self.proof_parent:
            path.append((cur, self.proof_parent[cur], self.proof_reason[cur]))
            cur = self.proof_parent[cur]
        for a, _b, _r in path:
            del self.proof_parent[a]
            del self.proof_reason[a]
        for a, b, r in path:
            self.proof_parent[b] = a
            self.proof_reason[b] = r
        self.proof_parent[x] = y
        self.proof_reason[x] = reason

    def _check_diseqs(self) -> None:
        for a, b, reason in self.diseqs:
            if self.find(a) == self.find(b):
                raise EufConflict(
                    f"disequality violated: {self.terms[a]!r} != {self.terms[b]!r}",
                    conflict=("diseq", a, b, reason),
                )

    # -- queries ---------------------------------------------------------------

    def are_equal(self, a: Term, b: Term) -> bool:
        if a.id not in self.parent or b.id not in self.parent:
            return a is b
        return self.find(a.id) == self.find(b.id)

    def classes(self) -> Dict[int, List[Term]]:
        """Current partition: representative id -> member terms."""
        out: Dict[int, List[Term]] = {}
        for tid in self.parent:
            out.setdefault(self.find(tid), []).append(self.terms[tid])
        return out

    def int_equalities(self) -> Iterable[Tuple[Term, Term]]:
        """Pairs of integer-sorted terms currently known equal.

        Yields a spanning set (representative vs. member) per class — enough
        for the LIA side to reconstruct the full equivalence.
        """
        for rep_id, members in self.classes().items():
            ints = [t for t in members if t.sort.is_int]
            for i in range(1, len(ints)):
                yield ints[0], ints[i]

    def explain(self, pairs: Iterable[Tuple[Term, Term]]) -> List[object]:
        """The asserted-equality reasons supporting the given equal pairs.

        Each pair must be currently equal in the closure.  The result is
        the list of ``reason`` objects (as passed to :meth:`merge`) whose
        equalities, together with congruence, entail every pair — the
        premise set for a *valid* lemma about a derived equality.
        Congruence steps are expanded recursively into the argument
        equalities that triggered them.
        """
        out: List[object] = []
        emitted: Set[int] = set()
        seen: Set[Tuple[int, int]] = set()
        work: List[Tuple[Term, Term]] = list(pairs)
        while work:
            a, b = work.pop()
            if a is b:
                continue
            key = (a.id, b.id) if a.id <= b.id else (b.id, a.id)
            if key in seen:
                continue
            seen.add(key)
            for node, parent, reason in self._proof_path(a.id, b.id):
                if reason[0] == "eq":
                    if reason[1] is not None and id(reason[1]) not in emitted:
                        emitted.add(id(reason[1]))
                        out.append(reason[1])
                else:  # congruence: explain the argument equalities
                    u, v = self.terms[node], self.terms[parent]
                    for ua, va in zip(u.args, v.args):
                        work.append((ua, va))
        return out

    def _proof_path(self, aid: int, bid: int):
        """Edges (node, parent, reason) on the proof-forest path a..b."""
        if aid == bid:
            return []
        up_a: List[Tuple[int, int, tuple]] = []
        index_a: Dict[int, int] = {aid: 0}
        cur = aid
        while cur in self.proof_parent:
            nxt = self.proof_parent[cur]
            up_a.append((cur, nxt, self.proof_reason[cur]))
            cur = nxt
            index_a[cur] = len(up_a)
        up_b: List[Tuple[int, int, tuple]] = []
        cur = bid
        while cur not in index_a:
            if cur not in self.proof_parent:
                raise EufConflict(
                    f"explain() on terms not known equal: {aid} / {bid}")
            nxt = self.proof_parent[cur]
            up_b.append((cur, nxt, self.proof_reason[cur]))
            cur = nxt
        return up_a[:index_a[cur]] + up_b

    def constant_of(self, t: Term) -> Optional[int]:
        """The integer constant this term is known equal to, if any."""
        if t.id not in self.parent:
            return None
        rep = self.terms[self.find(t.id)]
        if rep.op == Op.INT_CONST:
            return rep.payload
        for mid in self.members[self.find(t.id)]:
            m = self.terms[mid]
            if m.op == Op.INT_CONST:
                return m.payload
        return None
