"""Congruence closure for equality + uninterpreted functions.

The closure works over hash-consed :class:`~repro.smt.terms.Term` nodes.
Function-like terms (``select``, ``store``, uninterpreted applications,
nonlinear ``mul``/``div``/``mod``) participate in congruence; arithmetic
structure (``+``, constant multiples) is owned by the LIA solver, which
exchanges equalities with this module through the combination loop in
:mod:`repro.smt.solver`.

Conflicts are detected when (a) two terms asserted disequal become equal,
or (b) two distinct integer constants are merged.  Cores are coarse: the
caller learns a clause over every literal it asserted, which is sound and
adequate at the problem sizes PINS generates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .terms import Op, Term

_CONGRUENT_OPS = (Op.SELECT, Op.STORE, Op.APP, Op.MUL, Op.DIV, Op.MOD)


class EufConflict(Exception):
    """Raised when the asserted literals are EUF-inconsistent."""

    def __init__(self, reason: str):
        super().__init__(reason)


class CongruenceClosure:
    """Incremental congruence closure with disequality tracking."""

    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}
        self.terms: Dict[int, Term] = {}
        self.members: Dict[int, List[int]] = {}
        # For each representative, the function applications that mention a
        # member of its class as an argument (the classic "use list").
        self.uses: Dict[int, List[Term]] = {}
        # Signature table: (op, payload, arg reprs) -> term
        self.sigs: Dict[tuple, Term] = {}
        self.diseqs: List[Tuple[int, int]] = []

    # -- union-find -----------------------------------------------------------

    def add(self, term: Term) -> None:
        """Register a term (and its subterms) with the closure."""
        if term.id in self.parent:
            return
        for arg in term.args:
            self.add(arg)
        self.parent[term.id] = term.id
        self.terms[term.id] = term
        self.members[term.id] = [term.id]
        self.uses.setdefault(term.id, [])
        if term.op in _CONGRUENT_OPS:
            for arg in term.args:
                self.uses[self.find(arg.id)].append(term)
            sig = self._signature(term)
            existing = self.sigs.get(sig)
            if existing is not None and self.find(existing.id) != self.find(term.id):
                self._do_merge(existing.id, term.id)
            else:
                self.sigs[sig] = term

    def find(self, tid: int) -> int:
        root = tid
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[tid] != root:
            self.parent[tid], tid = root, self.parent[tid]
        return root

    def _signature(self, term: Term) -> tuple:
        return (term.op, term.payload, tuple(self.find(a.id) for a in term.args))

    # -- assertions --------------------------------------------------------------

    def merge(self, a: Term, b: Term) -> None:
        """Assert ``a = b``; raises :class:`EufConflict` on inconsistency."""
        self.add(a)
        self.add(b)
        self._do_merge(a.id, b.id)
        self._check_diseqs()

    def assert_diseq(self, a: Term, b: Term) -> None:
        """Assert ``a != b``."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a.id), self.find(b.id)
        if ra == rb:
            raise EufConflict(f"disequality violated: {a!r} != {b!r}")
        self.diseqs.append((a.id, b.id))

    def _do_merge(self, aid: int, bid: int) -> None:
        pending: List[Tuple[int, int]] = [(aid, bid)]
        while pending:
            x, y = pending.pop()
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                continue
            # Keep the larger class as the root.
            if len(self.members[rx]) < len(self.members[ry]):
                rx, ry = ry, rx
            tx, ty = self.terms[rx], self.terms[ry]
            if tx.op == Op.INT_CONST and ty.op == Op.INT_CONST and tx.payload != ty.payload:
                raise EufConflict(f"distinct constants merged: {tx.payload} = {ty.payload}")
            # Prefer a constant as class representative for model building.
            if ty.op == Op.INT_CONST and tx.op != Op.INT_CONST:
                rx, ry = ry, rx
            self.parent[ry] = rx
            self.members[rx].extend(self.members[ry])
            # Recompute signatures of applications using the merged class.
            moved_uses = self.uses.pop(ry, [])
            for app in moved_uses:
                sig = self._signature(app)
                existing = self.sigs.get(sig)
                if existing is not None and self.find(existing.id) != self.find(app.id):
                    pending.append((existing.id, app.id))
                else:
                    self.sigs[sig] = app
            self.uses.setdefault(rx, []).extend(moved_uses)

    def _check_diseqs(self) -> None:
        for a, b in self.diseqs:
            if self.find(a) == self.find(b):
                raise EufConflict(
                    f"disequality violated: {self.terms[a]!r} != {self.terms[b]!r}"
                )

    # -- queries ---------------------------------------------------------------

    def are_equal(self, a: Term, b: Term) -> bool:
        if a.id not in self.parent or b.id not in self.parent:
            return a is b
        return self.find(a.id) == self.find(b.id)

    def classes(self) -> Dict[int, List[Term]]:
        """Current partition: representative id -> member terms."""
        out: Dict[int, List[Term]] = {}
        for tid in self.parent:
            out.setdefault(self.find(tid), []).append(self.terms[tid])
        return out

    def int_equalities(self) -> Iterable[Tuple[Term, Term]]:
        """Pairs of integer-sorted terms currently known equal.

        Yields a spanning set (representative vs. member) per class — enough
        for the LIA side to reconstruct the full equivalence.
        """
        for rep_id, members in self.classes().items():
            ints = [t for t in members if t.sort.is_int]
            for i in range(1, len(ints)):
                yield ints[0], ints[i]

    def constant_of(self, t: Term) -> Optional[int]:
        """The integer constant this term is known equal to, if any."""
        if t.id not in self.parent:
            return None
        rep = self.terms[self.find(t.id)]
        if rep.op == Op.INT_CONST:
            return rep.payload
        for mid in self.members[self.find(t.id)]:
            m = self.terms[mid]
            if m.op == Op.INT_CONST:
                return m.payload
        return None
