"""Assumption-based incremental SMT contexts (warm solving for PINS).

The PINS loop issues thousands of near-identical queries per program:
every candidate check over one constraint shares the constraint's
hole-free conjuncts and differs only in the substituted hole items (plus
a goal disjunct).  A one-shot :class:`~repro.smt.solver.Solver` rebuilds
CNF and theory state from scratch for each; an
:class:`IncrementalContext` builds the shared *base* once and answers
each query by asserting only the *delta* under a fresh assumption
literal, MiniSat-style:

* base formulas (preprocessed: array inlining, read-over-write lemmas,
  base-level axiom instances, div/mod linearization, trichotomy) are
  asserted **unguarded** — they hold in every query of the family;
* delta formulas are asserted with every top-level clause guarded by
  ``-a`` for a fresh SAT variable ``a``; solving under ``assumptions=(a,)``
  activates them, and retiring the scope is one permanent unit ``[-a]``;
* learned clauses are retained automatically: a clause derived from a
  guarded clause contains ``-a`` (the assumption is a decision, so it can
  never be resolved away) and is inert once the scope dies, while clauses
  derived from base/lemma clauses are globally valid;
* theory lemmas discovered during any query (EUF congruence instances,
  LIA conflict clauses, trichotomy, read-over-write, div/mod) are
  **theory-valid** — tautologies of the combined theory, independent of
  which query produced them — so they are asserted unguarded and retained
  forever (re-asserted in structural-``skey`` order after a rebuild, so
  context state never depends on dict iteration order).

Soundness of an answer (with V = the retained valid lemmas):

* ``unsat`` under assumption ``a``: base ∧ V ∧ delta is unsat, and V is
  valid, so base ∧ delta is unsat — exactly the fresh answer.
* ``sat``: the boolean model satisfies every base, lemma, and active
  delta clause, and the *live* theory literals (atoms of base, lemmas,
  and the current scope — retired-scope atoms are excluded, their values
  are unconstrained junk) were verified theory-consistent by concrete
  model evaluation, witnessing a model of base ∧ delta.

Answers are **status-only**: when the caller needs a model (counterexample
inputs feed the synthesis trajectory, so models must be bit-identical to
a fresh solve), the solver falls through to the legacy one-shot path and
the warm context only short-circuits ``unsat``.  Axiom *instances*
triggered by the delta are scoped, not retained: instantiation is
deliberately incomplete, and a fresh solver's model may violate an
instance another query generated — retaining instances would let the
warm context answer ``unsat`` where a fresh solve finds a (spurious but
trajectory-relevant) model.  Base-level instances are shared by every
query in the family and stay permanent.

A context that cannot answer (array-inlining incompatibility, theory
round limit, SAT conflict budget, an internal error) returns ``None``
and the caller runs the legacy path — warm solving is a pure
optimization layer; every answer it does give matches the fresh
status, and ``REPRO_INCREMENTAL=0`` removes the layer entirely.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..resil import BudgetExhausted
from . import arrays as arrays_mod
from .cnf import CnfBuilder
from .quant import instantiate
from .sat import SatSolver
from .solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    Solver,
    SolverStats,
    axioms_digest,
    theory_check_literals,
)
from .terms import FALSE, Op, TRUE, Term

ENV_INCREMENTAL = "REPRO_INCREMENTAL"
"""Set to ``0`` to disable incremental contexts (restores the one-shot
solver path exactly); default is enabled."""

REBUILD_AFTER = 128
"""Retired scopes before a context rebuilds its SAT state from the base
plus retained lemmas.  Dead guarded clauses and learned clauses over
retired assumption variables accumulate and tax propagation; a periodic
rebuild keeps the clause database proportional to what is still live."""

MODEL_RERUN_BACKOFF = 8
"""Consecutive model-discarded warm answers before a context stops
attempting model-wanting queries.  A warm ``sat`` where the caller wants
a model is discarded (the one-shot path recomputes it bit-identically),
so on a family whose queries keep coming back ``sat`` — counterexample
searches against wrong candidates, the common case on SAT-heavy
programs — every warm attempt is pure overhead.  After this many
discards in a row the context answers only status-only probes; any
warm answer that actually lands (``unsat``, or ``sat`` with no model
wanted) resets the streak.  Skipping an attempt never changes an
answer: the discarded warm result would have fallen through to the
same one-shot solve."""


def incremental_enabled(config: Optional[bool] = None) -> bool:
    """Effective incremental flag: explicit config wins, then env."""
    if config is not None:
        return bool(config)
    env = os.environ.get(ENV_INCREMENTAL, "").strip().lower()
    return env not in ("0", "false", "off", "no")


class IncrementalContext:
    """Warm solver state for one query family (shared base, per-query delta)."""

    def __init__(self, base: Sequence[Term], axioms: Sequence = (),
                 instantiation_rounds: int = 2,
                 max_theory_rounds: int = 400,
                 sat_conflict_budget: int = 200_000,
                 lia_branch_limit: int = 200):
        self.base = tuple(base)
        self.axioms = list(axioms)
        self.instantiation_rounds = instantiation_rounds
        self.max_theory_rounds = max_theory_rounds
        self.sat_conflict_budget = sat_conflict_budget
        self.lia_branch_limit = lia_branch_limit
        self.stats = SolverStats()
        self.dead = False
        self._model_reruns = 0
        self._retained: List[Term] = []
        self._retained_ids: Set[int] = set()
        self._has_trichotomy: Set[Term] = set()
        self._retired_scopes = 0
        self._base_ids = frozenset(t.id for t in self.base)
        try:
            self._base_inlined = arrays_mod.inline_array_definitions(self.base)
            self._build()
        except Exception:
            self.dead = True

    # -- construction / rebuild ---------------------------------------------

    def _build(self) -> None:
        obs.count("smt.inc.context_build")
        self.sat = SatSolver()
        self.builder = CnfBuilder(self.sat)
        self._asserted: Set[int] = set()
        self._perm_vars: Set[int] = set()
        self._scope_vars: Set[int] = set()
        self._seen_vars: Set[int] = set()
        # formula id -> SAT vars of its atoms, valid for this build only
        # (a rebuild renumbers variables).
        self._atom_vars_memo: Dict[int, frozenset] = {}
        # Mirror Solver._preprocess over the base alone.
        formulas = list(self._base_inlined)
        formulas += arrays_mod.read_over_write_lemmas(self._base_inlined)
        if self.axioms:
            formulas += instantiate(self.axioms, formulas,
                                    rounds=self.instantiation_rounds)
            formulas += arrays_mod.read_over_write_lemmas(formulas)
        formulas += Solver._divmod_lemmas(formulas)
        for f in formulas:
            self._assert_permanent(f)
        negative_eqs: Set[Term] = set()
        for f in formulas:
            Solver._negative_int_eq_atoms(f, True, negative_eqs)
        for atom in sorted(negative_eqs, key=lambda t: t.skey):
            if atom not in self._has_trichotomy:
                self._assert_permanent(Solver._trichotomy(atom))
                self._has_trichotomy.add(atom)
        # Valid lemmas carried over from before the rebuild, re-asserted
        # in structural order so the rebuilt clause database is a pure
        # function of (base, retained set), not of discovery history.
        for lemma in sorted(self._retained, key=lambda t: t.skey):
            self._assert_permanent(lemma)
        self._absorb_atom_vars(self._perm_vars)

    def _assert_permanent(self, f: Term) -> bool:
        if f.id in self._asserted:
            return False
        self._asserted.add(f.id)
        self.builder.assert_formula(f)
        return True

    def _note_retained(self, f: Term) -> None:
        if f.id not in self._retained_ids:
            self._retained_ids.add(f.id)
            self._retained.append(f)
            obs.count("smt.inc.lemmas_retained")

    def _on_lemma(self, lemma: Term) -> None:
        """Callback from the shared theory loop: a valid lemma was just
        asserted through the builder (unguarded, hence permanent)."""
        self._asserted.add(lemma.id)
        self._note_retained(lemma)

    def _absorb_atom_vars(self, into: Set[int]) -> None:
        """Classify atom variables registered since the last absorb."""
        for var in self.builder.var_atom:
            if var not in self._seen_vars:
                self._seen_vars.add(var)
                into.add(var)

    # -- per-query solving ----------------------------------------------------

    def check_delta(self, assertions: Sequence[Term],
                    budget: Optional[object] = None) -> Optional[str]:
        """Status of ``/\\ assertions`` (which must include the base).

        Returns ``"sat"``/``"unsat"``, or None when the context cannot
        answer and the caller must run a fresh solve.  Never returns
        ``"unknown"`` — an inconclusive warm attempt is a fallback, so
        the fresh path gets its full budget to decide.
        """
        if self.dead:
            return None
        try:
            return self._check_delta(assertions, budget)
        except BudgetExhausted:
            raise
        except Exception:
            # A warm-path failure must never change an answer the legacy
            # path would produce; retire this context and fall back.
            self.dead = True
            obs.count("smt.inc.error")
            return None

    def _check_delta(self, assertions: Sequence[Term],
                     budget: Optional[object]) -> Optional[str]:
        if not self.sat._ok:
            # The permanent set (base ∧ valid lemmas) is unsat, so the
            # base itself is: every query extending it is unsat.
            obs.count("smt.inc.warm_hit")
            return UNSAT
        present = {t.id for t in assertions}
        if not self._base_ids <= present:
            return None  # not actually a superset of the base
        delta = [t for t in assertions if t.id not in self._base_ids]
        if self._retired_scopes >= REBUILD_AFTER:
            obs.count("smt.inc.rebuild")
            self._retired_scopes = 0
            self._build()

        # Mirror Solver._preprocess over base + delta.  Inlining scans
        # *all* assertions for SSA array definitions, so a delta that
        # (re)defines an array the base mentions would change how the
        # base itself inlines — detectable because terms are hash-consed:
        # compatible inlining reproduces the identical base objects.
        full = list(self.base) + delta
        inlined = arrays_mod.inline_array_definitions(full)
        nb = len(self.base)
        for mine, theirs in zip(self._base_inlined, inlined[:nb]):
            if mine is not theirs:
                obs.count("smt.inc.incompatible")
                return None
        rows = arrays_mod.read_over_write_lemmas(inlined)
        scoped: List[Term] = list(inlined[nb:])
        valid: List[Term] = list(rows)
        formulas = inlined + rows
        if self.axioms:
            instances = instantiate(self.axioms, formulas,
                                    rounds=self.instantiation_rounds)
            # Delta-triggered instances are scoped (see module docstring):
            # retaining them could make the warm context *stronger* than a
            # fresh solve, whose models may violate never-generated
            # instances.  Instances already permanent (from the base) are
            # asserted; re-scoping them would be redundant.
            scoped += [f for f in instances if f.id not in self._asserted]
            formulas = formulas + instances
            extra_rows = arrays_mod.read_over_write_lemmas(formulas)
            valid += extra_rows
            formulas = formulas + extra_rows
        valid += Solver._divmod_lemmas(formulas)
        negative_eqs: Set[Term] = set()
        for f in formulas:
            Solver._negative_int_eq_atoms(f, True, negative_eqs)
        for atom in sorted(negative_eqs, key=lambda t: t.skey):
            if atom not in self._has_trichotomy:
                valid.append(Solver._trichotomy(atom))
                self._has_trichotomy.add(atom)

        # Permanent valid lemmas, asserted in structural-skey order.
        fresh: List[Term] = []
        seen_new: Set[int] = set()
        for f in valid:
            if f.id not in self._asserted and f.id not in seen_new:
                seen_new.add(f.id)
                fresh.append(f)
        for f in sorted(fresh, key=lambda t: t.skey):
            self._assert_permanent(f)
            self._note_retained(f)
        self._absorb_atom_vars(self._perm_vars)

        # Open the scope: guard every delta clause on a fresh assumption.
        assumption = self.sat.new_var()
        obs.count("smt.inc.scope_push")
        self._scope_vars = set()
        for f in scoped:
            self.builder.assert_formula(f, guard=-assumption)
        self._absorb_atom_vars(self._scope_vars)
        # Registration order is not enough: an atom first registered by a
        # *retired* scope reappearing in this delta is already "seen", yet
        # this scope's clauses constrain it — it must be live or the
        # theory check would bless a model with a junk value for it
        # (spurious SAT).  Collect the scope's atoms syntactically.
        for f in scoped:
            self._scope_vars |= self._atom_vars_of(f)

        self.sat.budget = budget
        status: Optional[str] = None
        try:
            for _ in range(self.max_theory_rounds):
                self.stats.theory_rounds += 1
                sat_result = self.sat.solve(
                    max_conflicts=self.sat_conflict_budget,
                    assumptions=(assumption,))
                if sat_result is False:
                    status = UNSAT
                    break
                if sat_result is None:
                    break  # conflict budget: let the fresh path decide
                bool_model = self.sat.model()
                literals = self._live_literals(bool_model)
                outcome, _model, _reason = theory_check_literals(
                    literals, self.builder, self.sat, self._has_trichotomy,
                    self.lia_branch_limit, self.stats,
                    on_lemma=self._on_lemma, retain_valid=True)
                self._absorb_atom_vars(self._perm_vars)
                if outcome == SAT:
                    status = SAT
                    break
                if outcome == UNKNOWN:
                    break
        finally:
            self.sat.budget = None
            self._retire(assumption)
        if status in (SAT, UNSAT):
            obs.count("smt.inc.warm_hit")
            return status
        obs.count("smt.inc.fallback_fresh")
        return None

    def _atom_vars_of(self, f: Term) -> frozenset:
        """SAT variables of every atom occurring in formula ``f``.

        Mirrors :class:`CnfBuilder`'s traversal: AND/OR/NOT are boolean
        structure, everything else is an atom.  Memoized per build —
        deltas repeat heavily across the query family.
        """
        cached = self._atom_vars_memo.get(f.id)
        if cached is not None:
            return cached
        vars_: Set[int] = set()
        stack = [f]
        visited: Set[int] = set()
        while stack:
            t = stack.pop()
            if t.id in visited or t is TRUE or t is FALSE:
                continue
            visited.add(t.id)
            if t.op in (Op.NOT, Op.AND, Op.OR):
                stack.extend(t.args)
            else:
                var = self.builder.atom_var.get(t)
                if var is not None:
                    vars_.add(var)
        result = frozenset(vars_)
        self._atom_vars_memo[f.id] = result
        return result

    def _live_literals(self, model: Dict[int, bool]
                       ) -> List[Tuple[Term, bool]]:
        """Theory literals of the current query: base + lemma + scope atoms.

        Atoms registered by *retired* scopes still receive SAT values,
        but their clauses are disabled and the values are arbitrary —
        feeding them to the theory checker would reject models over
        junk.  Excluding them is sound: valid lemmas hold in every
        theory model, and the literals passed here cover every clause of
        base ∧ delta ∧ lemmas.
        """
        out: List[Tuple[Term, bool]] = []
        for atom, var in self.builder.atom_var.items():
            if atom is TRUE:
                continue
            val = model.get(var)
            if val is None:
                continue
            if var in self._perm_vars or var in self._scope_vars:
                out.append((atom, val))
        return out

    def _retire(self, assumption: int) -> None:
        obs.count("smt.inc.scope_pop")
        self.sat.add_clause([-assumption])
        self._scope_vars = set()
        self._retired_scopes += 1


class ContextPool:
    """An LRU pool of :class:`IncrementalContext`, keyed by query family.

    The key is the tuple of base term ids (terms are hash-consed and
    immortal, so ids are stable and unambiguous for the process) plus
    the solver parameters that shape the clause set.  One checker owns
    one pool; forked workers inherit warm contexts copy-on-write.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._contexts: "OrderedDict[tuple, IncrementalContext]" = OrderedDict()

    def context_for(self, base: Sequence[Term], axioms: Sequence,
                    instantiation_rounds: int, max_theory_rounds: int,
                    sat_conflict_budget: int,
                    lia_branch_limit: int) -> IncrementalContext:
        key = (tuple(t.id for t in base), axioms_digest(axioms),
               instantiation_rounds, sat_conflict_budget, lia_branch_limit)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = IncrementalContext(
                base, axioms,
                instantiation_rounds=instantiation_rounds,
                max_theory_rounds=max_theory_rounds,
                sat_conflict_budget=sat_conflict_budget,
                lia_branch_limit=lia_branch_limit)
            self._contexts[key] = ctx
            while len(self._contexts) > self.capacity:
                self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(key)
        return ctx

    def try_status(self, solver: Solver, base: Sequence[Term],
                   want_model: bool) -> Optional[str]:
        """Answer ``solver``'s query warm, or None for the legacy path.

        Only ``unsat`` (needs no model) and model-free ``sat`` are final;
        a ``sat`` that needs a model falls through so the one-shot solver
        produces the bit-identical model a fresh run would.  Families
        whose warm answers keep getting discarded that way stop being
        attempted for model-wanting queries (MODEL_RERUN_BACKOFF).
        """
        if not base:
            return None
        ctx = self.context_for(base, solver.axioms,
                               solver.instantiation_rounds,
                               solver.max_theory_rounds,
                               solver.sat_conflict_budget,
                               solver.lia_branch_limit)
        if ctx.dead:
            return None
        if want_model and ctx._model_reruns >= MODEL_RERUN_BACKOFF:
            obs.count("smt.inc.backoff_skip")
            return None
        status = ctx.check_delta(solver.assertions, budget=solver.budget)
        if status == UNSAT:
            ctx._model_reruns = 0
            return UNSAT
        if status == SAT:
            if not want_model:
                ctx._model_reruns = 0
                return SAT
            ctx._model_reruns += 1
            obs.count("smt.inc.model_rerun")
        return None
