"""A ground SMT solver built from scratch for the PINS reproduction.

Fragment: quantifier-free linear integer arithmetic + equality with
uninterpreted functions + int-indexed arrays, plus pattern-instantiated
universally quantified axioms for library functions.

The paper used Z3; DESIGN.md §3.1 documents why this substitution
preserves the behaviour PINS depends on.
"""

from . import arrays, cnf, euf, lia, models, quant, sat, solver, terms
from .models import Model
from .quant import Axiom
from .sat import SatSolver, solve_cnf
from .solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    Solver,
    axioms_digest,
    check_formulas,
    query_fingerprint,
    query_signature,
    query_theories,
)
from .terms import (
    ARR,
    BOOL,
    FALSE,
    INT,
    OBJ,
    SARR,
    STR,
    TRUE,
    Term,
    TSort,
    array_sort,
    mk_add,
    mk_and,
    mk_app,
    mk_div,
    mk_distinct,
    mk_eq,
    mk_ge,
    mk_gt,
    mk_implies,
    mk_int,
    mk_le,
    mk_lt,
    mk_mod,
    mk_mul,
    mk_mul_const,
    mk_not,
    mk_or,
    mk_select,
    mk_store,
    mk_sub,
    mk_var,
    subterms,
    substitute,
    term_vars,
    uninterpreted_sort,
)

__all__ = [name for name in dir() if not name.startswith("_")]
