"""Benchmark: vector shift — translate points on the Euclidean plane.

The synthesizer discovers a specialized *un-shifter* that iterates over
the vectors, semantically negating the shift (the paper stresses PINS is
not told that negation inverts translation).
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program vector_shift [array X; array Y; int n; int dx; int dy; int i] {
  in(X, Y, n, dx, dy);
  assume(n >= 0);
  i := 0;
  while (i < n) {
    X := upd(X, i, sel(X, i) + dx);
    Y := upd(Y, i, sel(Y, i) + dy);
    i := i + 1;
  }
  out(X, Y, n, dx, dy);
}
""")

INVERSE_TEMPLATE = parse_program("""
program vector_shift_inv [array X; array Y; int n; int dx; int dy;
                          array Xp; array Yp; int ip] {
  ip := [e1];
  while ([p1]) {
    Xp := [e2];
    Yp := [e3];
    ip := [e4];
  }
  out(Xp, Yp, ip);
}
""")

GROUND_TRUTH = parse_program("""
program vector_shift_inv [array X; array Y; int n; int dx; int dy;
                          array Xp; array Yp; int ip] {
  ip := 0;
  while (ip < n) {
    Xp := upd(Xp, ip, sel(X, ip) - dx);
    Yp := upd(Yp, ip, sel(Y, ip) - dy);
    ip := ip + 1;
  }
  out(Xp, Yp, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1",
    "upd(Xp, ip, sel(X, ip) - dx)", "upd(Xp, ip, sel(X, ip) + dx)",
    "upd(Yp, ip, sel(Y, ip) - dy)", "upd(Yp, ip, sel(Y, ip) + dy)",
    "upd(Xp, ip, sel(X, ip) - dy)", "upd(Yp, ip, sel(Y, ip) - dx)",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < n", "ip > n", "0 < ip",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("X", "Xp", "n"), ("Y", "Yp", "n")),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    return {
        "X": [rng.randint(-3, 3) for _ in range(n)],
        "Y": [rng.randint(-3, 3) for _ in range(n)],
        "n": n,
        "dx": rng.randint(-3, 3),
        "dy": rng.randint(-3, 3),
    }


INITIAL_INPUTS = (
    {"X": [], "Y": [], "n": 0, "dx": 1, "dy": -1},
    {"X": [2], "Y": [3], "n": 1, "dx": 1, "dy": 2},
    {"X": [1, -2], "Y": [0, 4], "n": 2, "dx": -2, "dy": 3},
    {"X": [1, 2, 3], "Y": [3, 2, 1], "n": 3, "dx": 2, "dy": 0},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="vector_shift",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="vector_shift",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        paper=PaperNumbers(
            loc=8, mined=11, subset=7, modifications=0, inverse_loc=7, axioms=0,
            search_space_log2=16, num_solutions=1, iterations=3,
            time_seconds=4.20, sat_size=187, tests=1,
            cbmc_seconds=1.15, sketch_seconds=113.74,
        ),
    )
