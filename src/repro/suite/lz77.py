"""Benchmark: LZ77 — dictionary-constructing sliding-window compression.

The encoder emits (position, length, literal) triples: the longest match
of the lookahead in the already-seen prefix, then the next literal.  The
decoder re-expands each triple by copying from its own output — the
self-referential copy that grammar-based inversion cannot handle (the
paper singles out LZ77/LZW as beyond those techniques).
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program lz77 [array A; int n; array P; array R; array C; int k;
              int i; int j; int r; int bestp; int bestr] {
  in(A, n);
  assume(n >= 0);
  i, k := 0, 0;
  while (i < n) {
    bestp, bestr := 0, 0;
    j := 0;
    while (j < i) {
      r := 0;
      while (i + r < n - 1 && sel(A, j + r) = sel(A, i + r)) {
        r := r + 1;
      }
      if (r > bestr) {
        bestp, bestr := j, r;
      }
      j := j + 1;
    }
    P := upd(P, k, bestp);
    R := upd(R, k, bestr);
    C := upd(C, k, sel(A, i + bestr));
    k := k + 1;
    i := i + bestr + 1;
  }
  out(P, R, C, k);
}
""")

INVERSE_TEMPLATE = parse_program("""
program lz77_inv [array P; array R; array C; int k;
                  array Ap; int ip; int kp; int jp; int rp; int pp] {
  ip, kp := [e1], [e2];
  while ([p1]) {
    rp, pp := [e3], [e4];
    jp := [e5];
    while ([p2]) {
      Ap := [e6];
      ip, jp := [e7], [e8];
    }
    Ap := [e9];
    ip, kp := [e10], [e11];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program lz77_inv [array P; array R; array C; int k;
                  array Ap; int ip; int kp; int jp; int rp; int pp] {
  ip, kp := 0, 0;
  while (kp < k) {
    rp, pp := sel(R, kp), sel(P, kp);
    jp := 0;
    while (jp < rp) {
      Ap := upd(Ap, ip, sel(Ap, pp + jp));
      ip, jp := ip + 1, jp + 1;
    }
    Ap := upd(Ap, ip, sel(C, kp));
    ip, kp := ip + 1, kp + 1;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1", "jp + 1", "kp + 1",
    "sel(R, kp)", "sel(P, kp)",
    "upd(Ap, ip, sel(Ap, pp + jp))", "upd(Ap, ip, sel(Ap, pp - jp))",
    "upd(Ap, ip, sel(C, kp))", "upd(Ap, pp + jp, sel(Ap, ip))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "kp < k", "jp < rp", "rp > 0", "0 < jp",
])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 6)
    return {"A": [rng.randint(1, 2) for _ in range(n)], "n": n}


INITIAL_INPUTS = tuple(
    {"A": list(a), "n": len(a)}
    for a in ([], [1], [1, 1], [1, 2], [1, 1, 1], [1, 2, 1, 2, 1],
              [2, 2, 1, 2, 2, 1], [1, 2, 2, 1, 1, 2, 2])
)

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("A", "Ap", "n"),),
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="lz77",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        expr_overrides={
            "e1": tuple(parse_expr(t) for t in ["0", "1"]),
            "e2": tuple(parse_expr(t) for t in ["0", "1"]),
            "e3": tuple(parse_expr(t) for t in ["sel(R, kp)", "sel(P, kp)", "0"]),
            "e4": tuple(parse_expr(t) for t in ["sel(P, kp)", "sel(R, kp)", "0"]),
            "e5": tuple(parse_expr(t) for t in ["0", "1"]),
        },
        max_pred_conj=1,
        max_unroll=3,
        bmc_unroll=10,
        bmc_array_size=4,
        bmc_value_range=(1, 2),
    )
    return Benchmark(
        name="lz77",
        group="compressor",
        task=task,
        ground_truth=GROUND_TRUTH,
        paper=PaperNumbers(
            loc=22, mined=16, subset=10, modifications=3, inverse_loc=13, axioms=0,
            search_space_log2=25, num_solutions=2, iterations=6,
            time_seconds=1810.31, sat_size=330, tests=5,
            cbmc_seconds=1.93, sketch_seconds=29,
        ),
        notes="The paper's slowest benchmark (30 minutes on the authors' "
              "setup).",
    )
