"""Benchmark: LU decomposition (Doolittle) and its in-place inverse.

The forward program LU-decomposes a matrix in place (unit lower
triangle below the diagonal, upper triangle on and above); the inverse —
manually derived in prior work, synthesized here — re-multiplies the
triangular factors in place.

Matrices are flattened row-major into an int-indexed array with a fixed
small dimension ``n``; multiplication/division are the abstract exact
``mul``/``div`` of :mod:`repro.axioms.arith`, and the precondition (the
matrix is LU-decomposable without pivoting) is enforced by the input
generator producing matrices that are products of random unit-lower and
upper factors.

To keep the synthesis space at the paper's scale (2^5), the template
fixes the triple-loop skeleton and leaves the two update expressions and
the middle guard unknown.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..axioms.arith import arith_registry, mul_div_axioms
from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

# Doolittle, in place, k-i-j order:  for k; for i>k: A[i,k] /= A[k,k];
# for j>k: A[i,j] -= A[i,k]*A[k,j].
PROGRAM = parse_program("""
program lu_decomp [array A; int n; int nn; int k; int i; int j] {
  in(A, n, nn);
  assume(n >= 0);
  assume(nn = n * n);
  k := 0;
  while (k < n) {
    i := k + 1;
    while (i < n) {
      A := upd(A, i * n + k, div(sel(A, i * n + k), sel(A, k * n + k)));
      j := k + 1;
      while (j < n) {
        A := upd(A, i * n + j,
                 sel(A, i * n + j) - mul(sel(A, i * n + k), sel(A, k * n + j)));
        j := j + 1;
      }
      i := i + 1;
    }
    k := k + 1;
  }
  out(A, n, nn);
}
""")

# The inverse walks k backwards, re-multiplying the factors.
INVERSE_TEMPLATE = parse_program("""
program lu_decomp_inv [array A; int n; int nn; array Ap; int kp; int ipp; int jp] {
  Ap := [e0];
  kp := [e1];
  while ([p1]) {
    ipp := kp + 1;
    while ([p2]) {
      jp := kp + 1;
      while ([p3]) {
        Ap := [e2];
        jp := jp + 1;
      }
      Ap := [e3];
      ipp := ipp + 1;
    }
    kp := kp - 1;
  }
  out(Ap, n);
}
""")

GROUND_TRUTH = parse_program("""
program lu_decomp_inv [array A; int n; int nn; array Ap; int kp; int ipp; int jp] {
  Ap := A;
  kp := n - 1;
  while (kp >= 0) {
    ipp := kp + 1;
    while (ipp < n) {
      jp := kp + 1;
      while (jp < n) {
        Ap := upd(Ap, ipp * n + jp,
                  sel(Ap, ipp * n + jp) + mul(sel(Ap, ipp * n + kp), sel(Ap, kp * n + jp)));
        jp := jp + 1;
      }
      Ap := upd(Ap, ipp * n + kp, mul(sel(Ap, ipp * n + kp), sel(Ap, kp * n + kp)));
      ipp := ipp + 1;
    }
    kp := kp - 1;
  }
  out(Ap, n);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "A", "0", "n - 1",
    "upd(Ap, ipp * n + jp, sel(Ap, ipp * n + jp) + mul(sel(Ap, ipp * n + kp), sel(Ap, kp * n + jp)))",
    "upd(Ap, ipp * n + jp, sel(Ap, ipp * n + jp) - mul(sel(Ap, ipp * n + kp), sel(Ap, kp * n + jp)))",
    "upd(Ap, ipp * n + kp, mul(sel(Ap, ipp * n + kp), sel(Ap, kp * n + kp)))",
    "upd(Ap, ipp * n + kp, div(sel(Ap, ipp * n + kp), sel(Ap, kp * n + kp)))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "kp >= 0", "kp < n", "ipp < n", "jp < n",
])


def _random_lu_input(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 3)
    lower = [[1 if a == b else (rng.randint(-2, 2) if a > b else 0)
              for b in range(n)] for a in range(n)]
    upper = [[rng.choice([1, 2, -1, 3]) if a == b
              else (rng.randint(-2, 2) if b > a else 0)
              for b in range(n)] for a in range(n)]
    product = [[sum(lower[a][t] * upper[t][b] for t in range(n))
                for b in range(n)] for a in range(n)]
    flat = [product[a][b] for a in range(n) for b in range(n)]
    return {"A": flat, "n": n, "nn": n * n}


def input_gen(rng: random.Random) -> Dict[str, Any]:
    return _random_lu_input(rng)


def is_decomposable(inputs: Dict[str, Any]) -> bool:
    """Pivot-free Doolittle requires nonsingular leading principal minors."""
    from fractions import Fraction

    n = inputs.get("n", 0)
    if inputs.get("nn", n * n) != n * n:
        return False
    arr = inputs.get("A")
    get = arr.get if hasattr(arr, "get") else lambda i: arr[i]
    m = [[Fraction(get(a * n + b)) for b in range(n)] for a in range(n)]
    for k in range(n):
        if m[k][k] == 0:
            return False
        for i in range(k + 1, n):
            factor = m[i][k] / m[k][k]
            for j in range(k, n):
                m[i][j] -= factor * m[k][j]
    return True


INITIAL_INPUTS = (
    {"A": [], "n": 0, "nn": 0},
    {"A": [2], "n": 1, "nn": 1},
    {"A": [2, 1, 4, 5], "n": 2, "nn": 4},
    {"A": [1, 2, 0, 3, 7, 1, 0, 2, 3], "n": 3, "nn": 9},
)

def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="lu_decomp",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=InversionSpec(
            scalar_pairs=(("n", "n"),),
            array_pairs=(("A", "Ap", "nn"),),
        ),
        externs=arith_registry(),
        axioms=mul_div_axioms(),
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        precondition=is_decomposable,
        expr_overrides={
            "e0": tuple(parse_expr(t) for t in ["A"]),
            "e1": tuple(parse_expr(t) for t in ["n - 1", "0"]),
        },
        pred_overrides={
            "p1": tuple(parse_pred(t) for t in ["kp >= 0", "kp < n"]),
            "p2": tuple(parse_pred(t) for t in ["ipp < n", "ipp > n"]),
            "p3": tuple(parse_pred(t) for t in ["jp < n", "jp > n"]),
        },
        max_pred_conj=1,
        max_unroll=3,
        bmc_unroll=8,
        bmc_array_size=2,
        bmc_value_range=(1, 2),
    )
    return Benchmark(
        name="lu_decomp",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=11, mined=14, subset=9, modifications=0, inverse_loc=12, axioms=2,
            search_space_log2=5, num_solutions=1, iterations=1,
            time_seconds=160.24, sat_size=10, tests=1,
            cbmc_seconds=172,
        ),
    )
