"""Benchmark: vector rotate — rotate plane points by an abstract angle.

The paper's showpiece for axiomatized synthesis: the inverse of
``(x, y) := (x cos t - y sin t,  x sin t + y cos t)`` is
``(x, y) := (x' cos t + y' sin t,  y' cos t - x' sin t)``, discovered
with the single Pythagorean axiom relating ``cos`` and ``sin``.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..axioms.arith import arith_registry
from ..axioms.trig import trig_axioms, trig_registry
from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program vector_rotate [array X; array Y; int n; int t; int i] {
  in(X, Y, n, t);
  assume(n >= 0);
  i := 0;
  while (i < n) {
    X, Y := upd(X, i, mul(sel(X, i), cos(t)) - mul(sel(Y, i), sin(t))),
            upd(Y, i, mul(sel(X, i), sin(t)) + mul(sel(Y, i), cos(t)));
    i := i + 1;
  }
  out(X, Y, n, t);
}
""")

INVERSE_TEMPLATE = parse_program("""
program vector_rotate_inv [array X; array Y; int n; int t;
                           array Xp; array Yp; int ip] {
  ip := [e1];
  while ([p1]) {
    Xp, Yp := [e2], [e3];
    ip := [e4];
  }
  out(Xp, Yp, ip);
}
""")

GROUND_TRUTH = parse_program("""
program vector_rotate_inv [array X; array Y; int n; int t;
                           array Xp; array Yp; int ip] {
  ip := 0;
  while (ip < n) {
    Xp, Yp := upd(Xp, ip, mul(sel(X, ip), cos(t)) + mul(sel(Y, ip), sin(t))),
              upd(Yp, ip, mul(sel(Y, ip), cos(t)) - mul(sel(X, ip), sin(t)));
    ip := ip + 1;
  }
  out(Xp, Yp, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1",
    "upd(Xp, ip, mul(sel(X, ip), cos(t)) + mul(sel(Y, ip), sin(t)))",
    "upd(Xp, ip, mul(sel(X, ip), cos(t)) - mul(sel(Y, ip), sin(t)))",
    "upd(Yp, ip, mul(sel(Y, ip), cos(t)) - mul(sel(X, ip), sin(t)))",
    "upd(Yp, ip, mul(sel(Y, ip), cos(t)) + mul(sel(X, ip), sin(t)))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < n", "ip > n", "0 < ip",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("X", "Xp", "n"), ("Y", "Yp", "n")),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    return {
        "X": [rng.randint(-3, 3) for _ in range(n)],
        "Y": [rng.randint(-3, 3) for _ in range(n)],
        "n": n,
        "t": rng.randint(0, 3),
    }


INITIAL_INPUTS = (
    {"X": [], "Y": [], "n": 0, "t": 0},
    {"X": [2], "Y": [3], "n": 1, "t": 0},
    {"X": [1, -2], "Y": [0, 4], "n": 2, "t": 1},
    {"X": [1, 2, 3], "Y": [3, 2, 1], "n": 3, "t": 2},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="vector_rotate",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        externs=arith_registry().merged_with(trig_registry()),
        axioms=trig_axioms(),
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="vector_rotate",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=8, mined=13, subset=7, modifications=0, inverse_loc=7, axioms=1,
            search_space_log2=16, num_solutions=1, iterations=3,
            time_seconds=39.51, sat_size=327, tests=1,
        ),
    )
