"""Benchmark: vector scale — multiply plane points by a scalar.

Scaling uses the abstract ``mul``; inversion requires reasoning about
``1/x``, which enters through the ``div``/``mul`` axioms of
:mod:`repro.axioms.arith` (Table 1 reports 1 axiom for this row).
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..axioms.arith import arith_registry, mul_div_axioms
from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program vector_scale [array X; array Y; int n; int c; int i] {
  in(X, Y, n, c);
  assume(n >= 0);
  assume(c > 0);
  i := 0;
  while (i < n) {
    X := upd(X, i, mul(sel(X, i), c));
    Y := upd(Y, i, mul(sel(Y, i), c));
    i := i + 1;
  }
  out(X, Y, n, c);
}
""")

INVERSE_TEMPLATE = parse_program("""
program vector_scale_inv [array X; array Y; int n; int c;
                          array Xp; array Yp; int ip] {
  ip := [e1];
  while ([p1]) {
    Xp := [e2];
    Yp := [e3];
    ip := [e4];
  }
  out(Xp, Yp, ip);
}
""")

GROUND_TRUTH = parse_program("""
program vector_scale_inv [array X; array Y; int n; int c;
                          array Xp; array Yp; int ip] {
  ip := 0;
  while (ip < n) {
    Xp := upd(Xp, ip, div(sel(X, ip), c));
    Yp := upd(Yp, ip, div(sel(Y, ip), c));
    ip := ip + 1;
  }
  out(Xp, Yp, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1",
    "upd(Xp, ip, div(sel(X, ip), c))", "upd(Xp, ip, mul(sel(X, ip), c))",
    "upd(Yp, ip, div(sel(Y, ip), c))", "upd(Yp, ip, mul(sel(Y, ip), c))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < n", "ip > n", "0 < ip",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("X", "Xp", "n"), ("Y", "Yp", "n")),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    return {
        "X": [rng.randint(-3, 3) for _ in range(n)],
        "Y": [rng.randint(-3, 3) for _ in range(n)],
        "n": n,
        "c": rng.randint(1, 4),
    }


INITIAL_INPUTS = (
    {"X": [], "Y": [], "n": 0, "c": 2},
    {"X": [2], "Y": [3], "n": 1, "c": 2},
    {"X": [1, -2], "Y": [0, 4], "n": 2, "c": 3},
    {"X": [1, 2, 3], "Y": [3, 2, 1], "n": 3, "c": 2},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="vector_scale",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        externs=arith_registry(),
        axioms=mul_div_axioms(),
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="vector_scale",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=8, mined=9, subset=7, modifications=2, inverse_loc=7, axioms=1,
            search_space_log2=16, num_solutions=1, iterations=3,
            time_seconds=4.41, sat_size=191, tests=1,
        ),
    )
