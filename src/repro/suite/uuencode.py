"""Benchmark: UUEncode — 3 bytes to 4 printable chars with header/footer.

Classic uuencoding of one line: the output starts with a length character
(32 + n), then four printable characters (value + 32) per three input
bytes, and ends with a terminating backquote (96).  The inverse reads the
header to recover the length — which is exactly what makes this benchmark
interesting: the decoder's loop bound comes from the *data*.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .common import array_range_axiom, array_range_precondition
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program uuencode [array A; int n; array B; int k; int i] {
  in(A, n);
  assume(n >= 0);
  assume(n % 3 = 0);
  B := upd(B, 0, 32 + n);
  i, k := 0, 1;
  while (i < n) {
    B := upd(B, k, 32 + sel(A, i) / 4);
    B := upd(B, k + 1, 32 + (sel(A, i) % 4) * 16 + sel(A, i + 1) / 16);
    B := upd(B, k + 2, 32 + (sel(A, i + 1) % 16) * 4 + sel(A, i + 2) / 64);
    B := upd(B, k + 3, 32 + sel(A, i + 2) % 64);
    i, k := i + 3, k + 4;
  }
  B := upd(B, k, 96);
  out(B, k);
}
""")

INVERSE_TEMPLATE = parse_program("""
program uuencode_inv [array B; int k; array Ap; int ip; int kp; int np] {
  np := [e1];
  ip, kp := [e2], [e3];
  while ([p1]) {
    Ap := [e4];
    Ap := [e5];
    Ap := [e6];
    ip, kp := [e7], [e8];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program uuencode_inv [array B; int k; array Ap; int ip; int kp; int np] {
  np := sel(B, 0) - 32;
  ip, kp := 0, 1;
  while (ip < np) {
    Ap := upd(Ap, ip, (sel(B, kp) - 32) * 4 + (sel(B, kp + 1) - 32) / 16);
    Ap := upd(Ap, ip + 1, ((sel(B, kp + 1) - 32) % 16) * 16 + (sel(B, kp + 2) - 32) / 4);
    Ap := upd(Ap, ip + 2, ((sel(B, kp + 2) - 32) % 4) * 64 + (sel(B, kp + 3) - 32));
    ip, kp := ip + 3, kp + 4;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "sel(B, 0) - 32", "sel(B, 0) + 32",
    "ip + 3", "kp + 4", "ip + 4", "kp + 3",
    "upd(Ap, ip, (sel(B, kp) - 32) * 4 + (sel(B, kp + 1) - 32) / 16)",
    "upd(Ap, ip + 1, ((sel(B, kp + 1) - 32) % 16) * 16 + (sel(B, kp + 2) - 32) / 4)",
    "upd(Ap, ip + 2, ((sel(B, kp + 2) - 32) % 4) * 64 + (sel(B, kp + 3) - 32))",
    "upd(Ap, ip, (sel(B, kp) - 32) * 4 + (sel(B, kp + 1) - 32) % 16)",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < np", "kp < np", "0 < kp",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("A", "Ap", "n"),),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = 3 * rng.randint(0, 2)
    return {"A": [rng.randint(0, 255) for _ in range(n)], "n": n}


INITIAL_INPUTS = (
    {"A": [], "n": 0},
    {"A": [0, 0, 1], "n": 3},
    {"A": [255, 0, 129], "n": 3},
    {"A": [7, 77, 177, 200, 100, 50], "n": 6},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="uuencode",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        input_axioms=(array_range_axiom("A", "n", 0, 256),),
        precondition=array_range_precondition("A", "n", 0, 256),
        max_pred_conj=2,
        max_unroll=3,
        bmc_unroll=10,
        bmc_array_size=3,
        bmc_value_range=(0, 3),
    )
    return Benchmark(
        name="uuencode",
        group="encoder",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=12, mined=10, subset=4, modifications=7, inverse_loc=11, axioms=3,
            search_space_log2=20, num_solutions=1, iterations=7,
            time_seconds=34.00, sat_size=177, tests=6,
        ),
        notes="Header char encodes the payload length; the decoder's loop "
              "bound is recovered from the data.",
    )
