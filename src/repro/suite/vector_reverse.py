"""Benchmark: vector reverse — mirror an array about its midpoint.

Extension benchmark (not in the paper's Table 1): reversal is an
involution, so the synthesized inverse must rediscover the same
mirrored-index read (``sel(R, n - 1 - ip)``) rather than a shifted or
direct copy.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program vector_reverse [array A; int n; array R; int i] {
  in(A, n);
  assume(n >= 0);
  i := 0;
  while (i < n) {
    R := upd(R, i, sel(A, n - 1 - i));
    i := i + 1;
  }
  out(R, n);
}
""")

INVERSE_TEMPLATE = parse_program("""
program vector_reverse_inv [array R; int n; array Ap; int ip] {
  ip := [e1];
  while ([p1]) {
    Ap := [e2];
    ip := [e3];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program vector_reverse_inv [array R; int n; array Ap; int ip] {
  ip := 0;
  while (ip < n) {
    Ap := upd(Ap, ip, sel(R, n - 1 - ip));
    ip := ip + 1;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1",
    "upd(Ap, ip, sel(R, n - 1 - ip))",
    "upd(Ap, ip, sel(R, ip))",
    "upd(Ap, ip, sel(R, n - ip))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < n", "ip > n", "0 < ip",
])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    return {"A": [rng.randint(-3, 3) for _ in range(n)], "n": n}


INITIAL_INPUTS = tuple(
    {"A": list(a), "n": len(a)}
    for a in ([], [5], [1, 2], [3, 1, 4], [2, 7, 1, 8])
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="vector_reverse",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="vector_reverse",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        in_paper=False,
        paper=PaperNumbers(),
        notes="Extension benchmark: reversal is an involution.",
    )
