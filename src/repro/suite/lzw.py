"""Benchmark: LZW — Lempel-Ziv-Welch over a binary alphabet.

The encoder builds a dictionary of strings on the fly (seeded with the
single-character strings "0" and "1", like the paper's Figure 4b) and
emits dictionary indices; the decoder rebuilds the same dictionary from
the code stream alone, including the classic K-omega-K corner case where
a code refers to the entry being defined.

Strings are the abstract ADT of :mod:`repro.axioms.strings`; the paper
reports 15 axioms for this row — our reusable string library covers the
same ground with 8.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..axioms.strings import STRING_EXTERNS, string_axioms
from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers
from .common import array_range_axiom, array_range_precondition

PROGRAM = parse_program("""
program lzw [array A; int n; strarray D; int p; array B; int k;
             int i; int c; int x; str w] {
  in(A, n);
  assume(n >= 1);
  D := upd(D, 0, single(0));
  D := upd(D, 1, single(1));
  p := 2;
  w := single(sel(A, 0));
  i, k := 1, 0;
  while (i < n) {
    c := sel(A, i);
    x := findidx(D, p, append(w, c));
    if (x >= 0) {
      w := append(w, c);
    } else {
      B := upd(B, k, findidx(D, p, w));
      k := k + 1;
      D := upd(D, p, append(w, c));
      p := p + 1;
      w := single(c);
    }
    i := i + 1;
  }
  B := upd(B, k, findidx(D, p, w));
  k := k + 1;
  out(B, k);
}
""")

# The decoder template: the dictionary rebuild and the K-omega-K case are
# the unknowns; the emit loop structure is fixed (paper: Inv LoC 20).
INVERSE_TEMPLATE = parse_program("""
program lzw_inv [array B; int k; strarray Dp; int pp; array Ap; int ip;
                 int kp; int cur; int jp; str sp; str prevs] {
  Dp := upd(Dp, 0, single(0));
  Dp := upd(Dp, 1, single(1));
  pp := 2;
  sp := sel(Dp, sel(B, 0));
  jp := 0;
  while (jp < strlen(sp)) {
    Ap := upd(Ap, jp, char_at(sp, jp));
    jp := jp + 1;
  }
  ip, kp, prevs := strlen(sp), 1, sp;
  while ([p1]) {
    cur := sel(B, kp);
    if ([p2]) {
      sp := [e1];
    } else {
      sp := [e2];
    }
    jp := 0;
    while (jp < strlen(sp)) {
      Ap := upd(Ap, ip + jp, char_at(sp, jp));
      jp := jp + 1;
    }
    Dp := [e3];
    pp := [e4];
    ip, kp, prevs := [e5], kp + 1, sp;
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program lzw_inv [array B; int k; strarray Dp; int pp; array Ap; int ip;
                 int kp; int cur; int jp; str sp; str prevs] {
  Dp := upd(Dp, 0, single(0));
  Dp := upd(Dp, 1, single(1));
  pp := 2;
  sp := sel(Dp, sel(B, 0));
  jp := 0;
  while (jp < strlen(sp)) {
    Ap := upd(Ap, jp, char_at(sp, jp));
    jp := jp + 1;
  }
  ip, kp, prevs := strlen(sp), 1, sp;
  while (kp < k) {
    cur := sel(B, kp);
    if (cur < pp) {
      sp := sel(Dp, cur);
    } else {
      sp := append(prevs, first(prevs));
    }
    jp := 0;
    while (jp < strlen(sp)) {
      Ap := upd(Ap, ip + jp, char_at(sp, jp));
      jp := jp + 1;
    }
    Dp := upd(Dp, pp, append(prevs, first(sp)));
    pp := pp + 1;
    ip, kp, prevs := ip + strlen(sp), kp + 1, sp;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "pp + 1", "pp - 1", "ip + strlen(sp)", "ip + 1", "kp + 1",
    "sel(Dp, cur)", "append(prevs, first(prevs))", "append(prevs, first(sp))",
    "append(sp, first(prevs))",
    "upd(Dp, pp, append(prevs, first(sp)))",
    "upd(Dp, pp, append(sp, first(prevs)))",
    "upd(Dp, cur, append(prevs, first(sp)))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "kp < k", "cur < pp", "cur >= pp", "kp < pp",
])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(1, 7)
    return {"A": [rng.randint(0, 1) for _ in range(n)], "n": n}


INITIAL_INPUTS = tuple(
    {"A": list(a), "n": len(a)}
    for a in ([0], [1], [0, 0], [0, 1], [0, 0, 0],  # K-omega-K at [0,0,0]
              [0, 1, 0, 1, 0], [1, 1, 0, 1, 1, 0], [0, 0, 1, 0, 0, 1, 0])
)

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("A", "Ap", "n"),),
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="lzw",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        externs=STRING_EXTERNS,
        axioms=string_axioms(),
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        input_axioms=(array_range_axiom("A", "n", 0, 2),),
        precondition=array_range_precondition("A", "n", 0, 2),
        expr_overrides={
            "e1": tuple(parse_expr(t) for t in [
                "sel(Dp, cur)", "append(prevs, first(prevs))",
                "append(prevs, first(sp))"]),
            "e2": tuple(parse_expr(t) for t in [
                "append(prevs, first(prevs))", "sel(Dp, cur)",
                "append(sp, first(prevs))"]),
            "e4": tuple(parse_expr(t) for t in ["pp + 1", "pp - 1", "pp"]),
            "e5": tuple(parse_expr(t) for t in [
                "ip + strlen(sp)", "ip + 1", "ip + strlen(prevs)"]),
        },
        pred_overrides={
            "p1": tuple(parse_pred(t) for t in ["kp < k", "kp < pp"]),
            "p2": tuple(parse_pred(t) for t in ["cur < pp", "cur >= pp", "kp < k"]),
        },
        max_pred_conj=1,
        max_unroll=3,
        bmc_unroll=10,
        bmc_array_size=4,
        bmc_value_range=(0, 1),
    )
    return Benchmark(
        name="lzw",
        group="compressor",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=25, mined=20, subset=15, modifications=4, inverse_loc=20, axioms=15,
            search_space_log2=31, num_solutions=2, iterations=4,
            time_seconds=150.42, sat_size=373, tests=3,
        ),
        notes="Dictionary rebuilt from the code stream; includes the "
              "K-omega-K corner case.",
    )
