"""Benchmark: Permute count — Dijkstra's program-inversion example.

From Dijkstra's original note (EWD671): given a permutation, compute for
each element the number of *later, smaller* elements (an inversion
table / Lehmer code); the inverse reconstructs the permutation from the
counts.  Dijkstra derived the inverse by hand — PINS synthesizes it from
the template.

The reconstruction works right-to-left: seed position ``i`` with its
count, then bump every already-placed later element that is >= it.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from ..smt import (
    ARR,
    INT,
    Axiom,
    mk_and,
    mk_eq,
    mk_int,
    mk_le,
    mk_lt,
    mk_not,
    mk_or,
    mk_select,
    mk_var,
)
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program permute_count [array A; int n; array C; int i; int j; int r] {
  in(A, n);
  assume(n >= 0);
  i := 0;
  while (i < n) {
    r := 0;
    j := i + 1;
    while (j < n) {
      if (sel(A, j) < sel(A, i)) {
        r := r + 1;
      }
      j := j + 1;
    }
    C := upd(C, i, r);
    i := i + 1;
  }
  out(C, n);
}
""")

INVERSE_TEMPLATE = parse_program("""
program permute_count_inv [array C; int n; array Ap; int ip; int jp] {
  ip := [e1];
  while ([p1]) {
    Ap := [e2];
    jp := [e3];
    while ([p2]) {
      if ([p3]) {
        Ap := [e4];
      }
      jp := [e5];
    }
    ip := [e6];
  }
  out(Ap, n);
}
""")

GROUND_TRUTH = parse_program("""
program permute_count_inv [array C; int n; array Ap; int ip; int jp] {
  ip := n - 1;
  while (ip >= 0) {
    Ap := upd(Ap, ip, sel(C, ip));
    jp := ip + 1;
    while (jp < n) {
      if (sel(Ap, jp) >= sel(Ap, ip)) {
        Ap := upd(Ap, jp, sel(Ap, jp) + 1);
      }
      jp := jp + 1;
    }
    ip := ip - 1;
  }
  out(Ap, n);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "n - 1", "ip + 1", "ip - 1", "jp + 1", "jp - 1",
    "upd(Ap, ip, sel(C, ip))", "upd(Ap, jp, sel(Ap, jp) + 1)",
    "upd(Ap, jp, sel(Ap, jp) - 1)",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip >= 0", "ip < n", "jp < n", "sel(Ap, jp) >= sel(Ap, ip)",
    "sel(Ap, jp) < sel(Ap, ip)",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "n"),),
    array_pairs=(("A", "Ap", "n"),),
)


def permutation_axioms():
    """The precondition "A is a permutation of 0..n-1" as solver axioms:
    in-range values plus pairwise distinctness (distinct + bounded implies
    permutation by pigeonhole, which is all a *model* needs to satisfy)."""
    a0 = mk_var("A#0", ARR)
    n0 = mk_var("n#0", INT)
    j = mk_var("?j", INT)
    k = mk_var("?k", INT)
    sel_j = mk_select(a0, j)
    sel_k = mk_select(a0, k)
    in_range = Axiom(
        name="perm_in_range",
        variables=(k,),
        body=mk_or(
            mk_not(mk_le(mk_int(0), k)), mk_not(mk_lt(k, n0)),
            mk_and(mk_le(mk_int(0), sel_k), mk_lt(sel_k, n0)),
        ),
        patterns=(sel_k,),
    )
    distinct = Axiom(
        name="perm_distinct",
        variables=(j, k),
        body=mk_or(
            mk_not(mk_le(mk_int(0), j)), mk_not(mk_lt(j, n0)),
            mk_not(mk_le(mk_int(0), k)), mk_not(mk_lt(k, n0)),
            mk_eq(j, k),
            mk_not(mk_eq(sel_j, sel_k)),
        ),
        patterns=((sel_j, sel_k),),
    )
    return (in_range, distinct)


def is_permutation(inputs) -> bool:
    n = inputs.get("n", 0)
    arr = inputs.get("A")
    values = []
    for i in range(n):
        values.append(arr.get(i) if hasattr(arr, "get") else arr[i])
    return sorted(values) == list(range(n))


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    perm = list(range(n))
    rng.shuffle(perm)
    return {"A": perm, "n": n}


INITIAL_INPUTS = (
    {"A": [], "n": 0},
    {"A": [0], "n": 1},
    {"A": [1, 0], "n": 2},
    {"A": [0, 1], "n": 2},
    {"A": [2, 0, 1], "n": 3},
    {"A": [1, 2, 0], "n": 3},
    {"A": [3, 1, 0, 2], "n": 4},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="permute_count",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        input_axioms=permutation_axioms(),
        precondition=is_permutation,
        expr_overrides={
            "e1": tuple(parse_expr(t) for t in ["0", "n - 1", "1"]),
            "e2": tuple(parse_expr(t) for t in [
                "upd(Ap, ip, sel(C, ip))", "upd(Ap, jp, sel(Ap, jp) + 1)"]),
            "e4": tuple(parse_expr(t) for t in [
                "upd(Ap, jp, sel(Ap, jp) + 1)", "upd(Ap, jp, sel(Ap, jp) - 1)",
                "upd(Ap, ip, sel(C, ip))"]),
        },
        pred_overrides={
            "p1": tuple(parse_pred(t) for t in ["ip >= 0", "ip < n", "0 < ip"]),
            "p3": tuple(parse_pred(t) for t in [
                "sel(Ap, jp) >= sel(Ap, ip)", "sel(Ap, jp) < sel(Ap, ip)"]),
        },
        max_pred_conj=1,
        max_unroll=4,
        bmc_unroll=10,
        bmc_array_size=4,
        bmc_value_range=(0, 3),
    )
    return Benchmark(
        name="permute_count",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        paper=PaperNumbers(
            loc=11, mined=12, subset=7, modifications=2, inverse_loc=10, axioms=0,
            search_space_log2=3, num_solutions=1, iterations=1,
            time_seconds=8.44, sat_size=4, tests=1,
            cbmc_seconds=2.0, sketch_seconds=None,
        ),
    )
