"""Benchmark: run-length encoding into a separate output array.

The variant of Figure 1 that writes compressed symbols to ``B`` instead
of compressing ``A`` in place (Table 1 row "Run length").
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program runlength [array A; int n; array B; array N; int m; int i; int r] {
  in(A, n);
  assume(n >= 0);
  i, m := 0, 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && sel(A, i) = sel(A, i + 1)) {
      r, i := r + 1, i + 1;
    }
    B := upd(B, m, sel(A, i));
    N := upd(N, m, r);
    m, i := m + 1, i + 1;
  }
  out(B, N, m);
}
""")

INVERSE_TEMPLATE = parse_program("""
program runlength_inv [array B; array N; int m; array Ap; int ip; int mp; int rp] {
  ip, mp := [e1], [e2];
  while ([p1]) {
    rp := [e3];
    while ([p2]) {
      rp, ip, Ap := [e4], [e5], [e6];
    }
    mp := [e7];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program runlength_inv [array B; array N; int m; array Ap; int ip; int mp; int rp] {
  ip, mp := 0, 0;
  while (mp < m) {
    rp := sel(N, mp);
    while (rp > 0) {
      rp, ip, Ap := rp - 1, ip + 1, upd(Ap, ip, sel(B, mp));
    }
    mp := mp + 1;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "mp + 1", "mp - 1", "rp + 1", "rp - 1", "ip + 1", "ip - 1",
    "upd(Ap, mp, sel(B, ip))", "upd(Ap, ip, sel(B, mp))", "sel(N, mp)",
])

PHI_P = tuple(parse_pred(text) for text in [
    "sel(Ap, ip) = sel(Ap, ip + 1)", "mp < m", "rp > 0",
])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 5)
    return {"A": [rng.randint(1, 3) for _ in range(n)], "n": n}


INITIAL_INPUTS = tuple(
    {"A": list(a), "n": len(a)}
    for a in ([], [1], [1, 1], [1, 2], [2, 2, 2], [1, 1, 2], [1, 2, 2], [3, 1, 1, 3])
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="runlength",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=10,
        bmc_array_size=4,
        bmc_value_range=(1, 2),
    )
    return Benchmark(
        name="runlength",
        group="compressor",
        task=task,
        ground_truth=GROUND_TRUTH,
        paper=PaperNumbers(
            loc=12, mined=16, subset=10, modifications=0, inverse_loc=10, axioms=0,
            search_space_log2=25, num_solutions=1, iterations=7,
            time_seconds=26.19, sat_size=668, tests=2,
            cbmc_seconds=0.62, sketch_seconds=30,
        ),
    )
