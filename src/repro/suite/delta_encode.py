"""Benchmark: delta encoding — store successive differences.

Extension benchmark (not in the paper's Table 1): the forward program
replaces each element by its difference with the predecessor; the
inverse is the prefix-sum decoder.  The interesting synthesis wrinkle is
the running accumulator: the decoder must re-accumulate *its own*
output, not the encoder's state.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program delta_encode [array A; int n; array D; int i; int prev] {
  in(A, n);
  assume(n >= 0);
  i, prev := 0, 0;
  while (i < n) {
    D := upd(D, i, sel(A, i) - prev);
    prev := sel(A, i);
    i := i + 1;
  }
  out(D, n);
}
""")

INVERSE_TEMPLATE = parse_program("""
program delta_encode_inv [array D; int n; array Ap; int ip; int acc] {
  ip, acc := [e1], [e2];
  while ([p1]) {
    acc := [e3];
    Ap := [e4];
    ip := [e5];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program delta_encode_inv [array D; int n; array Ap; int ip; int acc] {
  ip, acc := 0, 0;
  while (ip < n) {
    acc := acc + sel(D, ip);
    Ap := upd(Ap, ip, acc);
    ip := ip + 1;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 1", "ip - 1",
    "acc + sel(D, ip)", "acc - sel(D, ip)",
    "upd(Ap, ip, acc)", "upd(Ap, ip, sel(D, ip))",
    "upd(Ap, ip, acc + sel(D, ip))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ip < n", "ip > n", "0 < ip",
])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 4)
    return {"A": [rng.randint(-4, 4) for _ in range(n)], "n": n}


INITIAL_INPUTS = tuple(
    {"A": list(a), "n": len(a)}
    for a in ([], [3], [1, 1], [2, 5, 5], [4, 1, 7, 7])
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="delta_encode",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 3),
    )
    return Benchmark(
        name="delta_encode",
        group="compressor",
        task=task,
        ground_truth=GROUND_TRUTH,
        in_paper=False,
        paper=PaperNumbers(),
        notes="Extension benchmark: prefix-sum decoder over an accumulator.",
    )
