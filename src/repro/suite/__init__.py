"""The benchmark suite: the paper's 14 evaluation programs plus two
extension benchmarks (16 total).

``BENCHMARK_MODULES`` lists every registered program in the paper's
Table 1 order (extensions last); ``PAPER_BENCHMARKS`` is the subset with
published Table 1-3 rows.  ``all_benchmarks()`` returns the registry in
that deterministic order.  Each module exposes ``benchmark() ->
Benchmark``.
"""

from __future__ import annotations

from importlib import import_module
from typing import Dict, List

from .base import Benchmark, PaperNumbers
from .profiles import (BENCH_SETS, BenchProfile, bench_profile,
                       bench_set, resolved_budget)

PAPER_BENCHMARKS: List[str] = [
    "inplace_rl",
    "runlength",
    "lz77",
    "lzw",
    "base64",
    "uuencode",
    "pkt_wrapper",
    "serialize",
    "sumi",
    "vector_shift",
    "vector_scale",
    "vector_rotate",
    "permute_count",
    "lu_decomp",
]

EXTENSION_BENCHMARKS: List[str] = [
    "delta_encode",
    "vector_reverse",
]

BENCHMARK_MODULES: List[str] = PAPER_BENCHMARKS + EXTENSION_BENCHMARKS

_cache: Dict[str, Benchmark] = {}


def get_benchmark(name: str) -> Benchmark:
    """Load one benchmark by module name.

    Raises ``KeyError`` with the full list of registered names when the
    name is unknown, so CLI typos fail with something actionable.
    """
    if name not in BENCHMARK_MODULES:
        raise KeyError(
            f"unknown benchmark {name!r}; registered benchmarks are: "
            + ", ".join(BENCHMARK_MODULES))
    if name not in _cache:
        module = import_module(f".{name}", __package__)
        _cache[name] = module.benchmark()
    return _cache[name]


def all_benchmarks() -> Dict[str, Benchmark]:
    """All suite benchmarks, in registry (Table 1) order."""
    return {name: get_benchmark(name) for name in BENCHMARK_MODULES}


__all__ = ["Benchmark", "PaperNumbers", "BenchProfile",
           "BENCHMARK_MODULES", "PAPER_BENCHMARKS", "EXTENSION_BENCHMARKS",
           "BENCH_SETS", "get_benchmark", "all_benchmarks",
           "bench_profile", "bench_set", "resolved_budget"]
