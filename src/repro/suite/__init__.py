"""The 14-benchmark suite from the paper's evaluation (Section 4).

``all_benchmarks()`` returns the registry in the paper's Table 1 order.
Each module exposes ``benchmark() -> Benchmark``.
"""

from __future__ import annotations

from importlib import import_module
from typing import Dict, List

from .base import Benchmark, PaperNumbers

BENCHMARK_MODULES: List[str] = [
    "inplace_rl",
    "runlength",
    "lz77",
    "lzw",
    "base64",
    "uuencode",
    "pkt_wrapper",
    "serialize",
    "sumi",
    "vector_shift",
    "vector_scale",
    "vector_rotate",
    "permute_count",
    "lu_decomp",
]

_cache: Dict[str, Benchmark] = {}


def get_benchmark(name: str) -> Benchmark:
    """Load one benchmark by module name."""
    if name not in _cache:
        module = import_module(f".{name}", __package__)
        _cache[name] = module.benchmark()
    return _cache[name]


def all_benchmarks() -> Dict[str, Benchmark]:
    """All suite benchmarks, in Table 1 order."""
    return {name: get_benchmark(name) for name in BENCHMARK_MODULES}


__all__ = ["Benchmark", "PaperNumbers", "BENCHMARK_MODULES",
           "get_benchmark", "all_benchmarks"]
