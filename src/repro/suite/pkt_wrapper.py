"""Benchmark: Pkt wrapper — wrap fields into a length-prefixed packet.

The forward program walks the fields of a data object (field lengths in
``F``, payload bytes concatenated in ``B``) and emits, per field, a
preamble byte holding the field length followed by the field's bytes.
The inverse re-splits the packet into lengths and bytes.

The paper models the field accessors as external functions with two
axioms; with the object flattened into the ``F``/``B`` arrays the
accessor axioms become ordinary array reads, which keeps this benchmark
in the decidable core (DESIGN.md documents the substitution).
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers
from .common import array_range_axiom, array_range_precondition

PROGRAM = parse_program("""
program pkt_wrapper [array F; array B; int nf; array P; int k; int i; int j; int b] {
  in(F, B, nf);
  assume(nf >= 0);
  k, i, b := 0, 0, 0;
  while (i < nf) {
    P := upd(P, k, sel(F, i));
    k := k + 1;
    j := 0;
    while (j < sel(F, i)) {
      P := upd(P, k, sel(B, b));
      k, b, j := k + 1, b + 1, j + 1;
    }
    i := i + 1;
  }
  out(P, k, nf);
}
""")

INVERSE_TEMPLATE = parse_program("""
program pkt_wrapper_inv [array P; int k; int nf; array Fp; array Bp;
                         int ipp; int jp; int kp; int bp] {
  kp, ipp, bp := [e1], [e2], [e3];
  while ([p1]) {
    Fp := [e4];
    kp := kp + 1;
    jp := [e5];
    while ([p2]) {
      Bp := [e6];
      kp, bp, jp := [e7], [e8], [e9];
    }
    ipp := ipp + 1;
  }
  out(Fp, Bp, ipp, bp);
}
""")

GROUND_TRUTH = parse_program("""
program pkt_wrapper_inv [array P; int k; int nf; array Fp; array Bp;
                         int ipp; int jp; int kp; int bp] {
  kp, ipp, bp := 0, 0, 0;
  while (ipp < nf) {
    Fp := upd(Fp, ipp, sel(P, kp));
    kp := kp + 1;
    jp := 0;
    while (jp < sel(Fp, ipp)) {
      Bp := upd(Bp, bp, sel(P, kp));
      kp, bp, jp := kp + 1, bp + 1, jp + 1;
    }
    ipp := ipp + 1;
  }
  out(Fp, Bp, ipp, bp);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "kp + 1", "kp - 1", "bp + 1", "jp + 1",
    "upd(Fp, ipp, sel(P, kp))", "upd(Fp, kp, sel(P, ipp))",
    "upd(Bp, bp, sel(P, kp))", "upd(Bp, kp, sel(P, bp))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "ipp < nf", "kp < k", "jp < sel(Fp, ipp)", "jp < sel(P, kp)", "0 < jp",
])

SPEC = InversionSpec(
    scalar_pairs=(("nf", "ipp"), ("@b", "bp")),
    array_pairs=(("F", "Fp", "nf"), ("B", "Bp", "@b")),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    nf = rng.randint(0, 3)
    lengths = [rng.randint(0, 2) for _ in range(nf)]
    nb = sum(lengths)
    return {
        "F": lengths,
        "B": [rng.randint(1, 5) for _ in range(nb)],
        "nf": nf,
    }


INITIAL_INPUTS = (
    {"F": [], "B": [], "nf": 0},
    {"F": [1], "B": [7], "nf": 1},
    {"F": [0], "B": [], "nf": 1},
    {"F": [2, 1], "B": [4, 5, 6], "nf": 2},
    {"F": [1, 0, 2], "B": [9, 8, 7], "nf": 3},
)


def _consistent(inputs: Dict[str, Any]) -> bool:
    nf = inputs.get("nf", 0)
    arr = inputs.get("F")
    get = arr.get if hasattr(arr, "get") else lambda i: arr[i]
    try:
        lengths = [get(i) for i in range(nf)]
    except (TypeError, IndexError):
        return False
    return nf >= 0 and all(0 <= x <= 8 for x in lengths)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="pkt_wrapper",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        input_axioms=(array_range_axiom("F", "nf", 0, 9),),
        precondition=_consistent,
        expr_overrides={
            "e5": tuple(parse_expr(t) for t in ["0", "1"]),
        },
        max_pred_conj=1,
        max_unroll=3,
        bmc_unroll=8,
        bmc_array_size=2,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="pkt_wrapper",
        group="encoder",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=10, mined=2, subset=12, modifications=7, inverse_loc=16, axioms=2,
            search_space_log2=20, num_solutions=1, iterations=6,
            time_seconds=132.32, sat_size=2161, tests=1,
        ),
        notes="Object fields flattened to length/byte arrays; the paper's "
              "accessor axioms become array reads.",
    )
