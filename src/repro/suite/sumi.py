"""Benchmark: Σi — iterative sum (paper Table 1 row "Σi").

The forward program adds ``i`` to a running sum in the ``i``-th iteration;
the synthesized inverse recovers ``n`` from ``s`` by iteratively
*subtracting* (the paper highlights that PINS finds this rather than
solving the quadratic ``n(n+1)/2``).
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.task import SynthesisTask
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program sumi [int n; int s; int i] {
  in(n);
  assume(n >= 0);
  s, i := 0, 0;
  while (i < n) {
    i := i + 1;
    s := s + i;
  }
  out(s);
}
""")

INVERSE_TEMPLATE = parse_program("""
program sumi_inv [int s; int ip; int sp] {
  ip, sp := [e1], [e2];
  while ([p1]) {
    ip := [e3];
    sp := [e4];
  }
  out(ip);
}
""")

GROUND_TRUTH = parse_program("""
program sumi_inv [int s; int ip; int sp] {
  ip, sp := 0, s;
  while (sp > 0) {
    ip := ip + 1;
    sp := sp - ip;
  }
  out(ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "s", "ip + 1", "ip - 1", "sp - ip", "sp + ip", "sp - 1",
])

PHI_P = tuple(parse_pred(text) for text in [
    "sp > 0", "ip > 0", "sp < 0",
])

INVARIANTS = tuple(parse_pred(text) for text in ["ip >= 0"])


def input_gen(rng: random.Random) -> Dict[str, Any]:
    return {"n": rng.randint(0, 6)}


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="sumi",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        input_gen=input_gen,
        initial_inputs=tuple({"n": k} for k in range(6)),
        pred_overrides={"inv!loop1": INVARIANTS},
        max_pred_conj=2,
        max_unroll=4,
        bmc_unroll=10,
        bmc_array_size=0,
        bmc_value_range=(0, 8),
    )
    return Benchmark(
        name="sumi",
        group="arithmetic",
        task=task,
        ground_truth=GROUND_TRUTH,
        paper=PaperNumbers(
            loc=5, mined=8, subset=6, modifications=2, inverse_loc=5, axioms=0,
            search_space_log2=15, num_solutions=1, iterations=4,
            time_seconds=1.07, sat_size=51, tests=2,
            cbmc_seconds=1.06, sketch_seconds=None,
        ),
        notes="Inverse subtracts i iteratively instead of solving n(n+1)/2.",
    )
