"""Benchmark bundles for the 16-program suite (the paper's 14, Tables
1-3, plus two registered extensions marked ``in_paper=False``).

Each benchmark carries:

* a :class:`~repro.pins.task.SynthesisTask` (program, inverse template,
  candidate sets, axioms, input generator);
* the *ground-truth* inverse (hand-written, guarded, hole-free) used as a
  test oracle and as the target the synthesized program must match
  behaviourally;
* the paper's Table-1/2/3 figures for that row, so EXPERIMENTS.md can
  print paper-vs-measured side by side;
* template-mining metadata: how large the mined candidate set was, the
  subset chosen, and how many manual modifications the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..lang.ast import Program
from ..pins.task import SynthesisTask


@dataclass
class PaperNumbers:
    """The published row for this benchmark (for shape comparison)."""

    loc: int = 0
    mined: int = 0
    subset: int = 0
    modifications: int = 0
    inverse_loc: int = 0
    axioms: int = 0
    search_space_log2: float = 0.0
    num_solutions: int = 1
    iterations: int = 0
    time_seconds: float = 0.0
    sat_size: int = 0
    tests: int = 0
    manual_ok: str = "ok"
    cbmc_seconds: Optional[float] = None
    sketch_seconds: Optional[float] = None


@dataclass
class Benchmark:
    """A suite entry: task + oracle + paper metadata."""

    name: str
    group: str  # 'compressor' | 'encoder' | 'arithmetic'
    task: SynthesisTask
    ground_truth: Program
    paper: PaperNumbers = field(default_factory=PaperNumbers)
    uses_axioms: bool = False
    in_paper: bool = True
    """False for extension benchmarks added beyond the paper's Table 1;
    their :attr:`paper` numbers are all-zero placeholders."""
    notes: str = ""

    @property
    def loc(self) -> int:
        from ..lang.transform import loc_of

        return loc_of(self.task.program.body)

    @property
    def inverse_loc(self) -> int:
        from ..lang.transform import loc_of

        return loc_of(self.task.inverse.body)
