"""Bench-harness profiles for every registered suite program.

The full-suite matrix (Table 2 scale-out) needs per-program knobs that
don't belong on :class:`~repro.suite.base.Benchmark` itself — they
describe how the *harness* should drive a program, not what the program
is:

``set``
    ``"fast"`` programs finish in seconds at the default bench config
    and run on every CI push; ``"slow"`` ones take minutes (or only
    terminate under a budget) and run in the nightly/dispatch matrix
    job.

``budget``
    Default :mod:`repro.resil` budget spec applied by
    ``scripts/run_bench.py`` when the user doesn't pass ``--budget``.
    Budgets here are *deterministic* (SMT-query/path counts, plus a
    generous wall backstop) so the cut point — and therefore the
    inverse digest — is machine-independent.

``digest_stable``
    Whether the program's inverse digest is reproducible across runs at
    the profile config, i.e. whether ``--check-inverses-against`` should
    gate it.  Only wall-budget-truncated programs are unstable.

``queries_slack``
    Extra fractional headroom this program gets from
    ``--check-queries-against`` on top of the CLI-wide ``--queries-slack``
    (programs whose query counts wobble under budget truncation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class BenchProfile:
    set: str = "fast"  # 'fast' | 'slow'
    budget: Optional[str] = None
    digest_stable: bool = True
    queries_slack: float = 0.0


# Budgets were tuned at the bench-harness defaults (m=10, iters=30,
# seed=1, serial): count budgets fire (or the program stabilizes) long
# before the wall backstop, so recorded digests are reproducible.
# Measured wall times in the comments are this-machine single-core.
PROFILES: Dict[str, BenchProfile] = {
    # compressors
    "inplace_rl": BenchProfile(  # stabilizes at 708 q, ~140 s
        set="slow", budget="smt=1500;wall=900"),
    "runlength": BenchProfile(  # stabilizes at 565 q, ~8 s
        set="fast", budget="smt=1500;wall=300"),
    "lz77": BenchProfile(  # stabilizes at 614 q, ~120 s
        set="slow", budget="smt=1500;wall=900"),
    "lzw": BenchProfile(  # stabilizes at 1215 q, ~25 min (replay
        # downgrades + round-trip refuter; budget is a backstop only)
        set="slow", budget="smt=8000;wall=2400", queries_slack=0.10),
    "delta_encode": BenchProfile(  # stabilizes at ~120 q, ~2 s
        set="fast", budget="smt=1500;wall=300"),
    # encoders
    "base64": BenchProfile(  # path budget fires, ~30 s
        set="slow", budget="smt=120;paths=4;wall=600", queries_slack=0.10),
    "uuencode": BenchProfile(  # query budget fires, ~4 s
        set="fast", budget="smt=250;paths=6;wall=300", queries_slack=0.10),
    "pkt_wrapper": BenchProfile(  # query budget fires, ~2 s
        set="fast", budget="smt=300;paths=8;wall=300", queries_slack=0.10),
    "serialize": BenchProfile(  # stabilizes at 223 q, ~1 s
        set="fast", budget="smt=1500;wall=300"),
    # arithmetic
    "sumi": BenchProfile(  # stabilizes at ~75 q, ~1 s
        set="fast", budget="smt=1500;wall=300"),
    "vector_shift": BenchProfile(  # stabilizes at 58 q, ~1 s
        set="fast", budget="smt=1500;wall=300"),
    "vector_scale": BenchProfile(  # stabilizes at 153 q, ~1 s
        set="fast", budget="smt=1500;wall=300"),
    "vector_rotate": BenchProfile(  # stabilizes at 50 q, ~1 s
        set="fast", budget="smt=1500;wall=300"),
    "vector_reverse": BenchProfile(  # stabilizes at 234 q, ~3 s
        set="fast", budget="smt=1500;wall=300"),
    "permute_count": BenchProfile(  # query budget fires, ~13 s
        set="slow", budget="smt=300;paths=8;wall=600", queries_slack=0.10),
    "lu_decomp": BenchProfile(  # paths exhaust at 468 q / 5 paths, ~8 s
        set="fast", budget="smt=1000;paths=12;wall=300"),
}

BENCH_SETS = ("fast", "slow", "all")


def bench_profile(name: str) -> BenchProfile:
    """Profile for one registered program (default profile if unlisted)."""
    return PROFILES.get(name, BenchProfile())


def resolved_budget(name: str, regions: bool = True) -> Optional[str]:
    """The profile budget with an inferred ``paths=`` safety net.

    When the region analysis is on and the hand profile has no path
    budget, the statically inferred syntactic path ceiling (see
    :func:`repro.analysis.regions.inferred_path_budget`) is appended as
    ``paths=<ceiling>``.  The executor returns each syntactic path at
    most once per run, so a budget at exactly the ceiling can never
    fire — appending it cannot change any trajectory or digest; it only
    turns a hypothetical runaway enumeration into a clean
    ``budget_exhausted``.  Hand-tuned ``paths=`` values always win (and
    are linted against the ceiling by suitelint's
    ``stale-profile-budget`` rule).  Ceilings above
    :data:`repro.analysis.regions.PATH_COUNT_CAP` are left off — a
    six-digit never-firing limit is noise.
    """
    profile = bench_profile(name)
    spec = profile.budget
    if not regions or spec is None or "paths" in spec:
        return spec
    from ..analysis.regions import PATH_COUNT_CAP, inferred_path_budget

    ceiling = inferred_path_budget(name)
    if ceiling is None or ceiling > PATH_COUNT_CAP:
        return spec
    return f"{spec};paths={ceiling}"


def bench_set(which: str) -> List[str]:
    """Registry-ordered program names in the given set."""
    from . import BENCHMARK_MODULES

    if which not in BENCH_SETS:
        raise KeyError(
            f"unknown bench set {which!r}; valid sets: {', '.join(BENCH_SETS)}")
    if which == "all":
        return list(BENCHMARK_MODULES)
    return [n for n in BENCHMARK_MODULES if bench_profile(n).set == which]
