"""Shared helpers for suite benchmarks (input-range axioms etc.)."""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..smt import ARR, INT, Axiom, mk_and, mk_int, mk_le, mk_lt, mk_not, mk_or, mk_select, mk_var


def array_range_axiom(array: str, length: str, lo: int, hi: int,
                      name: str = "") -> Axiom:
    """``forall k. 0 <= k < length  =>  lo <= array[k] < hi`` at version 0.

    The symbolic form of byte-range (or digit-range) preconditions that
    the template language's ``assume`` cannot quantify over.
    """
    a0 = mk_var(f"{array}#0", ARR)
    n0 = mk_var(f"{length}#0", INT)
    k = mk_var("?k", INT)
    sel_k = mk_select(a0, k)
    return Axiom(
        name=name or f"range_{array}_{lo}_{hi}",
        variables=(k,),
        body=mk_or(
            mk_not(mk_le(mk_int(0), k)), mk_not(mk_lt(k, n0)),
            mk_and(mk_le(mk_int(lo), sel_k), mk_lt(sel_k, mk_int(hi))),
        ),
        patterns=(sel_k,),
    )


def array_range_precondition(array: str, length: str, lo: int, hi: int
                             ) -> Callable[[Dict[str, Any]], bool]:
    """Concrete filter matching :func:`array_range_axiom`."""

    def check(inputs: Dict[str, Any]) -> bool:
        n = inputs.get(length, 0)
        arr = inputs.get(array)
        if arr is None or not isinstance(n, int) or n < 0:
            return False
        get = arr.get if hasattr(arr, "get") else lambda i: arr[i]
        try:
            return all(lo <= get(i) < hi for i in range(n))
        except (TypeError, IndexError):
            return False

    return check
