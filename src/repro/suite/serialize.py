"""Benchmark: Serialize — flatten a data object, rebuild it in reverse.

A toy serializer in the paper's spirit: it walks a linked data object
through external accessors (``value``/``next``) and writes a flattened
representation; the inverse re-builds the object with the constructor
``cons``.  The accessors and constructors are uninterpreted functions
related by axioms (the paper reports 6 axioms for this row).

Object equality is inherently inductive, so the identity on the object
output is checked concretely (``concrete_pairs``); first-order refutation
still prunes candidates through the flat-array part of the spec.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..axioms.registry import Extern, ExternRegistry
from ..lang.ast import Sort
from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from ..smt import INT, OBJ, Axiom, mk_app, mk_eq, mk_int, mk_var
from .base import Benchmark, PaperNumbers

NIL = ("nil",)


def _cons(v, r):
    return ("cons", v, r)


def _value(o):
    if not (isinstance(o, tuple) and o and o[0] == "cons"):
        raise ValueError(f"value() of non-cons {o!r}")
    return o[1]


def _next(o):
    if not (isinstance(o, tuple) and o and o[0] == "cons"):
        raise ValueError(f"next() of non-cons {o!r}")
    return o[2]


def _nil():
    return NIL


EXTERNS = ExternRegistry((
    Extern("value", (Sort.OBJ,), Sort.INT, _value),
    Extern("next", (Sort.OBJ,), Sort.OBJ, _next),
    Extern("cons", (Sort.INT, Sort.OBJ), Sort.OBJ, _cons),
    Extern("nil", (), Sort.OBJ, _nil),
))


def serialize_axioms():
    """Constructor/observer axioms: value/next of cons, cons-injectivity."""
    v = mk_var("?v", INT)
    r = mk_var("?r", OBJ)
    cons_vr = mk_app("cons", [v, r], OBJ)
    value_of_cons = Axiom(
        "value_cons", (v, r),
        mk_eq(mk_app("value", [cons_vr], INT), v), (cons_vr,))
    next_of_cons = Axiom(
        "next_cons", (v, r),
        mk_eq(mk_app("next", [cons_vr], OBJ), r), (cons_vr,))
    o = mk_var("?o", OBJ)
    recons = Axiom(
        "cons_eta", (o,),
        # o with a value/next observation is a cons cell again; stated as
        # an equation usable once both observers appear on o.
        mk_eq(mk_app("cons", [mk_app("value", [o], INT),
                              mk_app("next", [o], OBJ)], OBJ), o),
        (mk_app("next", [o], OBJ),))
    return (value_of_cons, next_of_cons, recons)


PROGRAM = parse_program("""
program serialize [obj root; int n; array B; int k; obj cur] {
  in(root, n);
  assume(n >= 0);
  cur := root;
  k := 0;
  while (k < n) {
    B := upd(B, k, value(cur));
    cur := next(cur);
    k := k + 1;
  }
  out(B, k);
}
""")

INVERSE_TEMPLATE = parse_program("""
program serialize_inv [array B; int k; obj op; int kp] {
  kp, op := [e1], [e2];
  while ([p1]) {
    kp := [e3];
    op := [e4];
  }
  out(op);
}
""")

GROUND_TRUTH = parse_program("""
program serialize_inv [array B; int k; obj op; int kp] {
  kp, op := k, nil();
  while (kp > 0) {
    kp := kp - 1;
    op := cons(sel(B, kp), op);
  }
  out(op);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "k", "k - 1", "kp - 1", "kp + 1",
    "nil()", "cons(sel(B, kp), op)", "cons(sel(B, kp - 1), op)",
    "cons(sel(B, 0), op)",
])

PHI_P = tuple(parse_pred(text) for text in [
    "kp > 0", "kp < k", "kp > 1",
])

SPEC = InversionSpec(
    concrete_pairs=(("root", "op"),),
)


def _make_list(values):
    obj = NIL
    for v in reversed(values):
        obj = _cons(v, obj)
    return obj


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = rng.randint(0, 5)
    values = [rng.randint(0, 4) for _ in range(n)]
    return {"root": _make_list(values), "n": n}


INITIAL_INPUTS = tuple(
    {"root": _make_list(vs), "n": len(vs)}
    for vs in ([], [3], [1, 2], [2, 1], [1, 2, 3], [4, 0, 4, 1])
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="serialize",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        externs=EXTERNS,
        axioms=serialize_axioms(),
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        max_pred_conj=1,
        max_unroll=4,
        bmc_unroll=8,
        bmc_array_size=3,
        bmc_value_range=(0, 2),
    )
    return Benchmark(
        name="serialize",
        group="encoder",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=8, mined=8, subset=8, modifications=1, inverse_loc=8, axioms=6,
            search_space_log2=11, num_solutions=1, iterations=14,
            time_seconds=55.33, sat_size=69, tests=5,
        ),
    )
