"""Benchmark: Base64 — binary bytes to printable 6-bit characters.

Every 3 input bytes become 4 six-bit output characters.  The bit-fiddling
(shifts and masks) appears as division/modulo by powers of two, which the
solver linearizes exactly (``a = c*q + r /\\ 0 <= r < c``) — our analogue
of the paper's three Base64 axioms.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..lang.parser import parse_expr, parse_pred, parse_program
from ..pins.spec import InversionSpec
from ..pins.task import SynthesisTask
from .common import array_range_axiom, array_range_precondition
from .base import Benchmark, PaperNumbers

PROGRAM = parse_program("""
program base64 [array A; int n; array B; int k; int i] {
  in(A, n);
  assume(n >= 0);
  assume(n % 3 = 0);
  i, k := 0, 0;
  while (i < n) {
    B := upd(B, k, sel(A, i) / 4);
    B := upd(B, k + 1, (sel(A, i) % 4) * 16 + sel(A, i + 1) / 16);
    B := upd(B, k + 2, (sel(A, i + 1) % 16) * 4 + sel(A, i + 2) / 64);
    B := upd(B, k + 3, sel(A, i + 2) % 64);
    i, k := i + 3, k + 4;
  }
  out(B, k, n);
}
""")

INVERSE_TEMPLATE = parse_program("""
program base64_inv [array B; int k; int n; array Ap; int ip; int kp] {
  ip, kp := [e1], [e2];
  while ([p1]) {
    Ap := [e3];
    Ap := [e4];
    Ap := [e5];
    ip, kp := [e6], [e7];
  }
  out(Ap, ip);
}
""")

GROUND_TRUTH = parse_program("""
program base64_inv [array B; int k; int n; array Ap; int ip; int kp] {
  ip, kp := 0, 0;
  while (kp < k) {
    Ap := upd(Ap, ip, sel(B, kp) * 4 + sel(B, kp + 1) / 16);
    Ap := upd(Ap, ip + 1, (sel(B, kp + 1) % 16) * 16 + sel(B, kp + 2) / 4);
    Ap := upd(Ap, ip + 2, (sel(B, kp + 2) % 4) * 64 + sel(B, kp + 3));
    ip, kp := ip + 3, kp + 4;
  }
  out(Ap, ip);
}
""")

PHI_E = tuple(parse_expr(text) for text in [
    "0", "1", "ip + 3", "kp + 4", "ip + 4", "kp + 3",
    "upd(Ap, ip, sel(B, kp) * 4 + sel(B, kp + 1) / 16)",
    "upd(Ap, ip + 1, (sel(B, kp + 1) % 16) * 16 + sel(B, kp + 2) / 4)",
    "upd(Ap, ip + 2, (sel(B, kp + 2) % 4) * 64 + sel(B, kp + 3))",
    "upd(Ap, ip, sel(B, kp) * 4 + sel(B, kp + 1) % 16)",
    "upd(Ap, ip + 2, (sel(B, kp + 2) % 4) * 16 + sel(B, kp + 3))",
])

PHI_P = tuple(parse_pred(text) for text in [
    "kp < k", "ip < k", "0 < kp",
])

SPEC = InversionSpec(
    scalar_pairs=(("n", "ip"),),
    array_pairs=(("A", "Ap", "n"),),
)


def input_gen(rng: random.Random) -> Dict[str, Any]:
    n = 3 * rng.randint(0, 2)
    return {"A": [rng.randint(0, 255) for _ in range(n)], "n": n}


INITIAL_INPUTS = (
    {"A": [], "n": 0},
    {"A": [0, 0, 1], "n": 3},
    {"A": [255, 0, 129], "n": 3},
    {"A": [1, 2, 3, 200, 100, 50], "n": 6},
)


def benchmark() -> Benchmark:
    task = SynthesisTask(
        name="base64",
        program=PROGRAM,
        inverse=INVERSE_TEMPLATE,
        phi_e=PHI_E,
        phi_p=PHI_P,
        spec=SPEC,
        input_gen=input_gen,
        initial_inputs=INITIAL_INPUTS,
        input_axioms=(array_range_axiom("A", "n", 0, 256),),
        precondition=array_range_precondition("A", "n", 0, 256),
        max_pred_conj=2,
        max_unroll=3,
        bmc_unroll=10,
        bmc_array_size=3,
        bmc_value_range=(0, 3),
    )
    return Benchmark(
        name="base64",
        group="encoder",
        task=task,
        ground_truth=GROUND_TRUTH,
        uses_axioms=True,
        paper=PaperNumbers(
            loc=22, mined=13, subset=7, modifications=1, inverse_loc=16, axioms=3,
            search_space_log2=37, num_solutions=4, iterations=12,
            time_seconds=1376.82, sat_size=598, tests=4,
        ),
        notes="Bit operations realized as div/mod by powers of two; the "
              "solver's exact div/mod linearization replaces the paper's "
              "three shift axioms.",
    )
