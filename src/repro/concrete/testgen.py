"""Concrete test-case generation from SMT models (Section 2.5).

When PINS finishes (or refutes a candidate), the solver's model of a path
condition restricted to version-0 input variables is a concrete input that
drives execution down that path.  The paper reports these tests in Table 3
and uses them for manual validation; here they also feed the fast
screening loop in ``pins.solve``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from ..lang.ast import Sort
from ..smt.models import Model
from ..smt.terms import Op, Term
from .values import ConcreteArray


def input_from_model(model: Model, input_vars: Mapping[str, Sort],
                     length_hints: Optional[Mapping[str, str]] = None,
                     ) -> Optional[Dict[str, Any]]:
    """Extract concrete input values for version-0 variables from a model.

    ``length_hints`` optionally maps array names to the length variable
    bounding them, so extracted arrays are densified up to that length.
    Returns None when some input has a sort we cannot concretize (e.g. an
    abstract string) — callers then fall back to generator-based tests.
    """
    length_hints = length_hints or {}
    out: Dict[str, Any] = {}
    int_values: Dict[str, int] = {}
    for term, value in model.int_values.items():
        if term.op == Op.VAR:
            int_values[term.payload] = value
    for name, sort in input_vars.items():
        versioned = f"{name}#0"
        if sort is Sort.INT:
            out[name] = int_values.get(versioned, 0)
        elif sort is Sort.ARRAY:
            contents: Dict[int, int] = {}
            for arr_term, arr_contents in model.arrays.items():
                if arr_term.op == Op.VAR and arr_term.payload == versioned:
                    contents = dict(arr_contents)
            out[name] = contents  # densified below once lengths are known
        else:
            return None
    for name, sort in input_vars.items():
        if sort is Sort.ARRAY:
            contents = out[name]
            length_var = length_hints.get(name)
            length = int_values.get(f"{length_var}#0", 0) if length_var else (
                max(contents) + 1 if contents else 0
            )
            length = max(length, (max(contents) + 1) if contents else 0)
            length = max(0, min(length, 64))
            arr = ConcreteArray(default=0)
            for i in range(length):
                arr = arr.set(i, contents.get(i, 0))
            for i, v in contents.items():
                arr = arr.set(i, v)
            out[name] = arr
    return out


def env_inputs_from_model(model: Model) -> Dict[str, Any]:
    """Concrete version-0 values for *all* variables in a model.

    Used to generalize refutations of termination constraints, whose
    universally quantified variables are arbitrary program states rather
    than program inputs.
    """
    out: Dict[str, Any] = {}
    for term, value in model.int_values.items():
        if term.op == Op.VAR and term.payload.endswith("#0"):
            out[term.payload[:-2]] = value
    for term, contents in model.arrays.items():
        if term.op == Op.VAR and term.payload.endswith("#0"):
            arr = ConcreteArray(default=0)
            for i, v in contents.items():
                arr = arr.set(i, v)
            out[term.payload[:-2]] = arr
    return out


def freeze_input(inputs: Mapping[str, Any]) -> tuple:
    """A hashable key for deduplicating test inputs."""
    parts = []
    for name in sorted(inputs):
        value = inputs[name]
        if isinstance(value, ConcreteArray):
            parts.append((name, tuple(sorted(value.contents.items())), value.default))
        elif isinstance(value, (list, tuple)):
            parts.append((name, tuple(value)))
        else:
            parts.append((name, value))
    return tuple(parts)
