"""A concrete interpreter for the template language.

Two entry points:

* :class:`Interpreter` runs *guarded* (hole-free) programs — originals and
  synthesized inverses — the way the paper's authors ran their C code.
* :func:`run_path` replays a ground *path condition* on concrete inputs:
  definitions execute in order, guards are tested, and the final versioned
  environment is returned (or ``None`` if some guard fails, i.e. the input
  does not follow the path).  This is the fast screening primitive used by
  ``pins.solve`` to reject candidate solutions with counterexample inputs
  before any SMT work.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Rational
from typing import Any, Dict, Mapping, Optional, Sequence

from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..lang import ast
from ..lang.ast import (
    ArithOp,
    Assign,
    Assume,
    CmpOp,
    Exit,
    GIf,
    GWhile,
    If,
    In,
    Out,
    Program,
    Seq,
    Skip,
    Sort,
    Stmt,
    While,
)
from ..lang.transform import unversioned_name
from ..symexec.paths import Def, Guard
from .values import ConcreteArray, coerce_input, default_value


class InterpError(Exception):
    """Base class for runtime failures."""


class AssumeFailed(InterpError):
    """An ``assume`` evaluated to false."""


class OutOfFuel(InterpError):
    """The step budget was exhausted (likely divergence)."""


class _ExitSignal(Exception):
    pass


class Interpreter:
    """Executes guarded, hole-free programs over concrete values."""

    def __init__(self, externs: ExternRegistry = EMPTY_REGISTRY, fuel: int = 200_000):
        self.externs = externs
        self.fuel = fuel

    # -- expressions ----------------------------------------------------------

    def eval_expr(self, e: ast.Expr, env: Dict[str, Any],
                  sorts: Mapping[str, Sort]) -> Any:
        if isinstance(e, ast.Var):
            if e.name not in env:
                base = unversioned_name(e.name)
                env[e.name] = default_value(sorts[base]) if base in sorts else 0
            return env[e.name]
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.BinOp):
            left = self.eval_expr(e.left, env, sorts)
            right = self.eval_expr(e.right, env, sorts)
            if not isinstance(left, Rational) or not isinstance(right, Rational):
                raise InterpError(f"arithmetic over non-numbers in {e}")
            if e.op is ArithOp.ADD:
                return left + right
            if e.op is ArithOp.SUB:
                return left - right
            if e.op is ArithOp.MUL:
                return left * right
            if e.op is ArithOp.DIV:
                if right == 0:
                    raise InterpError("division by zero")
                return math.floor(left / right)
            if e.op is ArithOp.MOD:
                if right == 0:
                    raise InterpError("modulo by zero")
                return left - right * math.floor(left / right)
            raise InterpError(f"unsupported operator {e.op}")
        if isinstance(e, ast.Select):
            arr = self.eval_expr(e.array, env, sorts)
            idx = self.eval_expr(e.index, env, sorts)
            if not isinstance(arr, ConcreteArray):
                raise InterpError(f"select from non-array value {arr!r}")
            if not isinstance(idx, int):
                raise InterpError(f"non-integer index {idx!r} in {e}")
            return arr.get(idx)
        if isinstance(e, ast.Update):
            arr = self.eval_expr(e.array, env, sorts)
            idx = self.eval_expr(e.index, env, sorts)
            val = self.eval_expr(e.value, env, sorts)
            if not isinstance(arr, ConcreteArray):
                raise InterpError(f"update of non-array value {arr!r}")
            if not isinstance(idx, int):
                raise InterpError(f"non-integer index {idx!r} in {e}")
            return arr.set(idx, val)
        if isinstance(e, ast.FunApp):
            fn = self.externs.get(e.name)
            args = [self.eval_expr(a, env, sorts) for a in e.args]
            try:
                return fn(*args)
            except InterpError:
                raise
            except Exception as exc:
                raise InterpError(f"external {e.name} failed: {exc}") from None
        if isinstance(e, (ast.Unknown, ast.HoleExpr)):
            raise InterpError(f"cannot concretely evaluate hole {e!r}")
        raise InterpError(f"unexpected expression {e!r}")

    def eval_pred(self, p: ast.Pred, env: Dict[str, Any],
                  sorts: Mapping[str, Sort]) -> bool:
        if isinstance(p, ast.BoolLit):
            return p.value
        if isinstance(p, ast.Cmp):
            left = self.eval_expr(p.left, env, sorts)
            right = self.eval_expr(p.right, env, sorts)
            if p.op is CmpOp.EQ:
                return left == right
            if p.op is CmpOp.NE:
                return left != right
            try:
                if p.op is CmpOp.LT:
                    return left < right
                if p.op is CmpOp.LE:
                    return left <= right
                if p.op is CmpOp.GT:
                    return left > right
                if p.op is CmpOp.GE:
                    return left >= right
            except TypeError as exc:
                raise InterpError(f"unorderable comparison {p}: {exc}") from None
        if isinstance(p, ast.And):
            return all(self.eval_pred(q, env, sorts) for q in p.parts)
        if isinstance(p, ast.Or):
            return any(self.eval_pred(q, env, sorts) for q in p.parts)
        if isinstance(p, ast.Not):
            return not self.eval_pred(p.pred, env, sorts)
        if isinstance(p, (ast.UnknownPred, ast.HolePred)):
            raise InterpError(f"cannot concretely evaluate hole {p!r}")
        raise InterpError(f"unexpected predicate {p!r}")

    # -- statements -------------------------------------------------------------

    def run(self, program: Program, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        """Run a program on inputs; returns the final environment."""
        env: Dict[str, Any] = {}
        for var, sort in program.decls.items():
            env[var] = default_value(sort)
        for var, value in inputs.items():
            sort = program.decls.get(var, Sort.INT)
            env[var] = coerce_input(value, sort)
        self._fuel_left = self.fuel
        try:
            self._exec(program.body, env, program.decls)
        except _ExitSignal:
            pass
        return env

    def _tick(self) -> None:
        self._fuel_left -= 1
        if self._fuel_left <= 0:
            raise OutOfFuel("interpreter fuel exhausted")

    def _exec(self, stmt: Stmt, env: Dict[str, Any], sorts: Mapping[str, Sort]) -> None:
        self._tick()
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                self._exec(s, env, sorts)
        elif isinstance(stmt, Assign):
            values = [self.eval_expr(e, env, sorts) for e in stmt.exprs]
            for target, value in zip(stmt.targets, values):
                env[target] = value
        elif isinstance(stmt, Assume):
            if not self.eval_pred(stmt.pred, env, sorts):
                raise AssumeFailed(f"assume({stmt.pred}) failed")
        elif isinstance(stmt, GIf):
            if self.eval_pred(stmt.cond, env, sorts):
                self._exec(stmt.then, env, sorts)
            else:
                self._exec(stmt.els, env, sorts)
        elif isinstance(stmt, GWhile):
            while self.eval_pred(stmt.cond, env, sorts):
                self._tick()
                self._exec(stmt.body, env, sorts)
        elif isinstance(stmt, Exit):
            raise _ExitSignal()
        elif isinstance(stmt, (In, Out, Skip)):
            pass
        elif isinstance(stmt, (If, While)):
            raise InterpError(
                "nondeterministic statement in concrete run; use guarded forms"
            )
        else:
            raise InterpError(f"unexpected statement {stmt!r}")


def run_path(items: Sequence[object], inputs: Mapping[str, Any],
             sorts: Mapping[str, Sort],
             externs: ExternRegistry = EMPTY_REGISTRY,
             expr_solution: Optional[Mapping[str, ast.Expr]] = None,
             pred_solution: Optional[Mapping[str, Sequence[ast.Pred]]] = None,
             ) -> Optional[Dict[str, Any]]:
    """Replay a path (:class:`Def`/:class:`Guard` items) on concrete inputs.

    ``inputs`` maps *base* variable names to values; they seed version 0.
    If the path contains holes, ``expr_solution``/``pred_solution`` resolve
    them first.  Returns the final versioned environment, or None if a
    guard fails (the input does not follow this path, so any path-relative
    property holds vacuously).
    """
    from ..lang.transform import substitute_expr, substitute_pred

    expr_solution = expr_solution or {}
    pred_solution = pred_solution or {}
    interp = Interpreter(externs)
    env: Dict[str, Any] = {}
    for var, value in inputs.items():
        env[f"{var}#0"] = coerce_input(value, sorts.get(var, Sort.INT))
    for item in items:
        if isinstance(item, Def):
            expr = substitute_expr(item.expr, expr_solution)
            env[item.versioned_var] = interp.eval_expr(expr, env, sorts)
        elif isinstance(item, Guard):
            pred = substitute_pred(item.pred, expr_solution, pred_solution)
            if not interp.eval_pred(pred, env, sorts):
                return None
        else:
            raise InterpError(f"unexpected path item {item!r}")
    return env
