"""Concrete runtime values for the interpreter.

Arrays are modelled as sparse int-indexed maps with a sort-appropriate
default — matching the SMT solver's total-array semantics, so concrete
runs and symbolic reasoning agree on out-of-bounds reads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from ..lang.ast import Sort


class ConcreteArray:
    """An immutable sparse array (``upd`` returns a fresh array)."""

    __slots__ = ("contents", "default")

    def __init__(self, contents: Optional[Mapping[int, Any]] = None, default: Any = 0):
        self.contents: Dict[int, Any] = dict(contents or {})
        self.default = default

    @classmethod
    def from_list(cls, values: Iterable[Any], default: Any = 0) -> "ConcreteArray":
        return cls({i: v for i, v in enumerate(values)}, default)

    def get(self, index: int) -> Any:
        return self.contents.get(index, self.default)

    def set(self, index: int, value: Any) -> "ConcreteArray":
        new = ConcreteArray(self.contents, self.default)
        new.contents[index] = value
        return new

    def prefix(self, length: int) -> list:
        return [self.get(i) for i in range(length)]

    def equal_prefix(self, other: "ConcreteArray", length: int) -> bool:
        return all(self.get(i) == other.get(i) for i in range(length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConcreteArray):
            return NotImplemented
        keys = set(self.contents) | set(other.contents)
        return all(self.get(k) == other.get(k) for k in keys) and self.default == other.default

    def __hash__(self):
        raise TypeError("ConcreteArray is not hashable")

    def __repr__(self) -> str:
        if not self.contents:
            return "ConcreteArray({})"
        hi = max(self.contents) + 1
        lo = min(min(self.contents), 0)
        if hi - lo <= 32:
            return f"ConcreteArray({[self.get(i) for i in range(lo, hi)]!r})"
        return f"ConcreteArray(<{len(self.contents)} entries>)"


def default_value(sort: Sort) -> Any:
    """The default runtime value for an uninitialized variable."""
    if sort is Sort.INT:
        return 0
    if sort is Sort.BOOL:
        return False
    if sort is Sort.ARRAY:
        return ConcreteArray(default=0)
    if sort is Sort.STR:
        return ""
    if sort is Sort.STRARRAY:
        return ConcreteArray(default="")
    if sort is Sort.OBJ:
        return None
    raise ValueError(f"no default for sort {sort}")


def coerce_input(value: Any, sort: Sort) -> Any:
    """Coerce user-friendly inputs (lists, tuples) into runtime values."""
    if sort.is_array and isinstance(value, (list, tuple)):
        return ConcreteArray.from_list(list(value), default_value(sort.element()))
    return value
