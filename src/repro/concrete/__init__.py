"""Concrete execution: interpreter, values, and test-case generation."""

from .interp import AssumeFailed, InterpError, Interpreter, OutOfFuel, run_path
from .testgen import freeze_input, input_from_model
from .values import ConcreteArray, coerce_input, default_value

__all__ = [name for name in dir() if not name.startswith("_")]
