"""Job records for the synthesis service.

A *job* is one ``run_pins`` invocation requested over the HTTP API:
submit a suite program (the benchmark bundles the program **and** its
inverse template) plus a config, get a job id back, poll or stream
progress, fetch the result.  The record shapes here are the service's
wire contract:

* :class:`JobRequest` — the validated submission payload;
* :class:`Job` — the server-side lifecycle record (state machine
  ``queued -> running -> done|failed``, with a re-dispatch back to
  ``queued`` when a worker dies mid-job);
* :func:`job_record` — the result payload a worker ships back, a
  superset of ``scripts/run_bench.py``'s per-benchmark bench record so
  service results and CLI bench records compare field-for-field
  (SyGuS-Comp-style standardized job records).

Determinism contract: the record's ``inverse_digest`` is
:meth:`repro.pins.algorithm.PinsResult.inverse_digest` — a job run
through the service is bit-identical to the same program run one-shot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..suite import BENCHMARK_MODULES

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL = frozenset({DONE, FAILED})

DEFAULT_TENANT = "default"

_CONFIG_KEYS = frozenset({
    "m", "max_iterations", "seed", "jobs", "workers", "budget", "faults",
    "incremental", "absint", "fwdbwd", "regions", "static_pruning",
    "warm_contexts",
})
"""Job-config keys a submission may set.  A whitelist, not a
passthrough: the service owns query-cache placement (the fleet-shared
store) and tracing, so those PinsConfig knobs are not accepted."""


class BadRequest(ValueError):
    """A submission payload the service refuses (HTTP 400)."""


@dataclass
class JobRequest:
    """A validated submission: program name + per-job config + tenant."""

    program: str
    tenant: str = DEFAULT_TENANT
    config: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        if not isinstance(payload, dict):
            raise BadRequest("submission body must be a JSON object")
        program = payload.get("program")
        if not isinstance(program, str) or not program:
            raise BadRequest("missing 'program' (a suite benchmark name)")
        if program not in BENCHMARK_MODULES:
            raise BadRequest(
                f"unknown program {program!r}; registered programs: "
                + ", ".join(BENCHMARK_MODULES))
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise BadRequest("'tenant' must be a non-empty string")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise BadRequest("'config' must be a JSON object")
        unknown = sorted(set(config) - _CONFIG_KEYS)
        if unknown:
            raise BadRequest(
                f"unsupported config keys {unknown}; allowed: "
                + ", ".join(sorted(_CONFIG_KEYS)))
        return cls(program=program, tenant=tenant, config=dict(config))

    def to_wire(self, budget: Optional[str]) -> Dict[str, Any]:
        """The dict shipped to a serve worker (admission-clamped budget)."""
        return {"program": self.program, "tenant": self.tenant,
                "config": dict(self.config), "budget": budget}


@dataclass
class Job:
    """Server-side lifecycle record for one submitted job."""

    id: str
    request: JobRequest
    state: str = QUEUED
    budget: Optional[str] = None
    """The admission-clamped effective budget spec (tenant quota applied
    on top of the requested/profile budget)."""
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker: Optional[int] = None
    attempts: int = 0
    """Dispatch count: > 1 means a worker died/hung mid-job and the job
    was re-dispatched (deterministic reruns make this result-invisible)."""
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    """Live-progress events streamed from the worker's ``repro.obs``
    spans (``pins.iteration`` and friends) plus service lifecycle marks."""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def add_event(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def mark(self, name: str, **extra: Any) -> None:
        """Append a service-side lifecycle event (same shape as obs ones)."""
        event = {"ts": round(time.time() - self.submitted_at, 6),
                 "kind": "mark", "name": name, "span": "", "value": None}
        event.update(extra)
        self.events.append(event)

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id,
            "program": self.request.program,
            "tenant": self.request.tenant,
            "state": self.state,
            "budget": self.budget,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
        }
        if self.latency_s is not None:
            out["latency_s"] = round(self.latency_s, 4)
        if self.result is not None:
            out["status"] = self.result.get("status")
            out["solutions"] = self.result.get("solutions")
            out["inverse_digest"] = self.result.get("inverse_digest")
        if self.error is not None:
            out["error"] = self.error
        return out


class JobStore:
    """In-memory job registry with monotonic ids.

    Single-writer: only the service's event loop mutates jobs, so no
    locking is needed; HTTP handlers and the dispatcher run as tasks on
    the same loop.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._seq = 0

    def create(self, request: JobRequest, budget: Optional[str]) -> Job:
        self._seq += 1
        job = Job(id=f"job-{self._seq:06d}", request=request, budget=budget)
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def all(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self._jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return out


def job_record(result, elapsed: float, budget: Optional[str]) -> Dict[str, Any]:
    """The result payload for a finished run (bench-record superset).

    Field-compatible with ``scripts/run_bench.py``'s per-benchmark
    record (wall/status/iterations/paths/queries/cache/solutions/digest)
    plus the service extras: the pretty-printed inverses themselves and
    the run's ``resil.*`` / degradation counters, so a client — or the
    chaos tests — can see exactly which resilience paths fired without
    reaching into the worker process.
    """
    from ..lang.pretty import pretty_program

    stats = result.stats
    hits = stats.smt_cache_hits
    misses = stats.smt_cache_misses
    record: Dict[str, Any] = {
        "wall_time_s": round(elapsed, 4),
        "status": result.status,
        "iterations": stats.iterations,
        "paths": stats.paths_explored,
        "smt_queries": result.metrics.counter("smt.queries"),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "solutions": stats.num_solutions,
        "inverse_digest": result.inverse_digest(),
        "inverses": sorted(pretty_program(p)
                           for p in result.inverse_programs()),
    }
    if budget is not None:
        record["budget"] = budget
    if stats.budget_exhausted:
        record["budget_exhausted"] = stats.budget_exhausted
    counters = {name: value
                for name, value in sorted(result.metrics.counters.items())
                if name.startswith("resil.")}
    if counters:
        record["counters"] = counters
    return record
