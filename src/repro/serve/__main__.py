"""CLI entry point: ``python -m repro.serve``.

Runs the synthesis service in the foreground until interrupted::

    python -m repro.serve --port 8000 --workers 4 \\
        --cache-dir .pins-cache \\
        --tenant alice=smt=5000;wall=600 --tenant bob=smt=500

Then, from anywhere with the repo on PYTHONPATH::

    python - <<'EOF'
    from repro.serve import ServeClient
    client = ServeClient("127.0.0.1", 8000)
    job = client.submit("sumi", config={"m": 10, "seed": 1})
    print(client.wait_for(job["id"])["result"]["inverses"][0])
    EOF
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict

from .app import ServeApp, ServeConfig


def _parse_tenant(spec: str) -> tuple:
    name, sep, quota = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"bad tenant spec {spec!r}: expected <name>=<budget-spec>")
    return name, quota


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the PINS synthesis service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="0 picks a free port (printed on startup)")
    parser.add_argument("--workers", type=int, default=2,
                        help="persistent warm worker processes")
    parser.add_argument("--cache-dir", default=None,
                        help="fleet-shared on-disk query-cache store")
    parser.add_argument("--tenant", action="append", default=[],
                        type=_parse_tenant, metavar="NAME=SPEC",
                        help="per-tenant quota, e.g. alice=smt=5000;wall=600 "
                             "(repeatable)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="seconds before a wedged worker is respawned")
    parser.add_argument("--compact-every", type=int, default=8,
                        help="idle-time cache compaction cadence (jobs)")
    parser.add_argument("--faults", default=None,
                        help="serve-level fault spec (chaos drills)")
    args = parser.parse_args(argv)

    tenants: Dict[str, str] = dict(args.tenant)
    config = ServeConfig(host=args.host, port=args.port,
                         workers=args.workers, cache_dir=args.cache_dir,
                         tenants=tenants, job_timeout=args.job_timeout,
                         compact_every=args.compact_every,
                         faults=args.faults)

    async def _serve() -> None:
        app = ServeApp(config)
        await app.start()
        print(f"repro.serve listening on http://{config.host}:{app.port} "
              f"({config.workers} workers"
              + (f", cache at {config.cache_dir}" if config.cache_dir else "")
              + ")", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await app.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
