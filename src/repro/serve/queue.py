"""The serve fleet and dispatcher: warm workers + fair job queue.

Three layers, mirroring ``repro.perf.pool``'s parent/worker split but
lifted from "one batch of probes" to "a stream of whole synthesis jobs":

* :func:`_serve_worker_main` — a long-lived forked worker.  Each worker
  keeps, across jobs: one :class:`repro.smt.incremental.ContextPool`
  (warm incremental SMT contexts; base term ids are stable per process
  thanks to hash-consing, so contexts built for job N hit for job N+k of
  the same program), a per-program-slug :class:`QueryCache` handle into
  the fleet-shared on-disk store, and the interned term graph itself.
  Progress flows back live: an :class:`repro.obs.CallbackRecorder`
  forwards ``pins.*`` span events through the result queue as the run
  executes.

* :class:`ServeFleet` — parent-side process management.  Workers are
  forked with private task queues and one shared result queue; jobs are
  dispatched to idle ready workers; :meth:`ServeFleet.reap` detects
  dead workers (exitcode) and — when a job timeout is configured —
  wedged ones, terminates and respawns them, and reports the lost jobs
  for requeue.  The ``serve.worker_crash`` / ``serve.worker_hang``
  fault sites are decided parent-side at dispatch time, exactly like
  the pool's fault sites.

* :class:`JobQueue` — the asyncio dispatcher.  Per-tenant FIFO queues
  drained round-robin (a tenant flooding the queue cannot starve
  another), lost-job requeue with an attempt cap, post-completion
  budget settlement against the :class:`TenantLedger`, and idle-time
  single-writer compaction of the shared cache store.

Determinism: a worker runs ``run_pins`` with exactly the config a
one-shot CLI run would use — the shared cache only ever changes wall
time (the ``jobs2-warm`` digest gate in CI pins that), warm incremental
contexts are status-only (UNSAT/known-SAT short-circuits; every
model-carrying query still runs the one-shot path), and a re-dispatched
job re-runs the same deterministic computation.  So the service's
inverse digests are bit-identical to ``run_pins`` one-shot, which the
differential tests enforce end to end.
"""

from __future__ import annotations

import asyncio
import glob
import multiprocessing
import os
import queue as queue_mod
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .. import obs
from ..resil import faults
from .jobs import (DONE, FAILED, QUEUED, RUNNING, Job, JobStore, job_record)
from .tenants import TenantLedger

_JOIN_S = 5.0
"""Seconds to wait for a terminated worker process to be reaped."""


# -- worker side ------------------------------------------------------------


def _execute_job(payload: Dict[str, Any], caches: Dict[str, Any],
                 context_pool: Any, cache_dir: Optional[str],
                 emit: Callable[[Dict[str, Any]], None]) -> Dict[str, Any]:
    """Run one synthesis job in this worker; returns the job record.

    ``caches`` and ``context_pool`` are the worker's cross-job warm
    state.  The cache handle is refreshed before each run so entries
    appended by sibling workers (or merged by the server's compactor)
    since the last job are visible.
    """
    from ..perf.cache import query_cache_for
    from ..pins import PinsConfig, run_pins
    from ..suite import get_benchmark

    config = dict(payload.get("config") or {})
    config.pop("budget", None)  # superseded by the admission-clamped spec
    warm_contexts = bool(config.pop("warm_contexts", True))
    budget = payload.get("budget")

    bench = get_benchmark(payload["program"])
    kwargs: Dict[str, Any] = dict(config)
    if budget is not None:
        kwargs["budget"] = budget

    cache = None
    if cache_dir:
        slug = bench.task.cache_slug()
        cache = caches.get(slug)
        if cache is None:
            cache = query_cache_for(cache_dir + os.sep, slug)
            caches[slug] = cache
        else:
            cache.refresh()
        kwargs["query_cache"] = cache
    if warm_contexts:
        kwargs["inc_context_pool"] = context_pool

    recorder = obs.CallbackRecorder(emit)
    previous = obs.set_recorder(recorder)
    t0 = time.time()
    try:
        result = run_pins(bench.task, PinsConfig(**kwargs))
    finally:
        obs.set_recorder(previous)
    record = job_record(result, time.time() - t0, budget)
    if cache is not None:
        record["cache"] = cache.stats()
    return record


def _serve_worker_main(worker_id: int, task_q, result_q,
                       cache_dir: Optional[str]) -> None:
    """Long-lived serve worker: ready handshake, then jobs until stop.

    Messages in: ``("job", job_id, payload)``, ``("stop",)``, and the
    fault stand-ins ``("resil.crash",)`` / ``("resil.hang",)`` (injected
    parent-side by the ``serve.worker_*`` sites — the worker dies or
    wedges exactly the way a real crash or stuck solver would).

    Messages out: ``("ready", wid, None)``, then per job ``("started",
    job_id, {"worker": wid})``, zero or more ``("event", job_id, ev)``,
    and finally ``("done", job_id, record)`` or ``("failed", job_id,
    {"error": ...})`` — a job never takes the worker down with a
    traceback.
    """
    from ..smt.incremental import ContextPool

    # The fork copied the parent's recorder and any installed fault
    # plan; both belong to the parent (fault decisions are made at
    # dispatch time, parent-side).
    obs.reset_for_subprocess()
    faults.uninstall_plan()

    caches: Dict[str, Any] = {}
    context_pool = ContextPool()
    result_q.put(("ready", worker_id, None))
    while True:
        msg = task_q.get()
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "resil.crash":
            os._exit(13)
        if kind == "resil.hang":
            time.sleep(3600)
        _, job_id, payload = msg
        result_q.put(("started", job_id, {"worker": worker_id}))

        def emit(event: Dict[str, Any], _job_id: str = job_id) -> None:
            result_q.put(("event", _job_id, event))

        try:
            record = _execute_job(payload, caches, context_pool,
                                  cache_dir, emit)
        except BaseException as exc:  # noqa: BLE001 - never crash the worker
            result_q.put(("failed", job_id,
                          {"error": f"{type(exc).__name__}: {exc}"}))
        else:
            result_q.put(("done", job_id, record))


# -- parent side: the fleet -------------------------------------------------


class _Worker:
    """Parent-side record of one fleet process."""

    __slots__ = ("wid", "proc", "task_q", "ready", "job_id", "dispatched_at")

    def __init__(self, wid: int, proc, task_q):
        self.wid = wid
        self.proc = proc
        self.task_q = task_q
        self.ready = False
        self.job_id: Optional[str] = None
        self.dispatched_at: Optional[float] = None


class ServeFleet:
    """Forked serve workers plus dispatch/reap/respawn bookkeeping.

    Requires the ``fork`` start method (like the perf pools); the serve
    test battery skips on platforms without it.
    """

    def __init__(self, workers: int, cache_dir: Optional[str] = None,
                 fault_plan: Optional[faults.FaultPlan] = None,
                 job_timeout: Optional[float] = None):
        self.cache_dir = cache_dir
        self.fault_plan = fault_plan
        self.job_timeout = job_timeout
        self.deaths = 0
        self.hangs = 0
        self.respawns = 0
        self._next_wid = 0
        self._mp = multiprocessing.get_context("fork")
        self._result_q = self._mp.Queue()
        self.workers: Dict[int, _Worker] = {}
        for _ in range(max(1, workers)):
            self._spawn()

    def _spawn(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        task_q = self._mp.Queue()
        # daemon=False: a job config may itself use the perf worker
        # pools (jobs>1), and daemonic processes cannot fork children.
        # close()/reap() own the lifecycle instead.
        proc = self._mp.Process(
            target=_serve_worker_main,
            args=(wid, task_q, self._result_q, self.cache_dir),
            daemon=False)
        proc.start()
        self.workers[wid] = _Worker(wid, proc, task_q)
        return wid

    # -- dispatch -----------------------------------------------------------

    def idle_workers(self) -> List[int]:
        """Ready workers with no job, in wid order (deterministic)."""
        return sorted(w.wid for w in self.workers.values()
                      if w.ready and w.job_id is None)

    def dispatch(self, wid: int, job_id: str,
                 payload: Dict[str, Any]) -> str:
        """Send one job to worker ``wid``; returns what was actually sent.

        The ``serve.worker_crash`` / ``serve.worker_hang`` fault sites
        are consulted here, parent-side, so injection is deterministic
        in dispatch order regardless of worker scheduling.  A faulted
        dispatch swallows the job (the worker dies or wedges before
        reading it); :meth:`reap` recovers it.
        """
        worker = self.workers[wid]
        worker.job_id = job_id
        worker.dispatched_at = time.monotonic()
        plan = self.fault_plan
        if plan is not None and plan.hit("serve.worker_crash"):
            worker.task_q.put(("resil.crash",))
            return "crash"
        if plan is not None and plan.hit("serve.worker_hang"):
            worker.task_q.put(("resil.hang",))
            return "hang"
        worker.task_q.put(("job", job_id, payload))
        return "job"

    def release(self, job_id: str) -> None:
        """Mark whichever worker held ``job_id`` as idle again."""
        for worker in self.workers.values():
            if worker.job_id == job_id:
                worker.job_id = None
                worker.dispatched_at = None
                return

    # -- results and liveness ----------------------------------------------

    def drain(self) -> List[Tuple[str, Any, Any]]:
        """All worker messages currently queued, without blocking."""
        events: List[Tuple[str, Any, Any]] = []
        while True:
            try:
                events.append(self._result_q.get_nowait())
            except queue_mod.Empty:
                return events

    def mark_ready(self, wid: int) -> None:
        worker = self.workers.get(wid)
        if worker is not None:
            worker.ready = True

    def reap(self) -> List[str]:
        """Detect dead/wedged workers; respawn; return lost job ids.

        A worker is *dead* when its process has an exit code, and
        *wedged* when a job timeout is configured and its current job
        has been running past it.  Either way the worker is replaced by
        a fresh fork (cold caches, warm again after its first job) and
        the in-flight job — if any — is reported for requeue.
        """
        lost: List[str] = []
        now = time.monotonic()
        for wid in sorted(self.workers):
            worker = self.workers[wid]
            dead = worker.proc.exitcode is not None
            wedged = (not dead and self.job_timeout is not None
                      and worker.job_id is not None
                      and worker.dispatched_at is not None
                      and now - worker.dispatched_at > self.job_timeout)
            if not dead and not wedged:
                continue
            if dead:
                self.deaths += 1
                obs.count("resil.serve.worker_death")
            else:
                self.hangs += 1
                obs.count("resil.serve.worker_hang")
                worker.proc.terminate()
            if worker.job_id is not None:
                lost.append(worker.job_id)
            worker.proc.join(timeout=_JOIN_S)
            del self.workers[wid]
            self._spawn()
            self.respawns += 1
            obs.count("resil.serve.worker_respawn")
        return lost

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": len(self.workers),
            "ready": sum(1 for w in self.workers.values() if w.ready),
            "busy": sum(1 for w in self.workers.values()
                        if w.job_id is not None),
            "deaths": self.deaths,
            "hangs": self.hangs,
            "respawns": self.respawns,
        }

    def close(self) -> None:
        for worker in self.workers.values():
            try:
                worker.task_q.put(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self.workers.values():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in self.workers.values():
            if worker.proc.exitcode is None:
                worker.proc.terminate()
                worker.proc.join(timeout=_JOIN_S)
        self.workers = {}


def compact_store(cache_dir: str) -> int:
    """Single-writer compaction of every slug file in the shared store.

    Merges each ``<slug>.jsonl``'s per-pid worker shards into its base
    file with an atomic rename (see :meth:`QueryCache.compact`).  Safe
    to run while workers are *idle*: ``run_pins`` closes its cache
    handle at the end of every job, so idle workers hold no open shard
    handles and their next job re-reads the compacted base.  Returns the
    number of slug files compacted.
    """
    from ..perf.cache import QueryCache

    # A slug whose base file was never written still has to be found:
    # freshly-forked workers append straight to per-pid shards, so the
    # first compaction of a new store sees only <slug>.jsonl.shard-<pid>.
    slugs = set(glob.glob(os.path.join(cache_dir, "*.jsonl")))
    for shard in glob.glob(os.path.join(cache_dir, "*.jsonl.shard-*")):
        slugs.add(shard.rsplit(".shard-", 1)[0])
    compacted = 0
    for path in sorted(slugs):
        QueryCache(path).compact()
        compacted += 1
    return compacted


# -- the dispatcher ---------------------------------------------------------


class JobQueue:
    """Fair asyncio dispatcher from tenant queues onto the fleet.

    Single-writer over the :class:`JobStore`: every mutation happens in
    :meth:`tick`, which the :meth:`run` pump calls on the service event
    loop.  HTTP handlers only read job state (and enqueue submissions
    via :meth:`submit`, also on the loop).
    """

    def __init__(self, store: JobStore, fleet: ServeFleet,
                 ledger: TenantLedger, *, max_attempts: int = 3,
                 compact_every: int = 8, poll_s: float = 0.02):
        self.store = store
        self.fleet = fleet
        self.ledger = ledger
        self.max_attempts = max_attempts
        self.compact_every = compact_every
        self.poll_s = poll_s
        self.completed = 0
        self.requeues = 0
        self.compactions = 0
        self._since_compact = 0
        self._queues: Dict[str, Deque[str]] = {}
        self._tenant_order: Deque[str] = deque()
        self._stopped = False
        self.changed: asyncio.Condition = asyncio.Condition()

    # -- intake -------------------------------------------------------------

    def submit(self, job: Job) -> None:
        tenant = job.request.tenant
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if tenant not in self._tenant_order:
            self._tenant_order.append(tenant)
        q.append(job.id)
        job.mark("serve.queued")

    def _requeue_front(self, job: Job) -> None:
        tenant = job.request.tenant
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if tenant not in self._tenant_order:
            self._tenant_order.appendleft(tenant)
        q.appendleft(job.id)

    def _next_job(self) -> Optional[Job]:
        """Round-robin across tenants: pop from the first non-empty
        tenant queue, rotating so each dequeue moves to the next tenant."""
        for _ in range(len(self._tenant_order)):
            tenant = self._tenant_order[0]
            self._tenant_order.rotate(-1)
            q = self._queues.get(tenant)
            while q:
                job = self.store.get(q.popleft())
                if job is not None and job.state == QUEUED:
                    return job
        return None

    def queued_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # -- the pump -----------------------------------------------------------

    async def run(self) -> None:
        """Poll-drive the fleet until :meth:`stop`; notify watchers on
        every change so long-poll event streams wake immediately."""
        while not self._stopped:
            if self.tick():
                async with self.changed:
                    self.changed.notify_all()
            await asyncio.sleep(self.poll_s)

    def stop(self) -> None:
        self._stopped = True

    def tick(self) -> bool:
        """One dispatcher step; returns True when any job changed."""
        dirty = self._apply_events(self.fleet.drain())
        dirty = self._recover(self.fleet.reap()) or dirty
        dirty = self._dispatch_idle() or dirty
        self._maybe_compact()
        return dirty

    def _apply_events(self, events: List[Tuple[str, Any, Any]]) -> bool:
        dirty = False
        for kind, ident, payload in events:
            if kind == "ready":
                self.fleet.mark_ready(ident)
                continue
            job = self.store.get(ident)
            if job is None or job.terminal:
                # A terminal job can still receive stragglers from a
                # worker that was reaped after its result was recovered
                # elsewhere; drop them.
                continue
            if kind == "started":
                job.state = RUNNING
                job.started_at = time.time()
                job.worker = payload.get("worker")
                dirty = True
            elif kind == "event":
                job.add_event(payload)
                dirty = True
            elif kind == "done":
                job.result = payload
                job.state = DONE
                job.finished_at = time.time()
                self.fleet.release(job.id)
                self.ledger.settle(job.request.tenant, payload)
                self.completed += 1
                self._since_compact += 1
                dirty = True
            elif kind == "failed":
                job.error = payload.get("error", "job failed")
                job.state = FAILED
                job.finished_at = time.time()
                self.fleet.release(job.id)
                self.ledger.settle(job.request.tenant, None)
                self.completed += 1
                dirty = True
        return dirty

    def _recover(self, lost: List[str]) -> bool:
        """Requeue jobs whose worker died or wedged (bounded retries)."""
        dirty = False
        for job_id in lost:
            job = self.store.get(job_id)
            if job is None or job.terminal:
                continue
            dirty = True
            if job.attempts < self.max_attempts:
                job.state = QUEUED
                job.started_at = None
                job.worker = None
                job.mark("serve.requeued", value=job.attempts)
                self._requeue_front(job)
                self.requeues += 1
            else:
                job.error = (f"worker lost {job.attempts} times "
                             f"(max_attempts={self.max_attempts})")
                job.state = FAILED
                job.finished_at = time.time()
                self.ledger.settle(job.request.tenant, None)
        return dirty

    def _dispatch_idle(self) -> bool:
        dirty = False
        for wid in self.fleet.idle_workers():
            job = self._next_job()
            if job is None:
                break
            job.attempts += 1
            sent = self.fleet.dispatch(
                wid, job.id, job.request.to_wire(job.budget))
            job.mark("serve.dispatched", value={"worker": wid, "sent": sent})
            dirty = True
        return dirty

    def _maybe_compact(self) -> None:
        """Idle-time compaction: only when the whole fleet is quiet, so
        no worker holds an open shard handle (see :func:`compact_store`)."""
        if (self.fleet.cache_dir is None
                or self._since_compact < self.compact_every):
            return
        if any(w.job_id is not None for w in self.fleet.workers.values()):
            return
        if self.queued_count():
            return
        compact_store(self.fleet.cache_dir)
        self.compactions += 1
        self._since_compact = 0

    def force_compact(self) -> int:
        """Operator-requested compaction (``POST /admin/compact``)."""
        if self.fleet.cache_dir is None:
            return 0
        n = compact_store(self.fleet.cache_dir)
        self.compactions += 1
        self._since_compact = 0
        return n

    def stats(self) -> Dict[str, Any]:
        return {
            "queued": self.queued_count(),
            "completed": self.completed,
            "requeues": self.requeues,
            "compactions": self.compactions,
            "fleet": self.fleet.stats(),
        }
