"""Per-tenant admission control for the synthesis service.

Each tenant gets a :class:`TenantQuota` — an aggregate SMT-query and
wall-clock allowance plus a concurrent-job cap — and the
:class:`TenantLedger` enforces it at admission time:

* a submission whose tenant has active + queued jobs at ``max_active``
  is rejected (HTTP 429, ``queue_full``);
* a submission whose tenant has no remaining allowance at all is
  rejected (HTTP 429, ``budget_exhausted``);
* otherwise the job's budget is the *clamp* of the requested (or
  profile-default) budget against the tenant's remaining allowance, so
  a run can never burn more than the tenant has left.  When the clamp
  bites, the run ends with the normal ``repro.resil`` anytime behavior:
  status ``budget_exhausted`` carrying the best-so-far solution set.

Settlement is post-hoc and exact: when a job finishes, its record's
``smt_queries`` and ``wall_time_s`` are charged against the tenant.
The clamp means a tenant can overshoot its aggregate by at most the
in-flight jobs' clamped budgets — bounded, cooperative overcommit,
matching the budget layer's own "approximate at process boundaries"
stance.  Crucially, tenants are isolated: one tenant exhausting its
quota changes nothing for any other tenant's admissions or budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..resil import Budget, resolve_budget


class AdmissionError(Exception):
    """A submission the ledger refuses (HTTP 429).

    ``reason`` is machine-readable: ``"budget_exhausted"`` or
    ``"queue_full"``.
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class TenantQuota:
    """Aggregate allowances for one tenant; ``None`` means unbounded."""

    smt_queries: Optional[int] = None
    wall_s: Optional[float] = None
    max_active: int = 16

    @classmethod
    def from_spec(cls, spec: "TenantQuota | str | None") -> "TenantQuota":
        """Accept a quota, a budget-style spec string, or None.

        Spec strings reuse the ``repro.resil`` budget grammar
        (``"smt=500;wall=60"``); only the smt/wall dimensions are
        meaningful for tenancy.
        """
        if spec is None:
            return cls()
        if isinstance(spec, TenantQuota):
            return spec
        budget = resolve_budget(spec)
        if budget is None:
            return cls()
        return cls(smt_queries=budget.smt_queries, wall_s=budget.wall_s)


class TenantState:
    """Mutable per-tenant usage: charges to date plus in-flight count."""

    def __init__(self, quota: TenantQuota):
        self.quota = quota
        self.used_smt_queries = 0
        self.used_wall_s = 0.0
        self.active = 0
        self.admitted = 0
        self.rejected = 0
        self.finished = 0

    def remaining_smt(self) -> Optional[int]:
        if self.quota.smt_queries is None:
            return None
        return max(0, self.quota.smt_queries - self.used_smt_queries)

    def remaining_wall(self) -> Optional[float]:
        if self.quota.wall_s is None:
            return None
        return max(0.0, self.quota.wall_s - self.used_wall_s)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "quota": {"smt_queries": self.quota.smt_queries,
                      "wall_s": self.quota.wall_s,
                      "max_active": self.quota.max_active},
            "used_smt_queries": self.used_smt_queries,
            "used_wall_s": round(self.used_wall_s, 4),
            "remaining_smt_queries": self.remaining_smt(),
            "remaining_wall_s": (None if self.remaining_wall() is None
                                 else round(self.remaining_wall(), 4)),
            "active": self.active,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "finished": self.finished,
        }


class TenantLedger:
    """Admission + settlement across all tenants (event-loop owned)."""

    def __init__(self, quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: Optional[TenantQuota] = None):
        self.default_quota = default_quota or TenantQuota()
        self._states: Dict[str, TenantState] = {}
        for name, quota in (quotas or {}).items():
            self._states[name] = TenantState(TenantQuota.from_spec(quota))

    def state(self, tenant: str) -> TenantState:
        st = self._states.get(tenant)
        if st is None:
            st = self._states[tenant] = TenantState(self.default_quota)
        return st

    def admit(self, tenant: str,
              requested: Optional[Budget]) -> Optional[str]:
        """Admit one job; returns the effective (clamped) budget spec.

        Raises :class:`AdmissionError` when the tenant is at its
        concurrency cap or fully out of allowance.  A ``None`` return
        means "unbounded" (no requested budget, unbounded quota).
        """
        st = self.state(tenant)
        if st.active >= st.quota.max_active:
            st.rejected += 1
            raise AdmissionError(
                "queue_full",
                f"tenant {tenant!r} has {st.active} jobs in flight "
                f"(max_active={st.quota.max_active})")
        rem_smt = st.remaining_smt()
        rem_wall = st.remaining_wall()
        if rem_smt == 0 or rem_wall == 0.0:
            st.rejected += 1
            dim = "smt" if rem_smt == 0 else "wall"
            raise AdmissionError(
                "budget_exhausted",
                f"tenant {tenant!r} has no remaining {dim} allowance")
        smt = requested.smt_queries if requested is not None else None
        wall = requested.wall_s if requested is not None else None
        if rem_smt is not None:
            smt = rem_smt if smt is None else min(smt, rem_smt)
        if rem_wall is not None:
            wall = rem_wall if wall is None else min(wall, rem_wall)
        clamped = Budget(
            wall_s=wall, smt_queries=smt,
            sat_conflicts=requested.sat_conflicts if requested else None,
            symexec_paths=requested.symexec_paths if requested else None)
        st.active += 1
        st.admitted += 1
        spec = clamped.describe()
        return None if spec == "unbounded" else spec

    def release(self, tenant: str) -> None:
        """Undo an admission's in-flight slot without charging usage
        (submission failed after admit, e.g. an invalid program)."""
        st = self.state(tenant)
        st.active = max(0, st.active - 1)
        st.admitted = max(0, st.admitted - 1)

    def settle(self, tenant: str, record: Optional[Dict[str, Any]]) -> None:
        """Charge a finished job's actual usage and free its slot."""
        st = self.state(tenant)
        st.active = max(0, st.active - 1)
        st.finished += 1
        if record:
            st.used_smt_queries += int(record.get("smt_queries") or 0)
            st.used_wall_s += float(record.get("wall_time_s") or 0.0)

    def snapshot(self) -> Dict[str, Any]:
        return {name: st.snapshot()
                for name, st in sorted(self._states.items())}
