"""Blocking client for the synthesis service, plus an in-thread server.

:class:`ServeClient` wraps the HTTP API with plain ``http.client``
calls (stdlib only, one connection per request — the server speaks
``Connection: close``).  Anything the server refuses surfaces as a
:class:`ServeError` carrying the HTTP status and the decoded error
payload, so tests can assert on ``exc.status`` / ``exc.payload``.

:class:`ServerThread` runs a full :class:`ServeApp` on a private asyncio
event loop in a daemon thread — the harness the tests, the load
benchmark, and interactive experiments all share::

    with ServerThread(ServeConfig(workers=2)) as client:
        job = client.submit("sumi", config={"m": 10, "seed": 1})
        record = client.wait_for(job["id"])["result"]
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, Optional

from .app import ServeApp, ServeConfig


class ServeError(Exception):
    """An HTTP error response (status >= 400) from the service."""

    def __init__(self, status: int, payload: Any):
        detail = payload.get("detail") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {detail or payload}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Thin blocking wrapper over the service's JSON-over-HTTP API."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            data = None
            headers = {}
            if body is not None:
                data = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode("utf-8")) if raw else None
            if response.status >= 400:
                raise ServeError(response.status, payload)
            return payload
        finally:
            conn.close()

    # -- API ---------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def tenants(self) -> Dict[str, Any]:
        return self._request("GET", "/tenants")

    def submit(self, program: str, *, tenant: Optional[str] = None,
               config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"program": program}
        if tenant is not None:
            body["tenant"] = tenant
        if config is not None:
            body["config"] = config
        return self._request("POST", "/jobs", body)

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/jobs")

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str, since: int = 0,
               wait: float = 0.0) -> Dict[str, Any]:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait:g}")

    def compact(self) -> Dict[str, Any]:
        return self._request("POST", "/admin/compact")

    def wait_for(self, job_id: str, timeout: float = 300.0,
                 poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the full result
        payload (``GET /jobs/<id>/result``).  Raises ``TimeoutError``
        if the job is still running at the deadline."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} "
                    f"after {timeout:g}s")
            time.sleep(poll_s)


class ServerThread:
    """A :class:`ServeApp` running on its own event loop in a thread.

    ``__enter__`` blocks until the server socket is bound and returns a
    ready :class:`ServeClient`; ``__exit__`` stops the app (fleet
    included) and joins the thread.  Startup failures propagate to the
    entering thread instead of leaving a half-started service behind.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.app = ServeApp(config)
        self._loop: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.app.start())
        except BaseException as exc:  # noqa: BLE001 - report to entering thread
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.app.stop())
            loop.close()

    def start(self) -> ServeClient:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._started.wait(timeout=60.0)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.app.port is not None, "server failed to bind"
        return ServeClient(self.app.config.host, self.app.port)

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> ServeClient:
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
