"""The synthesis service: a stdlib-only asyncio HTTP API over the fleet.

Submit a suite program plus a config, get a job id, poll or long-poll
progress, fetch the result::

    POST /jobs {"program": "sumi", "tenant": "alice",
                "config": {"m": 10, "max_iterations": 25, "seed": 1}}
        -> 202 {"id": "job-000001", "state": "queued", ...}
        -> 400 on a malformed submission (unknown program/config keys)
        -> 429 when the tenant is over quota ("budget_exhausted") or at
           its concurrency cap ("queue_full")
    GET  /jobs                  all job summaries
    GET  /jobs/<id>             one summary (404 unknown)
    GET  /jobs/<id>/result      full record (409 until terminal)
    GET  /jobs/<id>/events?since=N&wait=S
                                live pins.* span events streamed from
                                the worker; long-polls up to S seconds
                                when nothing new is available
    GET  /healthz /stats /tenants
    POST /admin/compact         force shared-store compaction

The server is deliberately boring HTTP/1.1 — ``asyncio.start_server``
plus hand-rolled request parsing, JSON bodies, one request per
connection — because the container bakes in only the standard library.
Everything interesting lives below it: the :class:`JobQueue` dispatcher,
the :class:`ServeFleet` of warm workers, and the :class:`TenantLedger`
(see :mod:`repro.serve.queue` / :mod:`repro.serve.tenants`).

Budget defaulting: a submission with no ``config.budget`` gets the
program's profile budget (:func:`repro.suite.resolved_budget`), the same
default ``scripts/run_bench.py`` applies — an unbudgeted lzw job must
not wedge a worker for an hour.  Admission then clamps that against the
tenant's remaining allowance.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..resil import Budget, resolve_budget
from ..resil.faults import FaultPlan, parse_fault_spec
from .jobs import BadRequest, Job, JobRequest, JobStore
from .queue import JobQueue, ServeFleet
from .tenants import AdmissionError, TenantLedger, TenantQuota

_MAX_BODY = 1 << 20
_MAX_WAIT_S = 30.0


@dataclass
class ServeConfig:
    """Service configuration (CLI flags map 1:1 onto these fields)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 picks a free port; the bound port is ``ServeApp.port``."""
    workers: int = 2
    cache_dir: Optional[str] = None
    """Directory of the fleet-shared on-disk query-cache store (one
    ``<slug>.jsonl`` per program, per-pid worker shards, single-writer
    compaction).  ``None`` disables cross-job disk caching."""
    tenants: Dict[str, Any] = field(default_factory=dict)
    """Per-tenant quota specs (``repro.resil`` budget grammar, e.g.
    ``{"alice": "smt=5000;wall=600"}``) or :class:`TenantQuota` values."""
    default_quota: Optional[TenantQuota] = None
    """Quota for tenants not listed in ``tenants`` (default unbounded)."""
    faults: Optional[str] = None
    """Serve-level fault spec (``serve.worker_crash@0`` etc.), consulted
    parent-side at dispatch time.  Unlike run-level faults this is never
    read from the environment — chaos against the service itself is an
    explicit operator decision."""
    job_timeout: Optional[float] = None
    """Seconds a dispatched job may run before its worker is declared
    wedged, terminated, and respawned (the job is requeued)."""
    compact_every: int = 8
    max_attempts: int = 3
    poll_s: float = 0.02


class ServeApp:
    """The running service: HTTP front end + dispatcher + fleet."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.store = JobStore()
        self.ledger = TenantLedger(
            quotas={name: TenantQuota.from_spec(spec)
                    for name, spec in self.config.tenants.items()},
            default_quota=self.config.default_quota)
        plan: Optional[FaultPlan] = None
        if self.config.faults:
            plan = parse_fault_spec(self.config.faults)
        self.fleet = ServeFleet(
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            fault_plan=plan,
            job_timeout=self.config.job_timeout)
        self.queue = JobQueue(
            self.store, self.fleet, self.ledger,
            max_attempts=self.config.max_attempts,
            compact_every=self.config.compact_every,
            poll_s=self.config.poll_s)
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._pump = asyncio.get_running_loop().create_task(self.queue.run())

    async def stop(self) -> None:
        self.queue.stop()
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.fleet.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - the server must not die
            status, payload = 500, {"error": "internal",
                                    "detail": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> Tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "bad_request", "detail": "empty request"}
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": "bad_request",
                         "detail": f"malformed request line {request_line!r}"}
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > _MAX_BODY:
                return 400, {"error": "bad_request", "detail": "body too large"}
            body = await reader.readexactly(length)
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return await self._route(method, split.path, query, body)

    # -- routing ------------------------------------------------------------

    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: bytes) -> Tuple[int, Any]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "workers": self.fleet.stats()["ready"]}
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/tenants" and method == "GET":
            return 200, self.ledger.snapshot()
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [j.summary() for j in self.store.all()]}
        if path == "/admin/compact" and method == "POST":
            return 200, {"compacted": self.queue.force_compact()}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.store.get(job_id)
            if job is None:
                return 404, {"error": "not_found",
                             "detail": f"unknown job {job_id!r}"}
            if tail == "" and method == "GET":
                return 200, job.summary()
            if tail == "result" and method == "GET":
                return self._result(job)
            if tail == "events" and method == "GET":
                return await self._events(job, query)
        return 405, {"error": "method_not_allowed",
                     "detail": f"{method} {path}"}

    def _stats(self) -> Dict[str, Any]:
        out = self.queue.stats()
        out["jobs"] = self.store.counts()
        if self.started_at is not None:
            out["uptime_s"] = round(time.time() - self.started_at, 3)
        return out

    # -- handlers -----------------------------------------------------------

    def _submit(self, body: bytes) -> Tuple[int, Any]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "bad_request", "detail": "body is not JSON"}
        try:
            request = JobRequest.from_payload(payload)
            requested = self._requested_budget(request)
        except BadRequest as exc:
            return 400, {"error": "bad_request", "detail": str(exc)}
        try:
            effective = self.ledger.admit(request.tenant, requested)
        except AdmissionError as exc:
            return 429, {"error": exc.reason, "detail": exc.detail,
                         "tenant": request.tenant}
        job = self.store.create(request, effective)
        self.queue.submit(job)
        return 202, {"id": job.id, "state": job.state, "budget": job.budget}

    def _requested_budget(self, request: JobRequest) -> Optional[Budget]:
        """The pre-admission budget: the job's own spec, else the
        program's profile default (mirroring ``run_bench``)."""
        from ..suite import resolved_budget

        spec = request.config.get("budget")
        if spec is None:
            regions = request.config.get("regions")
            spec = resolved_budget(
                request.program,
                regions=True if regions is None else bool(regions))
        try:
            return resolve_budget(spec)
        except ValueError as exc:
            raise BadRequest(f"bad budget spec: {exc}")

    @staticmethod
    def _result(job: Job) -> Tuple[int, Any]:
        if not job.terminal:
            return 409, {"error": "not_finished", "id": job.id,
                         "state": job.state}
        out = job.summary()
        out["result"] = job.result
        return 200, out

    async def _events(self, job: Job,
                      query: Dict[str, str]) -> Tuple[int, Any]:
        try:
            since = max(0, int(query.get("since", "0")))
            wait_s = min(float(query.get("wait", "0")), _MAX_WAIT_S)
        except ValueError:
            return 400, {"error": "bad_request",
                         "detail": "since/wait must be numeric"}
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait_s
        while (len(job.events) <= since and not job.terminal
               and loop.time() < deadline):
            async with self.queue.changed:
                try:
                    await asyncio.wait_for(
                        self.queue.changed.wait(),
                        timeout=max(0.0, deadline - loop.time()))
                except asyncio.TimeoutError:
                    break
        events = job.events[since:]
        return 200, {"id": job.id, "state": job.state, "since": since,
                     "next": since + len(events), "events": events}
