"""Synthesis-as-a-service: an async job API over warm PINS workers.

``python -m repro.serve`` starts a stdlib-only asyncio HTTP service
that accepts synthesis jobs (suite program + config), dispatches them
onto a fleet of persistent forked workers (warm incremental SMT
contexts, interned term graph, and a fleet-shared on-disk query cache
survive across jobs), streams live ``repro.obs`` progress events, and
enforces per-tenant budget admission control.

Determinism contract: a job run through the service produces inverse
digests bit-identical to the same program run one-shot via
:func:`repro.pins.run_pins` — enforced end to end by the differential
tests in ``tests/serve`` and the load benchmark
(``scripts/run_serve_bench.py``).

See DESIGN.md §16 for the architecture.
"""

from .app import ServeApp, ServeConfig
from .client import ServeClient, ServeError, ServerThread
from .jobs import (BadRequest, DONE, FAILED, Job, JobRequest, JobStore,
                   QUEUED, RUNNING, job_record)
from .queue import JobQueue, ServeFleet, compact_store
from .tenants import AdmissionError, TenantLedger, TenantQuota

__all__ = [
    "AdmissionError", "BadRequest", "DONE", "FAILED", "Job", "JobQueue",
    "JobRequest", "JobStore", "QUEUED", "RUNNING", "ServeApp", "ServeClient",
    "ServeConfig", "ServeError", "ServeFleet", "ServerThread",
    "TenantLedger", "TenantQuota", "compact_store", "job_record",
]
