"""Forward-backward abstract analysis of the synthesis template's unknowns.

PINS enumerates a finite candidate family per hole and asks SAT/SMT about
every combination the CDCL loop proposes.  Following Yoon-Lee-Yi
("Inductive Program Synthesis via Iterative Forward-Backward Abstract
Interpretation"), this module derives *necessary conditions on the
unknowns themselves* before any solver work:

* :func:`analyze_unknowns` — the static pass.  A
  :class:`~repro.analysis.absint.ForwardAnalyzer` run over the forward
  program ``P`` yields abstract facts at the template boundary (the
  inverse's inputs are ``P``'s outputs); a per-site
  :class:`~repro.analysis.absint.BackwardAnalyzer` walk from the identity
  spec back through the template yields the *necessary* abstract value of
  every hole's target; each hole evaluates as the abstract join over its
  still-feasible candidates, and a candidate whose transfer cannot meet
  the necessary condition is refuted.  The two directions are iterated to
  a fixpoint, and pairs of candidates at distinct holes are refined
  against each other (fixing one hole's candidate and re-running the
  forward pass), producing a per-hole feasible set plus refuted
  (hole, candidate) units and pairs that ``solve`` blocks as SAT clauses
  before CDCL ever runs.

* :func:`sample_state` — constraint-directed concretization.  Where the
  plain witness sampler picks every variable independently (and dies on
  relational guards like ``mp < m``), this one re-saturates the predicate
  list after each pick so earlier choices propagate into later ranges.
  The checker uses it to turn refined abstract states on goal
  (termination/invariant) constraints into concrete refutation witnesses.

* :func:`fold_goal` — backward symbolic composition of a constraint's SSA
  definitions into linear forms (:mod:`repro.analysis.fold`), deciding
  goals like ``rank^V < rank^0`` without the solver whenever the rank
  delta folds to a constant.

Soundness: unit/pair refutations are only emitted for holes assigned at
*top-level* template sites (executed on every run), where "every value the
candidate can produce lies outside the necessary set" proves every
execution under that choice misses the spec; witnesses are validated by
concrete replay; linear folds hold for all valuations of their bases.

The pass sits behind the standard switch cascade: explicit override,
else ``REPRO_FWDBWD``, else follow the absint switch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang.ast import Assign, Expr, GIf, GWhile, Pred, Seq, Sort, Stmt
from .absint import (AbsEnv, BackwardAnalyzer, ForwardAnalyzer, absint_enabled,
                     eval_expr, refine_expr, refine_pred, saturate)
from .domains import AbsVal

ENV_FLAG = "REPRO_FWDBWD"


def fwdbwd_enabled(override: Optional[bool] = None,
                   absint: Optional[bool] = None) -> bool:
    """Resolve the fwdbwd switch: explicit override, else the
    ``REPRO_FWDBWD`` env var, else follow the absint switch (``absint``
    may be an already-resolved boolean or None to re-resolve)."""
    if override is not None:
        return override
    raw = os.environ.get(ENV_FLAG)
    if raw is not None:
        return raw.strip().lower() not in ("0", "false", "off")
    return absint_enabled(absint)


# ---------------------------------------------------------------------------
# Constraint-directed concretization (witness sampling)
# ---------------------------------------------------------------------------


def _pick_candidates(val: AbsVal, limit: int) -> List[int]:
    """Representative concrete values of ``val``, most-likely-first."""
    c = val.as_const()
    if c is not None:
        return [c]
    iv = val.interval
    cong = val.congruence
    raw: List[int] = []
    if iv.contains(0):
        raw.append(0)
    if iv.lo is not None:
        raw.extend([iv.lo, iv.lo + 1])
    if iv.hi is not None:
        raw.extend([iv.hi, iv.hi - 1])
    if not raw:
        raw.append(0)
    out: List[int] = []
    for pick in raw:
        if not val.contains(pick) and cong.modulus > 0:
            # Snap onto the congruence class, toward the interval interior.
            up = pick + (cong.rem - pick) % cong.modulus
            down = pick - (pick - cong.rem) % cong.modulus
            pick = up if val.contains(up) else down
        if val.contains(pick) and pick not in out:
            out.append(pick)
        if len(out) >= limit:
            break
    return out


def sample_state(preds: Sequence[Pred], sorts: Mapping[str, Sort],
                 rounds: int = 3, alternates: int = 3
                 ) -> Optional[Dict[str, int]]:
    """Concretize the version-0 integer variables of a saturated state.

    Picks one value per variable (deterministic order), *meeting each
    pick back into the environment and re-saturating* before the next, so
    relational facts (``mp < m``) steer later picks instead of breaking
    the sample.  Returns ``{base_name: int}`` or None when the predicate
    list is abstractly unsatisfiable.  The sample is a heuristic — it
    must be validated by concrete replay before being used as a witness.
    """
    env = saturate(preds, sorts, rounds=rounds)
    if env is None:
        return None
    picks: Dict[str, int] = {}
    for name in sorted(n for n, s in sorts.items() if s is Sort.INT):
        key = f"{name}#0"
        options = _pick_candidates(env.get(key), alternates)
        chosen = options[0]
        for option in options:
            refined = saturate(preds, sorts,
                               env=env.set(key, AbsVal.const(option)),
                               rounds=1)
            if refined is not None:
                env = refined
                chosen = option
                break
        picks[name] = chosen
    return picks


# ---------------------------------------------------------------------------
# Backward symbolic goal folding (rank deltas and friends)
# ---------------------------------------------------------------------------


def fold_goal(items: Sequence[object], ground_goal: Pred,
              expr_map: Mapping[str, Expr]) -> Optional[bool]:
    """Three-valued truth of ``ground_goal`` under the path's definitions.

    Composes the SSA definitions into multi-variable affine forms
    (:mod:`repro.analysis.linear`) over free (version-0 or opaque)
    variables and folds the goal; guards are ignored, so a ``False``
    answer proves the goal unsatisfiable under the path condition for
    *all* inputs — e.g. a ranking delta ``rank^V - rank^0`` whose
    difference folds to a negative constant decides a ``decrease``
    constraint without any solver query, even when the rank mixes
    several variables (``m - mp - 1``).
    """
    from ..lang.transform import substitute_expr
    from ..symexec.paths import Def
    from .linear import Affine, affine_expr, affine_pred

    env: Dict[str, Affine] = {}
    for item in items:
        if isinstance(item, Def):
            aff = affine_expr(substitute_expr(item.expr, expr_map), env)
            if aff is not None:
                env[item.versioned_var] = aff
    return affine_pred(ground_goal, env)


# ---------------------------------------------------------------------------
# The static unknowns analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Refutation:
    """One statically refuted candidate."""

    hole: str
    index: int
    candidate: str
    reason: str

    def __str__(self) -> str:
        return f"{self.hole}[{self.index}] = {self.candidate}: {self.reason}"


@dataclass(frozen=True)
class PairRefutation:
    """A refuted conjunction of two candidates at distinct holes."""

    first: Tuple[str, int]
    second: Tuple[str, int]
    reason: str

    def __str__(self) -> str:
        return (f"({self.first[0]}[{self.first[1]}], "
                f"{self.second[0]}[{self.second[1]}]): {self.reason}")


@dataclass
class FeasibleSet:
    """Per-hole surviving candidate indices after the static pass."""

    hole: str
    kind: str  # 'expr' | 'pred'
    total: int
    feasible: Tuple[int, ...]
    refuted: Tuple[Refutation, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.feasible


@dataclass
class FwdBwdReport:
    """Everything the consumers need from one static analysis run."""

    program: str
    iterations: int
    boundary: str
    feasible: Dict[str, FeasibleSet] = field(default_factory=dict)
    pairs: Tuple[PairRefutation, ...] = ()
    refuted_exprs: Dict[str, Tuple[Expr, ...]] = field(default_factory=dict)

    @property
    def units_refuted(self) -> int:
        return sum(len(fs.refuted) for fs in self.feasible.values())

    def refuted_units(self) -> List[Tuple[str, int]]:
        """(hole, candidate-index) pairs safe to block as unit clauses."""
        return [(fs.hole, r.index)
                for fs in self.feasible.values() if fs.kind == "expr"
                for r in fs.refuted]

    def refuted_pairs(self) -> List[Tuple[Tuple[str, int], Tuple[str, int]]]:
        return [(p.first, p.second) for p in self.pairs]

    def empty_holes(self) -> List[str]:
        return sorted(fs.hole for fs in self.feasible.values() if fs.empty)

    def allows(self, solution) -> bool:
        """False when the solution picks a statically refuted candidate."""
        for name, expr in solution.exprs:
            if expr in self.refuted_exprs.get(name, ()):
                return False
        return True

    def describe(self) -> str:
        lines = [f"{self.program}: boundary {self.boundary} "
                 f"({self.iterations} fwd/bwd round(s))"]
        for name in sorted(self.feasible):
            fs = self.feasible[name]
            status = "EMPTY" if fs.empty else f"{len(fs.feasible)}/{fs.total}"
            lines.append(f"  {name} ({fs.kind}): {status} feasible")
            for r in fs.refuted:
                lines.append(f"    refuted [{r.index}] {r.candidate}: {r.reason}")
        for p in self.pairs:
            lines.append(f"  pair refuted: {p}")
        if not any(fs.refuted for fs in self.feasible.values()) and not self.pairs:
            lines.append("  (no candidate statically refuted)")
        return "\n".join(lines)


class _SiteForward(ForwardAnalyzer):
    """Forward pass over the template: holes evaluate as the join over
    their feasible candidates, and the abstract state flowing into every
    hole-bearing statement is recorded (joined across visits)."""

    def __init__(self, sorts: Mapping[str, Sort], hole_eval,
                 unroll_fuel: int = 0):
        super().__init__(sorts, unroll_fuel=unroll_fuel)
        self.hole_eval = hole_eval  # fn(name, env) -> Optional[AbsVal]
        self.site_envs: Dict[int, AbsEnv] = {}

    def _note_site(self, s: Stmt, env: AbsEnv) -> None:
        if env.bottom:
            return
        prev = self.site_envs.get(id(s))
        self.site_envs[id(s)] = env if prev is None else prev.join(env)

    def _stmt(self, s: Stmt, env: AbsEnv) -> AbsEnv:
        if env.bottom:
            return env
        if isinstance(s, Assign):
            if any(isinstance(e, ast.Unknown) for e in s.exprs):
                self._note_site(s, env)
            vals = []
            for e in s.exprs:
                v = None
                if isinstance(e, ast.Unknown):
                    v = self.hole_eval(e.name, env)
                vals.append(v if v is not None else eval_expr(e, env))
            for t, v in zip(s.targets, vals):
                env = env.set(t, v)
            return env
        if isinstance(s, (GWhile, GIf)) and ast.expr_unknowns(s.cond):
            self._note_site(s, env)
        return super()._stmt(s, env)


class _SiteBackward(BackwardAnalyzer):
    """Backward pass recording the necessary post-state at every
    assignment (joined across paths that reach it)."""

    def __init__(self, sorts: Mapping[str, Sort]):
        super().__init__(sorts)
        self.sites: Dict[int, AbsEnv] = {}

    def _bwd(self, s: Stmt, post: Optional[AbsEnv]) -> Optional[AbsEnv]:
        if isinstance(s, Assign) and post is not None:
            prev = self.sites.get(id(s))
            self.sites[id(s)] = post if prev is None else prev.join(post)
        return super()._bwd(s, post)


def _top_level_stmts(body: Stmt) -> Set[int]:
    """ids of statements executed unconditionally on every template run
    (reachable without entering a loop or conditional body)."""
    out: Set[int] = set()
    stack = [body]
    while stack:
        s = stack.pop()
        out.add(id(s))
        if isinstance(s, Seq):
            stack.extend(s.stmts)
    return out


def _hole_sites(body: Stmt) -> List[Tuple[Stmt, str, str, bool]]:
    """(stmt, hole_name, target_var, is_expr) for each hole occurrence
    that is a whole-RHS expression hole or a guard predicate hole."""
    sites: List[Tuple[Stmt, str, str, bool]] = []
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, Assign):
            for target, e in zip(stmt.targets, stmt.exprs):
                if isinstance(e, ast.Unknown):
                    sites.append((stmt, e.name, target, True))
        elif isinstance(stmt, (GIf, GWhile)):
            if isinstance(stmt.cond, ast.UnknownPred):
                sites.append((stmt, stmt.cond.name, "", False))
    return sites


def analyze_unknowns(program: ast.Program, inverse: ast.Program,
                     space, spec, sorts: Mapping[str, Sort],
                     max_rounds: int = 4) -> FwdBwdReport:
    """The iterative forward-backward unknowns analysis.

    ``space`` is the (possibly pruned) :class:`HoleSpace` whose candidate
    indices the refutations refer to; ``spec`` the
    :class:`~repro.pins.spec.InversionSpec` providing the identity
    postcondition; ``sorts`` the composed program's declarations.
    """
    expr_cands: Dict[str, Tuple[Expr, ...]] = dict(space.expr_holes)
    pred_cands: Dict[str, Tuple[Pred, ...]] = dict(space.pred_holes)

    # Forward facts at the template boundary: P's outputs are T's inputs.
    fwd_p = ForwardAnalyzer(sorts, unroll_fuel=0).run(program.body).final
    boundary = AbsEnv(sorts)
    for name in inverse.decls:
        val = fwd_p.get(name)
        if not val.is_top:
            boundary = boundary.set(name, val)

    # Necessary exit facts from the identity spec: each recovered scalar
    # must match the abstract value its forward counterpart can take.
    post = AbsEnv(sorts)
    for fwd_var, inv_var in spec.scalar_pairs:
        val = fwd_p.get(fwd_var)
        if not val.is_top:
            post = post.set(inv_var, val)

    sites = _hole_sites(inverse.body)
    top_level = _top_level_stmts(inverse.body)
    feasible: Dict[str, List[int]] = {}
    refuted: Dict[str, List[Refutation]] = {}
    for name, cands in expr_cands.items():
        feasible[name] = list(range(len(cands)))
        refuted[name] = []
    for name, cands in pred_cands.items():
        feasible[name] = list(range(len(cands)))
        refuted[name] = []

    def hole_eval(name: str, env: AbsEnv) -> Optional[AbsVal]:
        cands = expr_cands.get(name)
        if cands is None:
            return None
        live = feasible.get(name, ())
        if not live:
            return AbsVal.BOT
        out = AbsVal.BOT
        for i in live:
            out = out.join(eval_expr(cands[i], env))
            if out.is_top:
                break
        return out

    def run_passes(pinned: Optional[Tuple[str, Expr]] = None
                   ) -> Tuple[Dict[int, AbsEnv], Dict[int, AbsEnv]]:
        def pinned_eval(name: str, env: AbsEnv) -> Optional[AbsVal]:
            if pinned is not None and name == pinned[0]:
                return eval_expr(pinned[1], env)
            return hole_eval(name, env)

        fwd = _SiteForward(sorts, pinned_eval)
        fwd.run(inverse.body, boundary.copy())
        bwd = _SiteBackward(sorts)
        bwd.run(inverse.body, post.copy())
        return fwd.site_envs, bwd.sites

    def refute_at(stmt: Stmt, hole: str, target: str,
                  fwd_envs: Dict[int, AbsEnv], bwd_envs: Dict[int, AbsEnv],
                  sink) -> None:
        """Test each live candidate of ``hole`` against the meet of the
        forward state at its site and the backward-necessary value of its
        target; refuted indices go to ``sink(index, reason)``."""
        pre = fwd_envs.get(id(stmt))
        need = bwd_envs.get(id(stmt))
        if pre is None or need is None:
            return
        required = need.get(target)
        if required.is_top:
            return
        for i in list(feasible[hole]):
            cand = expr_cands[hole][i]
            val = eval_expr(cand, pre)
            if val.meet(required).is_bottom:
                sink(i, f"produces {val}, but {required} is necessary")
            elif refine_expr(cand, pre, required) is None:
                sink(i, f"no state at the site lets it reach {required}")

    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        fwd_envs, bwd_envs = run_passes()
        for stmt, hole, target, is_expr in sites:
            if id(stmt) not in top_level:
                continue
            if is_expr:
                def unit_sink(i: int, reason: str, hole=hole) -> None:
                    nonlocal changed
                    feasible[hole].remove(i)
                    refuted[hole].append(Refutation(
                        hole, i, str(expr_cands[hole][i]), reason))
                    changed = True
                refute_at(stmt, hole, target, fwd_envs, bwd_envs, unit_sink)
            else:
                # Guard candidates that can never be true in any state
                # reaching the site are degenerate (loop never entered /
                # branch dead).  Reported, never turned into clauses: a
                # degenerate guard is suspicious, not spec-violating.
                pre = fwd_envs.get(id(stmt))
                if pre is None:
                    continue
                for i in list(feasible[hole]):
                    cand = pred_cands[hole][i]
                    if refine_pred(cand, pre) is None:
                        feasible[hole].remove(i)
                        refuted[hole].append(Refutation(
                            hole, i, str(cand),
                            "conjunct false in every state arriving at the "
                            "guard (degenerate: the body never runs)"))
                        changed = True

    # Pairwise refinement: pin one top-level hole's candidate, re-run the
    # forward pass, and see which candidates at *other* top-level holes
    # become infeasible only under that choice.
    pairs: List[PairRefutation] = []
    expr_sites = [(stmt, hole, target) for stmt, hole, target, is_expr in sites
                  if is_expr and id(stmt) in top_level and hole in expr_cands]
    for stmt_a, hole_a, _target_a in expr_sites:
        for i in feasible[hole_a]:
            fwd_envs, bwd_envs = run_passes(
                pinned=(hole_a, expr_cands[hole_a][i]))
            for stmt_b, hole_b, target_b in expr_sites:
                if hole_b == hole_a:
                    continue

                def pair_sink(j: int, reason: str,
                              hole_a=hole_a, i=i, hole_b=hole_b) -> None:
                    if j not in feasible[hole_b]:
                        return  # already refuted unconditionally
                    key = ((hole_a, i), (hole_b, j))
                    if all(p.first != key[0] or p.second != key[1]
                           for p in pairs):
                        pairs.append(PairRefutation(
                            key[0], key[1],
                            f"under {hole_a}={expr_cands[hole_a][i]}: "
                            f"{reason}"))
                refute_at(stmt_b, hole_b, target_b, fwd_envs, bwd_envs,
                          pair_sink)

    report = FwdBwdReport(
        program=inverse.name,
        iterations=rounds,
        boundary=str(boundary),
        pairs=tuple(pairs),
    )
    for name, cands in expr_cands.items():
        report.feasible[name] = FeasibleSet(
            name, "expr", len(cands), tuple(feasible[name]),
            tuple(refuted[name]))
        if refuted[name]:
            report.refuted_exprs[name] = tuple(
                expr_cands[name][r.index] for r in refuted[name])
    for name, cands in pred_cands.items():
        report.feasible[name] = FeasibleSet(
            name, "pred", len(cands), tuple(feasible[name]),
            tuple(refuted[name]))
    return report
