"""Fixpoint abstract interpretation over the Fig. 2 IR.

The engine evaluates programs (and straight-line SSA paths) over the
reduced product of intervals, congruences, and signs from
:mod:`repro.analysis.domains`.  Three layers:

* **expression/predicate transfer** — :func:`eval_expr`, :func:`eval_pred`
  compute abstract values; :func:`refine_pred` / :func:`refine_expr` push
  an assumed fact *backward* into the variables it mentions (the
  precondition transfer);
* **constraint saturation** — :func:`saturate` round-robins refinement
  over a ground predicate list until fixpoint.  On SSA path items
  (``x#3 = e`` equalities plus guards) each sweep propagates information
  both forward (defs to uses) and backward (a later guard through the
  defining equality into its operands), so iterating sweeps *is* the
  forward–backward iteration of Yoon et al.;
* **program analysis** — :class:`ForwardAnalyzer` runs a structural
  fixpoint over ``Stmt`` trees with widening/narrowing at loop heads
  (plus bounded concrete unrolling when every guard is decided, which
  makes singleton input boxes exact), and :class:`BackwardAnalyzer`
  computes necessary preconditions; :func:`forward_backward_prove`
  composes the two to refute a violation predicate.

Soundness direction: every abstract state over-approximates the set of
reachable concrete states, so a ``⊥`` result proves concrete
unreachability.  Division by zero raises in the concrete interpreter
(killing the execution), so the abstract divide/modulo transfer ignores
the zero divisor — matching those semantics exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.ast import (ArithOp, Assign, Assume, BinOp, BoolLit, Cmp, CmpOp,
                        Exit, Expr, GIf, GWhile, If, In, IntLit, Out, Pred,
                        Seq, Skip, Sort, Stmt, Var, While, negate)
from .domains import AbsVal, Interval, binop, cmp_values, refine_cmp
from .prune import static_pruning_enabled

ENV_FLAG = "REPRO_ABSINT"


def absint_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the absint switch: explicit override, else env, else follow
    the static-pruning switch (baselines run fully unpruned)."""
    if override is not None:
        return override
    raw = os.environ.get(ENV_FLAG)
    if raw is not None:
        return raw.strip().lower() not in ("0", "false", "off")
    return static_pruning_enabled(None)


def base_name(name: str) -> str:
    """Strip an SSA version suffix (``ip#3`` -> ``ip``)."""
    return name.split("#", 1)[0]


# ---------------------------------------------------------------------------
# Abstract environments
# ---------------------------------------------------------------------------


class AbsEnv:
    """Maps INT-sorted variables to abstract values; absent means TOP.

    Variables whose base name is not declared with sort INT are never
    tracked (``get`` answers TOP, ``set`` is a no-op), so array/string
    comparisons can never contaminate the numeric state.
    """

    __slots__ = ("sorts", "vars", "bottom")

    def __init__(self, sorts: Mapping[str, Sort],
                 vars: Optional[Dict[str, AbsVal]] = None,
                 bottom: bool = False):
        self.sorts = sorts
        self.vars: Dict[str, AbsVal] = vars if vars is not None else {}
        self.bottom = bottom

    def tracks(self, name: str) -> bool:
        return self.sorts.get(base_name(name)) is Sort.INT

    def get(self, name: str) -> AbsVal:
        if self.bottom:
            return AbsVal.BOT
        return self.vars.get(name, AbsVal.TOP)

    def set(self, name: str, val: AbsVal) -> "AbsEnv":
        """Functional update; an untracked name or TOP value clears the slot."""
        if self.bottom or not self.tracks(name):
            return self
        new = dict(self.vars)
        if val.is_top:
            new.pop(name, None)
        else:
            new[name] = val
        return AbsEnv(self.sorts, new, False)

    def copy(self) -> "AbsEnv":
        return AbsEnv(self.sorts, dict(self.vars), self.bottom)

    def as_bottom(self) -> "AbsEnv":
        return AbsEnv(self.sorts, {}, True)

    def same(self, other: "AbsEnv") -> bool:
        if self.bottom or other.bottom:
            return self.bottom == other.bottom
        return self.vars == other.vars

    def leq(self, other: "AbsEnv") -> bool:
        if self.bottom:
            return True
        if other.bottom:
            return False
        return all(self.get(k).leq(v) for k, v in other.vars.items())

    def _merge(self, other: "AbsEnv", op: str) -> "AbsEnv":
        if self.bottom:
            return other if op != "narrow" else other
        if other.bottom:
            return self if op in ("join", "widen") else other
        out: Dict[str, AbsVal] = {}
        if op in ("join", "widen"):
            for k in self.vars:
                if k in other.vars:
                    v = getattr(self.vars[k], op)(other.vars[k])
                    if not v.is_top:
                        out[k] = v
        else:  # narrow adopts constraints from either side
            for k in set(self.vars) | set(other.vars):
                v = self.get(k).narrow(other.get(k))
                if not v.is_top:
                    out[k] = v
        return AbsEnv(self.sorts, out, False)

    def join(self, other: "AbsEnv") -> "AbsEnv":
        return self._merge(other, "join")

    def widen(self, other: "AbsEnv") -> "AbsEnv":
        return self._merge(other, "widen")

    def narrow(self, other: "AbsEnv") -> "AbsEnv":
        return self._merge(other, "narrow")

    def meet(self, other: "AbsEnv") -> Optional["AbsEnv"]:
        """Greatest lower bound; None when the meet is empty."""
        if self.bottom or other.bottom:
            return None
        out = dict(self.vars)
        for k, v in other.vars.items():
            merged = out[k].meet(v) if k in out else v
            if merged.is_bottom:
                return None
            out[k] = merged
        return AbsEnv(self.sorts, out, False)

    def havoc(self, names: Iterable[str]) -> "AbsEnv":
        if self.bottom:
            return self
        out = dict(self.vars)
        for n in names:
            out.pop(n, None)
        return AbsEnv(self.sorts, out, False)

    def __str__(self) -> str:
        if self.bottom:
            return "⊥"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.vars.items()))
        return "{" + inner + "}"


# ---------------------------------------------------------------------------
# Expression / predicate transfer
# ---------------------------------------------------------------------------


def eval_expr(e: Expr, env: AbsEnv) -> AbsVal:
    """Abstract value of ``e``; anything non-numeric is TOP."""
    if isinstance(e, IntLit):
        return AbsVal.const(e.value)
    if isinstance(e, Var):
        return env.get(e.name)
    if isinstance(e, BinOp):
        return binop(e.op, eval_expr(e.left, env), eval_expr(e.right, env))
    return AbsVal.TOP


def eval_pred(p: Pred, env: AbsEnv) -> Optional[bool]:
    """Three-valued truth of ``p``; None when the domains cannot decide."""
    if isinstance(p, BoolLit):
        return p.value
    if isinstance(p, Cmp):
        return cmp_values(p.op, eval_expr(p.left, env), eval_expr(p.right, env))
    if isinstance(p, ast.Not):
        sub = eval_pred(p.pred, env)
        return None if sub is None else not sub
    if isinstance(p, ast.And):
        saw_none = False
        for part in p.parts:
            r = eval_pred(part, env)
            if r is False:
                return False
            if r is None:
                saw_none = True
        return None if saw_none else True
    if isinstance(p, ast.Or):
        saw_none = False
        for part in p.parts:
            r = eval_pred(part, env)
            if r is True:
                return True
            if r is None:
                saw_none = True
        return None if saw_none else False
    return None


def _exact_div(target: Interval, c: int) -> Interval:
    """{x : c*x within target}, for a nonzero constant c."""
    lo, hi = target.lo, target.hi
    if c < 0:
        lo, hi = (None if hi is None else -hi), (None if lo is None else -lo)
        c = -c
    lo2 = None if lo is None else -((-lo) // c)  # ceil(lo / c)
    hi2 = None if hi is None else hi // c
    return Interval.make(lo2, hi2)


def refine_expr(e: Expr, env: AbsEnv, target: AbsVal) -> Optional[AbsEnv]:
    """Refine ``env`` under the assumption that ``e`` evaluates into
    ``target``; None means no concrete state is consistent with it."""
    if target.is_bottom:
        return None
    if target.is_top:
        return env
    if isinstance(e, IntLit):
        return env if target.contains(e.value) else None
    if isinstance(e, Var):
        if not env.tracks(e.name):
            return env
        merged = env.get(e.name).meet(target)
        if merged.is_bottom:
            return None
        return env.set(e.name, merged)
    if isinstance(e, BinOp):
        lv = eval_expr(e.left, env)
        rv = eval_expr(e.right, env)
        cur = binop(e.op, lv, rv).meet(target)
        if cur.is_bottom:
            return None
        if e.op is ArithOp.ADD:
            lt = binop(ArithOp.SUB, cur, rv)
            rt = binop(ArithOp.SUB, cur, lv)
        elif e.op is ArithOp.SUB:
            lt = binop(ArithOp.ADD, cur, rv)
            rt = binop(ArithOp.SUB, lv, cur)
        elif e.op is ArithOp.MUL:
            lt = rt = None
            c = rv.as_const()
            if c is not None and c != 0:
                lt = AbsVal.make(_exact_div(cur.interval, c))
            c = lv.as_const()
            if c is not None and c != 0:
                rt = AbsVal.make(_exact_div(cur.interval, c))
        elif e.op is ArithOp.DIV:
            # x // c = q  (c > 0 const)  ==>  x in [q.lo*c, (q.hi+1)*c - 1]
            lt = rt = None
            c = rv.as_const()
            if c is not None and c > 0:
                qlo, qhi = cur.interval.lo, cur.interval.hi
                lt = AbsVal.make(Interval.make(
                    None if qlo is None else qlo * c,
                    None if qhi is None else (qhi + 1) * c - 1))
        else:
            lt = rt = None
        if lt is not None:
            env2 = refine_expr(e.left, env, lt)
            if env2 is None:
                return None
            env = env2
        if rt is not None:
            env2 = refine_expr(e.right, env, rt)
            if env2 is None:
                return None
            env = env2
        return env
    return env  # Select / Update / FunApp / holes: nothing to learn


def refine_pred(p: Pred, env: AbsEnv, result: bool = True
                ) -> Optional[AbsEnv]:
    """Refine ``env`` assuming ``p`` evaluates to ``result``.

    Returns None (⊥) when the assumption is abstractly inconsistent —
    a sound proof that no concrete state in γ(env) satisfies it.
    """
    if env.bottom:
        return None
    if isinstance(p, BoolLit):
        return env if p.value == result else None
    if isinstance(p, ast.Not):
        return refine_pred(p.pred, env, not result)
    if isinstance(p, Cmp):
        op = p.op if result else p.op.negate()
        lv = eval_expr(p.left, env)
        rv = eval_expr(p.right, env)
        la, ra = refine_cmp(op, lv, rv)
        if la.is_bottom or ra.is_bottom:
            return None
        if la is not lv:
            env2 = refine_expr(p.left, env, la)
            if env2 is None:
                return None
            env = env2
        if ra is not rv:
            return refine_expr(p.right, env, ra)
        return env
    conj_parts: Optional[Tuple[Pred, ...]] = None
    disj_parts: Optional[Tuple[Pred, ...]] = None
    if isinstance(p, ast.And):
        conj_parts = p.parts if result else None
        disj_parts = None if result else p.parts
    elif isinstance(p, ast.Or):
        disj_parts = p.parts if result else None
        conj_parts = None if result else p.parts
    if conj_parts is not None:
        # Two sweeps so facts learned from later conjuncts flow back.
        for _ in range(2):
            for part in conj_parts:
                nxt = refine_pred(part, env, result)
                if nxt is None:
                    return None
                env = nxt
        return env
    if disj_parts is not None:
        joined: Optional[AbsEnv] = None
        for part in disj_parts:
            branch = refine_pred(part, env, result)
            if branch is not None:
                joined = branch if joined is None else joined.join(branch)
        return joined
    return env  # UnknownPred / HolePred: no information


# ---------------------------------------------------------------------------
# Constraint saturation over ground predicate lists (SSA paths)
# ---------------------------------------------------------------------------


def saturate(preds: Sequence[Pred], sorts: Mapping[str, Sort],
             env: Optional[AbsEnv] = None, rounds: int = 3
             ) -> Optional[AbsEnv]:
    """Iterated forward–backward refinement over a predicate conjunction.

    On SSA path items each sweep pushes definitions forward and, via
    :func:`refine_expr`, guard facts backward through the defining
    equalities.  None proves the conjunction unsatisfiable.
    """
    if env is None:
        env = AbsEnv(sorts)
    for _ in range(max(1, rounds)):
        before = env
        for p in preds:
            nxt = refine_pred(p, env)
            if nxt is None:
                return None
            env = nxt
        if env.same(before):
            break
    return env


def preds_unsat(preds: Sequence[Pred], sorts: Mapping[str, Sort],
                rounds: int = 3) -> bool:
    """True when the conjunction is *proved* unsatisfiable abstractly."""
    return saturate(preds, sorts, rounds=rounds) is None


# ---------------------------------------------------------------------------
# Structural forward analysis with widening / narrowing
# ---------------------------------------------------------------------------


@dataclass
class LoopInfo:
    """Converged facts about one loop head."""

    loop_id: str
    invariant: AbsEnv
    entered: bool          # the guard may hold at the head
    exit_reachable: bool   # the negated guard may hold at the head

    @property
    def certainly_diverges(self) -> bool:
        """The head is reachable, the body runs, and the guard provably
        never becomes false: certain non-termination."""
        return (self.entered and not self.exit_reachable
                and not self.invariant.bottom)


@dataclass
class AnalysisResult:
    final: AbsEnv                 # join over normal completion and exits
    loops: List[LoopInfo]


class ForwardAnalyzer:
    """Abstract-interprets a ``Stmt`` tree from an entry environment.

    Loops run a Kleene iteration with delayed widening and a short
    narrowing phase.  When ``unroll_fuel`` is positive and a guard is
    *decided* by the current state, the loop is instead stepped
    concretely-in-the-abstract (exact on singleton boxes) until the
    guard turns false, fuel runs out, or decidability is lost — at which
    point the analysis falls back to the widening fixpoint, so the
    result is sound regardless.
    """

    def __init__(self, sorts: Mapping[str, Sort], widen_delay: int = 2,
                 max_iters: int = 40, narrow_iters: int = 2,
                 unroll_fuel: int = 0):
        self.sorts = dict(sorts)
        self.widen_delay = widen_delay
        self.max_iters = max_iters
        self.narrow_iters = narrow_iters
        self.unroll_fuel = unroll_fuel

    def run(self, stmt: Stmt, entry: Optional[AbsEnv] = None
            ) -> AnalysisResult:
        self._exits: List[AbsEnv] = []
        self._loops: Dict[int, LoopInfo] = {}
        self._fuel = self.unroll_fuel
        env = entry if entry is not None else AbsEnv(self.sorts)
        out = self._stmt(stmt, env)
        for e in self._exits:
            out = out.join(e)
        return AnalysisResult(out, list(self._loops.values()))

    # -- statement dispatch -------------------------------------------------

    def _stmt(self, s: Stmt, env: AbsEnv) -> AbsEnv:
        if env.bottom:
            return env
        if isinstance(s, Seq):
            for sub in s.stmts:
                env = self._stmt(sub, env)
                if env.bottom:
                    break
            return env
        if isinstance(s, Assign):
            vals = [eval_expr(e, env) for e in s.exprs]
            for t, v in zip(s.targets, vals):
                env = env.set(t, v)
            return env
        if isinstance(s, Assume):
            refined = refine_pred(s.pred, env)
            return refined if refined is not None else env.as_bottom()
        if isinstance(s, GIf):
            t_in = refine_pred(s.cond, env)
            e_in = refine_pred(negate(s.cond), env)
            t_out = self._stmt(s.then, t_in) if t_in is not None else env.as_bottom()
            e_out = self._stmt(s.els, e_in) if e_in is not None else env.as_bottom()
            return t_out.join(e_out)
        if isinstance(s, If):
            return self._stmt(s.then, env).join(self._stmt(s.els, env))
        if isinstance(s, GWhile):
            return self._loop(s, env, s.cond, s.body, s.loop_id)
        if isinstance(s, While):
            return self._loop(s, env, None, s.body, s.loop_id)
        if isinstance(s, Exit):
            self._exits.append(env)
            return env.as_bottom()
        return env  # In / Out / Skip

    # -- loops --------------------------------------------------------------

    def _loop(self, node: Stmt, env: AbsEnv, cond: Optional[Pred],
              body: Stmt, loop_id: str) -> AbsEnv:
        state = env
        # Phase 1: decided-guard unrolling (exact when state is precise).
        if cond is not None:
            while self._fuel > 0 and not state.bottom:
                decided = eval_pred(cond, state)
                if decided is False:
                    exit_env = refine_pred(negate(cond), state)
                    self._record(node, loop_id, state, entered=False,
                                 exit_reachable=True)
                    return exit_env if exit_env is not None else state
                if decided is not True:
                    break
                self._fuel -= 1
                entry = refine_pred(cond, state)
                state = (self._stmt(body, entry) if entry is not None
                         else state.as_bottom())
        # Phase 2: Kleene iteration with delayed widening.
        inv = state
        for i in range(self.max_iters):
            inv2 = self._iterate(state, inv, cond, body)
            if inv2.leq(inv):
                break
            inv = inv.widen(inv2) if i >= self.widen_delay else inv2
        else:
            inv = AbsEnv(self.sorts)  # safety net: give up to TOP
        # Phase 3: narrowing recovers precision lost to widening.
        for _ in range(self.narrow_iters):
            step = self._iterate(state, inv, cond, body)
            # Decreasing Kleene step: when F(inv) ⊑ inv, F(inv) still
            # over-approximates the least fixpoint (monotonicity), so
            # adopting it wholesale undoes finite threshold jumps, not
            # just the infinities classic narrowing recovers.
            refined = step if step.leq(inv) else inv.narrow(step)
            if refined.same(inv):
                break
            inv = refined
        if cond is None:
            self._record(node, loop_id, inv, entered=not inv.bottom,
                         exit_reachable=not inv.bottom)
            return inv
        entered = refine_pred(cond, inv) is not None
        exit_env = refine_pred(negate(cond), inv)
        self._record(node, loop_id, inv, entered=entered,
                     exit_reachable=exit_env is not None)
        return exit_env if exit_env is not None else inv.as_bottom()

    def _iterate(self, state: AbsEnv, inv: AbsEnv, cond: Optional[Pred],
                 body: Stmt) -> AbsEnv:
        """One application of the loop functional: entry ∪ body(guard∩inv)."""
        if cond is None:
            entry: Optional[AbsEnv] = inv
        else:
            entry = refine_pred(cond, inv)
        body_out = (self._stmt(body, entry) if entry is not None
                    else inv.as_bottom())
        return state.join(body_out)

    def _record(self, node: Stmt, loop_id: str, inv: AbsEnv, entered: bool,
                exit_reachable: bool) -> None:
        self._loops[id(node)] = LoopInfo(loop_id, inv, entered, exit_reachable)

    def loop_info(self, node: Stmt) -> Optional[LoopInfo]:
        """Converged facts for one loop statement of the last ``run``."""
        return self._loops.get(id(node))


# ---------------------------------------------------------------------------
# Backward (necessary-precondition) analysis
# ---------------------------------------------------------------------------


class BackwardAnalyzer:
    """Necessary preconditions: given constraints on the state a program
    terminates in, compute constraints any *starting* state must satisfy
    for some execution to reach it.  None means no execution can.

    Loops havoc their assigned variables (sound, imprecise); ``exit``
    statements terminate the program, so their backward post is the
    program-level postcondition rather than the sequential continuation.
    """

    def __init__(self, sorts: Mapping[str, Sort]):
        self.sorts = dict(sorts)

    def run(self, stmt: Stmt, post: AbsEnv) -> Optional[AbsEnv]:
        self._final_post = post
        return self._bwd(stmt, post)

    def _bwd(self, s: Stmt, post: Optional[AbsEnv]) -> Optional[AbsEnv]:
        if post is None:
            return None
        if isinstance(s, Seq):
            for sub in reversed(s.stmts):
                post = self._bwd(sub, post)
                if post is None:
                    return None
            return post
        if isinstance(s, Assign):
            targets = [t for t in s.targets if post.tracks(t)]
            required = [post.get(t) for t in targets]
            pre: Optional[AbsEnv] = post.havoc(targets)
            for t, req in zip(targets, required):
                expr = s.exprs[s.targets.index(t)]
                pre = refine_expr(expr, pre, req)
                if pre is None:
                    return None
            return pre
        if isinstance(s, Assume):
            return refine_pred(s.pred, post)
        if isinstance(s, GIf):
            t_pre = self._bwd(s.then, post)
            e_pre = self._bwd(s.els, post)
            t_pre = refine_pred(s.cond, t_pre) if t_pre is not None else None
            e_pre = (refine_pred(negate(s.cond), e_pre)
                     if e_pre is not None else None)
            if t_pre is None:
                return e_pre
            if e_pre is None:
                return t_pre
            return t_pre.join(e_pre)
        if isinstance(s, If):
            t_pre = self._bwd(s.then, post)
            e_pre = self._bwd(s.els, post)
            if t_pre is None:
                return e_pre
            if e_pre is None:
                return t_pre
            return t_pre.join(e_pre)
        if isinstance(s, (GWhile, While)):
            return post.havoc(ast.assigned_vars(s.body))
        if isinstance(s, Exit):
            return self._final_post
        return post  # In / Out / Skip


def forward_backward_prove(stmt: Stmt, sorts: Mapping[str, Sort],
                           entry: AbsEnv, violation: Pred,
                           rounds: int = 2, unroll_fuel: int = 0) -> bool:
    """True when forward–backward iteration proves no execution of
    ``stmt`` from γ(entry) terminates in a state satisfying ``violation``.
    """
    fwd = ForwardAnalyzer(sorts, unroll_fuel=unroll_fuel)
    current = entry
    for _ in range(max(1, rounds)):
        result = fwd.run(stmt, current)
        if result.final.bottom:
            return True  # no terminating execution at all: vacuous
        post = refine_pred(violation, result.final)
        if post is None:
            return True
        necessary = BackwardAnalyzer(sorts).run(stmt, post)
        if necessary is None:
            return True
        refined = current.meet(necessary)
        if refined is None:
            return True
        if refined.same(current):
            return False  # stabilized without reaching ⊥
        current = refined
    return False
