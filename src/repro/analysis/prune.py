"""Static pruning of the per-hole candidate space.

Before ``solve()`` turns a :class:`~repro.pins.template.HoleSpace` into
indicator variables for the SAT core, this pass drops candidates that a
dataflow argument shows can never appear in a meaningful inverse:

* **Definedness** — a candidate that reads a scalar variable with *no*
  reaching definition at the hole's site reads an unconstrained initial
  value; the instantiated program's behaviour would depend on junk, so
  the candidate cannot participate in a correct inverse.  Array-sorted
  variables are exempt (the suite's incremental ``upd`` builds read the
  array's initial value by design).
* **Sorts** — :meth:`HoleSpace.build` already filters holes that form an
  entire assignment RHS; this pass extends the check to holes *nested*
  inside expressions (array indices, update values, arithmetic operands)
  where the surrounding context fixes the expected sort.

Both arguments are per-site: a hole occurring at several sites is pruned
against each of them, since one candidate fills every site at once.

A hole's candidate set is never emptied: if every candidate would be
pruned the original set is kept and a note is recorded, because the
enumerator treats an empty expression hole as a hard error.  Auxiliary
holes (``rank!*`` ranking functions, ``inv!*`` invariants) are left
untouched — they are evaluated under different quantification.

The pass is on by default and can be disabled with the environment
variable ``REPRO_STATIC_PRUNING=0`` (A/B debugging; the test suite's
``--no-static-pruning`` flag sets it for a whole run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..lang import ast
from ..lang.ast import Expr, Pred, Sort, Stmt
from .cfg import BRANCH, build_cfg
from .dataflow import reaching_definitions
from .sorts import SortContext, candidate_fits

ENV_FLAG = "REPRO_STATIC_PRUNING"
_AUX_PREFIXES = ("rank!", "inv!")


def static_pruning_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the pruning switch: explicit override, else env, else on."""
    if override is not None:
        return override
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in ("0", "false", "off")


@dataclass(frozen=True)
class HolePruning:
    """Per-hole before/after accounting."""

    hole: str
    before: int
    after: int

    @property
    def removed(self) -> int:
        return self.before - self.after


@dataclass
class PruneReport:
    """What static pruning did to one hole space."""

    holes: List[HolePruning] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def indicators_removed(self) -> int:
        return sum(h.removed for h in self.holes)

    @property
    def indicators_before(self) -> int:
        return sum(h.before for h in self.holes)

    @property
    def indicators_after(self) -> int:
        return sum(h.after for h in self.holes)

    def describe(self) -> str:
        lines = []
        for h in self.holes:
            mark = f"{h.before} -> {h.after}" if h.removed else str(h.before)
            lines.append(f"  [{h.hole}]: {mark}")
        if self.notes:
            lines.extend(f"  note: {n}" for n in self.notes)
        total = (f"pruned {self.indicators_removed}/{self.indicators_before} "
                 f"indicator(s)")
        return "\n".join([total] + lines)


@dataclass(frozen=True)
class _Site:
    """One occurrence of a hole: undefined scalars at its node, plus the
    sort the surrounding expression context expects (None if unknown)."""

    undefined: FrozenSet[str]
    expected_sort: Optional[Sort]


def _expected_sorts(expr: Expr, expected: Optional[Sort],
                    decls: Mapping[str, Sort],
                    out: Dict[str, List[Optional[Sort]]]) -> None:
    """Record the expected sort of every ``Unknown`` under ``expr``."""
    if isinstance(expr, ast.Unknown):
        out.setdefault(expr.name, []).append(expected)
        return
    if isinstance(expr, ast.BinOp):
        _expected_sorts(expr.left, Sort.INT, decls, out)
        _expected_sorts(expr.right, Sort.INT, decls, out)
        return
    if isinstance(expr, ast.Select):
        _expected_sorts(expr.array, None, decls, out)
        _expected_sorts(expr.index, Sort.INT, decls, out)
        return
    if isinstance(expr, ast.Update):
        elem = None
        if isinstance(expr.array, ast.Var):
            arr_sort = decls.get(expr.array.name)
            if arr_sort is not None and arr_sort.is_array:
                elem = arr_sort.element()
        _expected_sorts(expr.array, expected, decls, out)
        _expected_sorts(expr.index, Sort.INT, decls, out)
        _expected_sorts(expr.value, elem, decls, out)
        return
    if isinstance(expr, ast.FunApp):
        for arg in expr.args:
            _expected_sorts(arg, None, decls, out)
        return
    # Var / IntLit / HoleExpr: no holes below.


def _pred_holes_in(pred: Pred) -> FrozenSet[str]:
    return frozenset(
        n.name for n in ast.walk_exprs(pred) if isinstance(n, ast.UnknownPred)
    )


def _expr_holes_in_pred(pred: Pred, decls: Mapping[str, Sort],
                        out: Dict[str, List[Optional[Sort]]]) -> None:
    for n in ast.walk_exprs(pred):
        if isinstance(n, ast.Cmp):
            _expected_sorts(n.left, None, decls, out)
            _expected_sorts(n.right, None, decls, out)


def _reads_undefined(candidate, undefined: FrozenSet[str]) -> bool:
    return bool(ast.expr_vars(candidate) & undefined)


def collect_hole_sites(template_body: Stmt,
                       decls: Mapping[str, Sort],
                       entry_defined: Iterable[str] = (),
                       ) -> Tuple[Dict[str, List[_Site]], Dict[str, List[_Site]]]:
    """Map each expr-hole / pred-hole name to its occurrence sites."""
    cfg = build_cfg(template_body)
    reaching = reaching_definitions(cfg, entry_defined)
    expr_sites: Dict[str, List[_Site]] = {}
    pred_sites: Dict[str, List[_Site]] = {}

    for node in cfg.statement_nodes():
        facts = reaching.get(node.index, frozenset())
        defined = {var for (var, _site) in facts}
        undefined = frozenset(
            var for var, sort in decls.items()
            if not sort.is_array and var not in defined
        )
        stmt = node.stmt
        expected: Dict[str, List[Optional[Sort]]] = {}
        preds_here: List[Pred] = []
        if isinstance(stmt, ast.Assign):
            for target, e in zip(stmt.targets, stmt.exprs):
                _expected_sorts(e, decls.get(target), decls, expected)
        elif isinstance(stmt, ast.Assume):
            preds_here.append(stmt.pred)
        elif node.kind == BRANCH and node.pred is not None:
            preds_here.append(node.pred)
        for p in preds_here:
            _expr_holes_in_pred(p, decls, expected)
            for name in _pred_holes_in(p):
                pred_sites.setdefault(name, []).append(
                    _Site(undefined=undefined, expected_sort=None))
        for name, sorts in expected.items():
            for s in sorts:
                expr_sites.setdefault(name, []).append(
                    _Site(undefined=undefined, expected_sort=s))
    return expr_sites, pred_sites


def prune_hole_space(space, template_body: Stmt,
                     decls: Mapping[str, Sort],
                     extern_sorts: object = None,
                     entry_defined: Iterable[str] = ()):
    """Return ``(pruned_space, report)``; the input space is not mutated."""
    ctx = SortContext(decls, extern_sorts)
    expr_sites, pred_sites = collect_hole_sites(
        template_body, decls, entry_defined)
    report = PruneReport()

    def keep_expr(name: str, cand: Expr) -> bool:
        for site in expr_sites.get(name, ()):
            if _reads_undefined(cand, site.undefined):
                return False
            if site.expected_sort is not None and not candidate_fits(
                    cand, site.expected_sort, ctx):
                return False
        return True

    def keep_pred(name: str, cand: Pred) -> bool:
        for site in pred_sites.get(name, ()):
            if _reads_undefined(cand, site.undefined):
                return False
        return True

    def prune(holes, keep, aux_exempt: bool):
        out = []
        for name, cands in holes:
            if aux_exempt and name.startswith(_AUX_PREFIXES):
                out.append((name, cands))
                continue
            kept = tuple(c for c in cands if keep(name, c))
            if not kept and cands:
                report.notes.append(
                    f"[{name}]: all {len(cands)} candidate(s) looked "
                    f"prunable; keeping the original set")
                kept = cands
            report.holes.append(HolePruning(name, len(cands), len(kept)))
            out.append((name, kept))
        return tuple(out)

    pruned = type(space)(
        expr_holes=prune(space.expr_holes, keep_expr, aux_exempt=True),
        pred_holes=prune(space.pred_holes, keep_pred, aux_exempt=True),
        rank_holes=space.rank_holes,
        max_pred_conj=space.max_pred_conj,
    )
    return pruned, report
