"""Sound numeric abstract domains: intervals, congruences, signs.

Three classic non-relational lattices over the integers, combined as a
*reduced product* (:class:`AbsVal`):

* :class:`Interval` — ``[lo, hi]`` with ``None`` for the infinities; the
  workhorse for range reasoning and guard refinement.
* :class:`Congruence` — the set ``{rem + modulus * k}``; ``modulus = 0``
  denotes the constant ``rem``, ``modulus = 1`` denotes every integer.
  Captures parity and stride facts (``i`` increases by 2, ``n * 4``, …).
* :class:`Sign` — a bitmask over ``{negative, zero, positive}``; cheap
  to decide and the reduction glue between the other two.

Every transfer function mirrors :class:`repro.concrete.interp.Interpreter`
exactly: division floors toward negative infinity (Python ``//``), modulo
follows Python ``%``, and division by zero concretizes to *no* value (the
concrete interpreter raises, killing the execution), which the abstract
transfer soundly over-approximates with ``top`` when the divisor may be
zero and the dividend contributes nothing.

The soundness contract, tested property-style in
``tests/analysis/test_domains.py``::

    forall concrete x in gamma(a), y in gamma(b):
        x OP y in gamma(transfer_OP(a, b))       (when defined)
        cmp(op, a, b) in {None, truth of x op y}

Lattice operations (``join``, ``meet``, ``widen``, ``narrow``) obey the
usual laws; ``widen`` jumps unstable bounds to the infinities so chains
stabilize in finitely many steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..lang.ast import ArithOp, CmpOp

# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------

_WIDEN_STEPS = (-64, -8, -1, 0, 1, 8, 64)
"""Widening thresholds: unstable bounds jump outward to the next
threshold before giving up to infinity, which preserves small constants
(loop bounds like 0 or 1) through one extra iteration."""


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` over the integers; ``None`` bounds are infinite.

    The empty interval is represented by the canonical :data:`Interval.BOT`
    (``lo=1, hi=0``); constructors normalize through :meth:`make`.
    """

    lo: Optional[int]
    hi: Optional[int]

    BOT: "Interval" = None  # type: ignore[assignment]
    TOP: "Interval" = None  # type: ignore[assignment]

    @staticmethod
    def make(lo: Optional[int], hi: Optional[int]) -> "Interval":
        if lo is not None and hi is not None and lo > hi:
            return Interval.BOT
        return Interval(lo, hi)

    @staticmethod
    def const(n: int) -> "Interval":
        return Interval(n, n)

    @property
    def is_bottom(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def as_const(self) -> Optional[int]:
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    def contains(self, n: int) -> bool:
        if self.is_bottom:
            return False
        if self.lo is not None and n < self.lo:
            return False
        if self.hi is not None and n > self.hi:
            return False
        return True

    def leq(self, other: "Interval") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.BOT
        lo = self.lo if other.lo is None else (other.lo if self.lo is None
                                               else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None
                                               else min(self.hi, other.hi))
        return Interval.make(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard threshold widening: ``self ∇ other``."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo: Optional[int] = self.lo
        if other.lo is None or (lo is not None and other.lo < lo):
            lo = None
            for t in reversed(_WIDEN_STEPS):
                if other.lo is not None and other.lo >= t:
                    lo = t
                    break
        hi: Optional[int] = self.hi
        if other.hi is None or (hi is not None and other.hi > hi):
            hi = None
            for t in _WIDEN_STEPS:
                if other.hi is not None and other.hi <= t:
                    hi = t
                    break
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Standard narrowing: refine infinite bounds from ``other``."""
        if self.is_bottom or other.is_bottom:
            return Interval.BOT
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        return Interval.make(lo, hi)

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


Interval.BOT = Interval(1, 0)
Interval.TOP = Interval(None, None)


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def interval_add(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return Interval.BOT
    return Interval(_add(a.lo, b.lo), _add(a.hi, b.hi))


def interval_sub(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return Interval.BOT
    return Interval(_add(a.lo, None if b.hi is None else -b.hi),
                    _add(a.hi, None if b.lo is None else -b.lo))


def _mul_bound(a: Optional[int], b: Optional[int], sign: int) -> Optional[int]:
    """a * b with None = infinity of the given sign for limit purposes."""
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


def interval_mul(a: Interval, b: Interval) -> Interval:
    if a.is_bottom or b.is_bottom:
        return Interval.BOT
    # Corner products; None (infinite) corners poison a bound unless the
    # other factor is exactly zero.
    corners = []
    infinite = False
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if x == 0 or y == 0:
                corners.append(0)
            elif x is None or y is None:
                infinite = True
            else:
                corners.append(x * y)
    if infinite:
        # A finite result bound survives only when the infinite side is
        # one-sided and signs cooperate; keep it simple and sound.
        if a.as_const() == 0 or b.as_const() == 0:
            return Interval.const(0)
        return Interval.TOP
    return Interval(min(corners), max(corners))


def interval_div(a: Interval, b: Interval) -> Interval:
    """Floor division (toward -inf), divisor zero excluded from gamma."""
    if a.is_bottom or b.is_bottom:
        return Interval.BOT
    # Split the divisor around zero; division by zero has no concrete
    # outcome, so it contributes nothing to the result.
    pieces = []
    for part in (b.meet(Interval(None, -1)), b.meet(Interval(1, None))):
        if part.is_bottom:
            continue
        if a.lo is None or a.hi is None or part.lo is None or part.hi is None:
            return Interval.TOP
        corners = [x // y for x in (a.lo, a.hi) for y in (part.lo, part.hi)]
        pieces.append(Interval(min(corners), max(corners)))
    if not pieces:
        return Interval.BOT
    out = pieces[0]
    for p in pieces[1:]:
        out = out.join(p)
    return out


def interval_mod(a: Interval, b: Interval) -> Interval:
    """Python ``%`` semantics: result sign follows the divisor."""
    if a.is_bottom or b.is_bottom:
        return Interval.BOT
    ca, cb = a.as_const(), b.as_const()
    if ca is not None and cb is not None:
        if cb == 0:
            return Interval.BOT  # concrete execution dies
        return Interval.const(ca % cb)
    pieces = []
    pos = b.meet(Interval(1, None))
    if not pos.is_bottom:
        hi = None if pos.hi is None else pos.hi - 1
        piece = Interval(0, hi)
        if a.lo is not None and a.lo >= 0:
            # Non-negative dividend: x % m <= x.
            piece = piece.meet(Interval(0, a.hi))
        pieces.append(piece)
    neg = b.meet(Interval(None, -1))
    if not neg.is_bottom:
        lo = None if neg.lo is None else neg.lo + 1
        pieces.append(Interval(lo, 0))
    if not pieces:
        return Interval.BOT
    out = pieces[0]
    for p in pieces[1:]:
        out = out.join(p)
    return out


def interval_cmp(op: CmpOp, a: Interval, b: Interval) -> Optional[bool]:
    """Decide ``x op y`` for all x in a, y in b, or None when mixed."""
    if a.is_bottom or b.is_bottom:
        return None  # vacuous; callers treat bottom states separately
    if op is CmpOp.LT:
        if a.hi is not None and b.lo is not None and a.hi < b.lo:
            return True
        if a.lo is not None and b.hi is not None and a.lo >= b.hi:
            return False
        return None
    if op is CmpOp.LE:
        if a.hi is not None and b.lo is not None and a.hi <= b.lo:
            return True
        if a.lo is not None and b.hi is not None and a.lo > b.hi:
            return False
        return None
    if op is CmpOp.GT:
        return interval_cmp(CmpOp.LT, b, a)
    if op is CmpOp.GE:
        return interval_cmp(CmpOp.LE, b, a)
    if op is CmpOp.EQ:
        ca, cb = a.as_const(), b.as_const()
        if ca is not None and cb is not None:
            return ca == cb
        if a.meet(b).is_bottom:
            return False
        return None
    if op is CmpOp.NE:
        eq = interval_cmp(CmpOp.EQ, a, b)
        return None if eq is None else (not eq)
    return None


# ---------------------------------------------------------------------------
# Congruence domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Congruence:
    """The set ``{rem + modulus * k | k in Z}``.

    ``modulus = 0`` is the constant ``rem``; ``modulus = 1`` (with
    ``rem = 0``) is top.  The explicit bottom is :data:`Congruence.BOT`.
    Invariant: ``modulus >= 0`` and ``0 <= rem < modulus`` when
    ``modulus > 0``.
    """

    modulus: int
    rem: int
    bottom: bool = False

    BOT: "Congruence" = None  # type: ignore[assignment]
    TOP: "Congruence" = None  # type: ignore[assignment]

    @staticmethod
    def make(modulus: int, rem: int) -> "Congruence":
        modulus = abs(modulus)
        if modulus:
            rem %= modulus
        return Congruence(modulus, rem)

    @staticmethod
    def const(n: int) -> "Congruence":
        return Congruence(0, n)

    @property
    def is_bottom(self) -> bool:
        return self.bottom

    @property
    def is_top(self) -> bool:
        return not self.bottom and self.modulus == 1

    def as_const(self) -> Optional[int]:
        if not self.bottom and self.modulus == 0:
            return self.rem
        return None

    def contains(self, n: int) -> bool:
        if self.bottom:
            return False
        if self.modulus == 0:
            return n == self.rem
        return n % self.modulus == self.rem

    def leq(self, other: "Congruence") -> bool:
        if self.bottom:
            return True
        if other.bottom:
            return False
        if other.modulus == 0:
            return self.modulus == 0 and self.rem == other.rem
        return (self.modulus % other.modulus == 0
                and self.rem % other.modulus == other.rem)

    def join(self, other: "Congruence") -> "Congruence":
        if self.bottom:
            return other
        if other.bottom:
            return self
        m = math.gcd(self.modulus, other.modulus, abs(self.rem - other.rem))
        if m == 0:
            return self  # identical constants
        return Congruence.make(m, self.rem)

    def meet(self, other: "Congruence") -> "Congruence":
        if self.bottom or other.bottom:
            return Congruence.BOT
        a_m, a_r, b_m, b_r = self.modulus, self.rem, other.modulus, other.rem
        if a_m == 0 and b_m == 0:
            return self if a_r == b_r else Congruence.BOT
        if a_m == 0:
            return self if other.contains(a_r) else Congruence.BOT
        if b_m == 0:
            return other if self.contains(b_r) else Congruence.BOT
        g = math.gcd(a_m, b_m)
        if (a_r - b_r) % g != 0:
            return Congruence.BOT
        # CRT: solve x ≡ a_r (mod a_m), x ≡ b_r (mod b_m).
        lcm = a_m // g * b_m
        # Extended gcd to combine the congruences.
        diff = (b_r - a_r) // g
        inv = pow(a_m // g, -1, b_m // g) if b_m // g > 1 else 0
        k = (diff * inv) % (b_m // g) if b_m // g > 1 else 0
        return Congruence.make(lcm, a_r + a_m * k)

    def widen(self, other: "Congruence") -> "Congruence":
        # The congruence lattice has finite ascending chains from any
        # element (moduli only shrink along divisibility), so join is a
        # terminating widening.
        return self.join(other)

    def narrow(self, other: "Congruence") -> "Congruence":
        return other if self.is_top else self

    def __str__(self) -> str:
        if self.bottom:
            return "⊥"
        if self.modulus == 0:
            return f"={self.rem}"
        if self.modulus == 1:
            return "⊤"
        return f"≡{self.rem} (mod {self.modulus})"


Congruence.BOT = Congruence(0, 0, bottom=True)
Congruence.TOP = Congruence(1, 0)


def congruence_binop(op: ArithOp, a: Congruence, b: Congruence) -> Congruence:
    if a.is_bottom or b.is_bottom:
        return Congruence.BOT
    ca, cb = a.as_const(), b.as_const()
    if ca is not None and cb is not None:
        if op is ArithOp.ADD:
            return Congruence.const(ca + cb)
        if op is ArithOp.SUB:
            return Congruence.const(ca - cb)
        if op is ArithOp.MUL:
            return Congruence.const(ca * cb)
        if op is ArithOp.DIV:
            return Congruence.const(ca // cb) if cb else Congruence.BOT
        if op is ArithOp.MOD:
            return Congruence.const(ca % cb) if cb else Congruence.BOT
    if op is ArithOp.ADD:
        m = math.gcd(a.modulus, b.modulus)
        return Congruence.make(m, a.rem + b.rem) if m else Congruence.const(a.rem + b.rem)
    if op is ArithOp.SUB:
        m = math.gcd(a.modulus, b.modulus)
        return Congruence.make(m, a.rem - b.rem) if m else Congruence.const(a.rem - b.rem)
    if op is ArithOp.MUL:
        # (a_r + a_m k)(b_r + b_m j): every cross term is a multiple of
        # gcd(a_m b_m, a_m b_r, b_m a_r).
        m = math.gcd(a.modulus * b.modulus, a.modulus * b.rem, b.modulus * a.rem)
        return Congruence.make(m, a.rem * b.rem) if m else Congruence.const(a.rem * b.rem)
    if op is ArithOp.MOD:
        if cb is not None and cb != 0 and a.modulus % cb == 0:
            # x ≡ a_r (mod a_m) with cb | a_m pins x % cb exactly.
            return Congruence.const(a.rem % cb)
        return Congruence.TOP
    return Congruence.TOP  # DIV loses congruence information


# ---------------------------------------------------------------------------
# Sign domain
# ---------------------------------------------------------------------------

_NEG, _ZERO, _POS = 1, 2, 4
_SIGN_NAMES = {0: "⊥", _NEG: "-", _ZERO: "0", _POS: "+", _NEG | _ZERO: "≤0",
               _NEG | _POS: "≠0", _ZERO | _POS: "≥0", _NEG | _ZERO | _POS: "⊤"}


@dataclass(frozen=True)
class Sign:
    """Subset of ``{-, 0, +}`` as a bitmask; the 8-element sign lattice."""

    mask: int

    BOT: "Sign" = None  # type: ignore[assignment]
    TOP: "Sign" = None  # type: ignore[assignment]

    @staticmethod
    def const(n: int) -> "Sign":
        return Sign(_NEG if n < 0 else _ZERO if n == 0 else _POS)

    @staticmethod
    def of_interval(iv: Interval) -> "Sign":
        if iv.is_bottom:
            return Sign.BOT
        mask = 0
        if iv.lo is None or iv.lo < 0:
            mask |= _NEG
        if iv.contains(0):
            mask |= _ZERO
        if iv.hi is None or iv.hi > 0:
            mask |= _POS
        return Sign(mask)

    @property
    def is_bottom(self) -> bool:
        return self.mask == 0

    def contains(self, n: int) -> bool:
        return bool(self.mask & (_NEG if n < 0 else _ZERO if n == 0 else _POS))

    def leq(self, other: "Sign") -> bool:
        return self.mask & ~other.mask == 0

    def join(self, other: "Sign") -> "Sign":
        return Sign(self.mask | other.mask)

    def meet(self, other: "Sign") -> "Sign":
        return Sign(self.mask & other.mask)

    def widen(self, other: "Sign") -> "Sign":
        return self.join(other)  # finite lattice

    def narrow(self, other: "Sign") -> "Sign":
        return self

    def to_interval(self) -> Interval:
        """The tightest interval gamma(self) fits in (the reduction)."""
        if self.is_bottom:
            return Interval.BOT
        lo = 0 if not (self.mask & _NEG) else None
        hi = 0 if not (self.mask & _POS) else None
        if self.mask == _NEG:
            hi = -1
        if self.mask == _POS:
            lo = 1
        if self.mask == (_NEG | _POS):
            lo = hi = None  # ≠0 is not convex; interval keeps top
        return Interval(lo, hi)

    def __str__(self) -> str:
        return _SIGN_NAMES[self.mask]


Sign.BOT = Sign(0)
Sign.TOP = Sign(_NEG | _ZERO | _POS)

_SIGN_ADD = {}  # filled lazily below


def sign_binop(op: ArithOp, a: Sign, b: Sign) -> Sign:
    """Transfer on signs by sampling: each sign atom has a canonical
    representative; the abstract op is the join over atom products.

    Exact for ADD/SUB/MUL on atoms; DIV/MOD fall back to the interval
    reduction (cheaper than a bespoke table and still sound).
    """
    if a.is_bottom or b.is_bottom:
        return Sign.BOT
    if op in (ArithOp.DIV, ArithOp.MOD):
        return Sign.TOP
    out = Sign.BOT
    for x in _atoms(a):
        for y in _atoms(b):
            out = out.join(_sign_atom_op(op, x, y))
    return out


def _atoms(s: Sign) -> Iterable[int]:
    for bit in (_NEG, _ZERO, _POS):
        if s.mask & bit:
            yield bit


def _sign_atom_op(op: ArithOp, x: int, y: int) -> Sign:
    key = (op, x, y)
    hit = _SIGN_ADD.get(key)
    if hit is not None:
        return hit
    reps = {_NEG: (-2, -1), _ZERO: (0,), _POS: (1, 2)}
    out = 0
    for cx in reps[x]:
        for cy in reps[y]:
            if op is ArithOp.ADD:
                v = cx + cy
            elif op is ArithOp.SUB:
                v = cx - cy
            else:
                v = cx * cy
            out |= Sign.const(v).mask
    # ADD/SUB of opposite-sign atoms can land anywhere.
    if op in (ArithOp.ADD, ArithOp.SUB) and out & (_NEG | _POS) == (_NEG | _POS):
        out |= _ZERO
    result = Sign(out)
    _SIGN_ADD[key] = result
    return result


# ---------------------------------------------------------------------------
# Reduced product
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """The reduced product Interval × Congruence × Sign.

    Construction goes through :meth:`reduce`, which propagates
    information between the components:

    * the sign tightens the interval (and vice versa);
    * the congruence snaps finite interval bounds to the nearest member
      of the congruence class;
    * a singleton interval pins the congruence to a constant;
    * any empty component collapses the whole product to bottom.
    """

    interval: Interval
    congruence: Congruence
    sign: Sign

    BOT: "AbsVal" = None  # type: ignore[assignment]
    TOP: "AbsVal" = None  # type: ignore[assignment]

    @staticmethod
    def make(interval: Interval,
             congruence: Congruence = None,
             sign: Sign = None) -> "AbsVal":
        return AbsVal(interval,
                      Congruence.TOP if congruence is None else congruence,
                      Sign.TOP if sign is None else sign).reduce()

    @staticmethod
    def const(n: int) -> "AbsVal":
        return AbsVal(Interval.const(n), Congruence.const(n), Sign.const(n))

    @staticmethod
    def range(lo: Optional[int], hi: Optional[int]) -> "AbsVal":
        return AbsVal.make(Interval.make(lo, hi))

    def reduce(self) -> "AbsVal":
        if self.interval.is_bottom:
            return AbsVal.BOT
        # Fast path: a non-singleton plain interval (trivial congruence
        # and sign) can only push information interval -> sign.
        if (self.congruence.modulus == 1 and not self.congruence.bottom
                and self.sign.mask == 7
                and self.interval.lo != self.interval.hi):
            sg = Sign.of_interval(self.interval)
            if sg.mask == 7:
                return self
            return AbsVal(self.interval, self.congruence, sg)
        iv = self.interval.meet(self.sign.to_interval())
        cg = self.congruence
        sg = self.sign.meet(Sign.of_interval(iv))
        # Snap bounds to the congruence class.
        if not cg.is_bottom and cg.modulus > 1 and not iv.is_bottom:
            lo, hi = iv.lo, iv.hi
            if lo is not None:
                delta = (cg.rem - lo) % cg.modulus
                lo = lo + delta
            if hi is not None:
                delta = (hi - cg.rem) % cg.modulus
                hi = hi - delta
            iv = Interval.make(lo, hi)
            sg = sg.meet(Sign.of_interval(iv))
        c = iv.as_const()
        if c is not None:
            if not cg.contains(c):
                return AbsVal.BOT
            cg = Congruence.const(c)
        cc = cg.as_const()
        if cc is not None:
            if not iv.contains(cc):
                return AbsVal.BOT
            iv = Interval.const(cc)
            sg = sg.meet(Sign.const(cc))
        if iv.is_bottom or cg.is_bottom or sg.is_bottom:
            return AbsVal.BOT
        return AbsVal(iv, cg, sg)

    # -- lattice -------------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.interval.is_bottom

    @property
    def is_top(self) -> bool:
        return (self.interval.is_top and self.congruence.is_top
                and self.sign.mask == Sign.TOP.mask)

    def as_const(self) -> Optional[int]:
        return self.interval.as_const()

    def contains(self, n: int) -> bool:
        return (self.interval.contains(n) and self.congruence.contains(n)
                and self.sign.contains(n))

    def leq(self, other: "AbsVal") -> bool:
        if self.is_bottom:
            return True
        return (self.interval.leq(other.interval)
                and self.congruence.leq(other.congruence)
                and self.sign.leq(other.sign))

    def join(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return AbsVal(self.interval.join(other.interval),
                      self.congruence.join(other.congruence),
                      self.sign.join(other.sign)).reduce()

    def meet(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom or other.is_bottom:
            return AbsVal.BOT
        if other.is_top or self is other:
            return self
        if self.is_top:
            return other
        return AbsVal(self.interval.meet(other.interval),
                      self.congruence.meet(other.congruence),
                      self.sign.meet(other.sign)).reduce()

    def widen(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        # No reduce(): reduction can un-widen a bound and break the
        # termination guarantee; the next narrow pass re-tightens.
        return AbsVal(self.interval.widen(other.interval),
                      self.congruence.widen(other.congruence),
                      self.sign.widen(other.sign))

    def narrow(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom or other.is_bottom:
            return AbsVal.BOT
        return AbsVal(self.interval.narrow(other.interval),
                      self.congruence.narrow(other.congruence),
                      self.sign.narrow(other.sign)).reduce()

    def clamp(self, lo: Optional[int], hi: Optional[int]) -> "AbsVal":
        """Meet with the interval ``[lo, hi]`` — one reduce instead of
        the meet-with-fresh-AbsVal two; the hot op of guard refinement."""
        iv = self.interval.meet(Interval(lo, hi))
        if iv.lo == self.interval.lo and iv.hi == self.interval.hi:
            return self
        return AbsVal(iv, self.congruence, self.sign).reduce()

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        parts = [str(self.interval)]
        if not self.congruence.is_top and self.congruence.as_const() is None:
            parts.append(str(self.congruence))
        return " ∧ ".join(parts)


AbsVal.BOT = AbsVal(Interval.BOT, Congruence.BOT, Sign.BOT)
AbsVal.TOP = AbsVal(Interval.TOP, Congruence.TOP, Sign.TOP)


def binop(op: ArithOp, a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract arithmetic on the reduced product."""
    if a.is_bottom or b.is_bottom:
        return AbsVal.BOT
    if a.is_top and b.is_top:
        return AbsVal.TOP
    if op is ArithOp.ADD:
        iv = interval_add(a.interval, b.interval)
    elif op is ArithOp.SUB:
        iv = interval_sub(a.interval, b.interval)
    elif op is ArithOp.MUL:
        iv = interval_mul(a.interval, b.interval)
    elif op is ArithOp.DIV:
        iv = interval_div(a.interval, b.interval)
    elif op is ArithOp.MOD:
        iv = interval_mod(a.interval, b.interval)
    else:  # pragma: no cover - enum is closed
        iv = Interval.TOP
    cg = congruence_binop(op, a.congruence, b.congruence)
    sg = sign_binop(op, a.sign, b.sign)
    return AbsVal(iv, cg, sg).reduce()


def cmp_values(op: CmpOp, a: AbsVal, b: AbsVal) -> Optional[bool]:
    """Three-valued comparison of two abstract values."""
    if a.is_bottom or b.is_bottom:
        return None
    if a.is_top and b.is_top:
        return None
    direct = interval_cmp(op, a.interval, b.interval)
    if direct is not None:
        return direct
    if op in (CmpOp.EQ, CmpOp.NE):
        # Disjoint congruence classes refute equality.
        if a.congruence.meet(b.congruence).is_bottom:
            return op is CmpOp.NE
    return None


_CMP_BOUNDS = {
    # op -> (left gets hi from right?, offset), used by refine_cmp.
    CmpOp.LT: ("hi", -1),
    CmpOp.LE: ("hi", 0),
    CmpOp.GT: ("lo", 1),
    CmpOp.GE: ("lo", 0),
}


def refine_cmp(op: CmpOp, a: AbsVal, b: AbsVal) -> Tuple[AbsVal, AbsVal]:
    """Refine ``(a, b)`` under the assumption ``a op b``.

    Returns possibly-bottom values; callers treat a bottom component as
    an infeasible assumption.
    """
    if a.is_bottom or b.is_bottom:
        return AbsVal.BOT, AbsVal.BOT
    if op is CmpOp.EQ:
        m = a.meet(b)
        return m, m
    if op is CmpOp.NE:
        ca, cb = a.as_const(), b.as_const()
        new_a, new_b = a, b
        if cb is not None:
            if a.as_const() == cb:
                new_a = AbsVal.BOT
            elif a.interval.lo == cb:
                new_a = a.clamp(cb + 1, None)
            elif a.interval.hi == cb:
                new_a = a.clamp(None, cb - 1)
        if ca is not None:
            if b.as_const() == ca:
                new_b = AbsVal.BOT
            elif b.interval.lo == ca:
                new_b = b.clamp(ca + 1, None)
            elif b.interval.hi == ca:
                new_b = b.clamp(None, ca - 1)
        return new_a, new_b
    bound, off = _CMP_BOUNDS[op]
    if bound == "hi":  # a < b or a <= b
        hi = None if b.interval.hi is None else b.interval.hi + off
        lo = None if a.interval.lo is None else a.interval.lo - off
        return a.clamp(None, hi), b.clamp(lo, None)
    # a > b or a >= b
    lo = None if b.interval.lo is None else b.interval.lo + off
    hi = None if a.interval.hi is None else a.interval.hi - off
    return a.clamp(lo, None), b.clamp(None, hi)
