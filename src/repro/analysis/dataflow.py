"""Classic dataflow analyses over the :mod:`repro.analysis.cfg` graph.

All four analyses are standard worklist fixpoints:

* :func:`reaching_definitions` — *may* analysis; which ``(var, node)``
  definitions can reach each node.  Entry pseudo-definitions
  ``(var, -1)`` model variables defined before the fragment starts
  (program inputs, or — for inverse templates — everything the forward
  program produced).
* :func:`definitely_defined` — *must* analysis; which variables are
  written on **every** path reaching a node.  The complement at a use
  site is a use-before-def.
* :func:`live_variables` — backward *may* analysis seeded with the
  ``out(...)`` statements.
* :func:`constant_propagation` — forward analysis over the flat
  constant lattice, folding expressions with
  :mod:`repro.analysis.fold`'s linear-form evaluator restricted to
  literal constants.

Sets are small (suite programs are tens of statements), so plain
``frozenset``/``dict`` states and a deque worklist are plenty fast.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..lang import ast
from .cfg import CFG, Node

# A definition site: (variable, node index); -1 marks an entry pseudo-def.
DefSite = Tuple[str, int]
ENTRY_SITE = -1


def _forward_worklist(cfg: CFG) -> deque:
    return deque(range(len(cfg.nodes)))


def reaching_definitions(
    cfg: CFG, entry_defined: Iterable[str] = ()
) -> Dict[int, FrozenSet[DefSite]]:
    """May-reaching definitions at the *entry* of each node."""
    entry_facts = frozenset((var, ENTRY_SITE) for var in entry_defined)
    out_facts: Dict[int, FrozenSet[DefSite]] = {
        n.index: frozenset() for n in cfg.nodes
    }
    out_facts[cfg.entry] = entry_facts
    in_facts: Dict[int, FrozenSet[DefSite]] = {
        n.index: frozenset() for n in cfg.nodes
    }

    work = _forward_worklist(cfg)
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        incoming: FrozenSet[DefSite] = frozenset().union(
            *(out_facts[p] for p in node.preds)
        ) if node.preds else frozenset()
        if idx == cfg.entry:
            incoming = incoming | entry_facts
        in_facts[idx] = incoming
        kills = node.defs()
        gen = frozenset((var, idx) for var in kills)
        new_out = frozenset(
            (var, site) for (var, site) in incoming if var not in kills
        ) | gen
        if new_out != out_facts[idx]:
            out_facts[idx] = new_out
            work.extend(node.succs)
    return in_facts


def definitely_defined(
    cfg: CFG, entry_defined: Iterable[str] = ()
) -> Dict[int, FrozenSet[str]]:
    """Must-defined variables at the *entry* of each node.

    The lattice is sets of variables under intersection; ``None`` stands
    for the top element (unreached) until the first visit.
    """
    entry_facts = frozenset(entry_defined)
    out_facts: Dict[int, Optional[FrozenSet[str]]] = {
        n.index: None for n in cfg.nodes
    }
    in_facts: Dict[int, FrozenSet[str]] = {}
    out_facts[cfg.entry] = entry_facts

    work = _forward_worklist(cfg)
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        incoming: Optional[FrozenSet[str]] = None
        for p in node.preds:
            fact = out_facts[p]
            if fact is None:
                continue
            incoming = fact if incoming is None else (incoming & fact)
        if idx == cfg.entry:
            incoming = entry_facts
        if incoming is None:
            continue  # not yet reached
        in_facts[idx] = incoming
        new_out = incoming | node.defs()
        if new_out != out_facts[idx]:
            out_facts[idx] = new_out
            work.extend(node.succs)
    return in_facts


def live_variables(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """Live variables at the *entry* of each node (backward may)."""
    in_facts: Dict[int, FrozenSet[str]] = {
        n.index: frozenset() for n in cfg.nodes
    }
    work = deque(range(len(cfg.nodes)))
    while work:
        idx = work.pop()
        node = cfg.nodes[idx]
        out_fact: FrozenSet[str] = frozenset().union(
            *(in_facts[s] for s in node.succs)
        ) if node.succs else frozenset()
        new_in = (out_fact - node.defs()) | node.uses()
        if new_in != in_facts[idx]:
            in_facts[idx] = new_in
            work.extend(node.preds)
    return in_facts


def dead_stores(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """Assignment targets whose value is dead immediately after the write.

    Only plain single-target ``Assign`` nodes are reported; parallel
    assignments frequently carry one useful and one scratch component and
    flagging those is noise.
    """
    in_facts = live_variables(cfg)
    dead: Dict[int, FrozenSet[str]] = {}
    for node in cfg.nodes:
        if not isinstance(node.stmt, ast.Assign) or len(node.stmt.targets) != 1:
            continue
        out_fact: FrozenSet[str] = frozenset().union(
            *(in_facts[s] for s in node.succs)
        ) if node.succs else frozenset()
        gone = node.defs() - out_fact
        if gone:
            dead[node.index] = frozenset(gone)
    return dead


def constant_propagation(
    cfg: CFG, entry_consts: Optional[Mapping[str, int]] = None
) -> Dict[int, Mapping[str, int]]:
    """Flat-lattice constant propagation; facts at each node's entry.

    A variable maps to an ``int`` when it holds that value on every path
    reaching the node; absent variables are unknown (bottom-join-top is
    collapsed to "absent").  Guarded branch conditions are *not* used to
    refine facts — this is a plain Kildall fixpoint, kept deliberately
    simple because its one pipeline consumer (executor branch pruning)
    does its own path-sensitive folding.
    """
    from .fold import const_expr

    out_facts: Dict[int, Optional[Dict[str, int]]] = {
        n.index: None for n in cfg.nodes
    }
    in_facts: Dict[int, Dict[str, int]] = {}
    out_facts[cfg.entry] = dict(entry_consts or {})

    work = _forward_worklist(cfg)
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        incoming: Optional[Dict[str, int]] = None
        for p in node.preds:
            fact = out_facts[p]
            if fact is None:
                continue
            if incoming is None:
                incoming = dict(fact)
            else:
                incoming = {
                    var: val for var, val in incoming.items()
                    if fact.get(var) == val
                }
        if idx == cfg.entry:
            incoming = dict(entry_consts or {})
        if incoming is None:
            continue
        in_facts[idx] = dict(incoming)
        new_out = dict(incoming)
        if isinstance(node.stmt, ast.Assign):
            values = {}
            for target, expr in zip(node.stmt.targets, node.stmt.exprs):
                values[target] = const_expr(expr, incoming)
            for target, val in values.items():
                if val is None:
                    new_out.pop(target, None)
                else:
                    new_out[target] = val
        elif node.defs():
            for var in node.defs():
                new_out.pop(var, None)
        if new_out != out_facts[idx]:
            out_facts[idx] = new_out
            work.extend(node.succs)
    return in_facts
