"""Array-region and loop-bound analysis over the Fig. 2 IR.

Two static facts per task, computed from the desugared composed program
``P ; P⁻¹`` before any solver work:

* **Loop bounds** — for every loop with a ground comparison guard, a
  ranking expression derived from the guard (``i < n`` → ``n - i - 1``)
  whose per-iteration decrease is verified by composing the loop body's
  SSA definitions into exact-integer :class:`~repro.analysis.linear.Affine`
  forms.  A verified constant decrease certifies the loop terminates and
  bounds its trip count symbolically (``⌈(rank₀+1)/d⌉``).

* **Array footprints** — per array, the interval × congruence region
  (:mod:`repro.analysis.domains` reduced product) covering every read
  and write index the program can reach, recorded by a
  :class:`~repro.analysis.absint.ForwardAnalyzer` subclass that joins the
  abstract value of each ``sel``/``upd`` index across all abstract
  visits (Kleene iterates included, so the join over-approximates every
  concrete access).

Three consumers (DESIGN.md §15):

1. *Guided axiom instantiation* — arrays whose reachable index region is
   finite yield a per-array index list (:meth:`RegionReport.guided_indices`)
   that :class:`repro.smt.solver.Solver` instantiates single-select-pattern
   axioms over, closing the trigger E-matching gap so SAT models are
   replay-complete.  The checker additionally downgrades VIOLATED answers
   whose model cannot be replayed concretely (axiom-incomplete extern
   tables) to optimistic UNKNOWNs.
2. *Inferred path budgets* — :func:`inferred_path_budget` counts the
   syntactic paths of the composed program at the task's unroll bound; the
   bench harness appends it as a ``paths=`` budget when the hand profile
   has none.  Because the symbolic executor returns each syntactic path at
   most once, the inferred budget can never fire — it is a pure safety
   net, and hand values stay as overrides (linted by
   :func:`lint_profile_budget` when they exceed the ceiling).
3. *Out-of-region refutation* — :func:`refute_out_of_region` blocks hole
   candidates whose constant select index provably exits every allocated
   region (e.g. a negative index against 0-based arrays), seeded as unit
   clauses into the CDCL session exactly like the fwdbwd refutations.

The pass sits behind the standard switch cascade: explicit override,
else ``REPRO_REGIONS``, else follow the fwdbwd switch (which itself
follows absint, then static pruning).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..lang import ast
from ..lang.ast import (Assign, Assume, Expr, GIf, GWhile, Pred, Select, Sort,
                        Stmt, Update, Var, While)
from ..lang.transform import version_expr
from .absint import AbsEnv, ForwardAnalyzer, absint_enabled, eval_expr
from .diagnostics import WARNING, Diagnostic
from .domains import AbsVal, Congruence, Interval
from .linear import Affine, affine_expr

ENV_FLAG = "REPRO_REGIONS"

STALE_PROFILE_BUDGET = "stale-profile-budget"
"""Diagnostic code: a hand-tuned ``paths=`` bench budget exceeds the
statically inferred syntactic path ceiling, so it can never fire."""

PATH_COUNT_CAP = 100_000
"""Largest syntactic path count worth writing into a ``paths=`` budget;
counts above it are still reported by the analysis but not inferred as
budgets (a never-firing limit that large is pure noise)."""

GUIDED_REGION_CAP = 32
"""Largest finite index region expanded into guided axiom instances."""


def regions_enabled(override: Optional[bool] = None,
                    fwdbwd: Optional[bool] = None) -> bool:
    """Resolve the regions switch: explicit override, else the
    ``REPRO_REGIONS`` env var, else follow the fwdbwd switch (``fwdbwd``
    may be an already-resolved boolean or None to re-resolve)."""
    if override is not None:
        return override
    raw = os.environ.get(ENV_FLAG)
    if raw is not None:
        return raw.strip().lower() not in ("0", "false", "off")
    if fwdbwd is not None:
        return fwdbwd
    from .fwdbwd import fwdbwd_enabled
    return fwdbwd_enabled(None, absint_enabled(None))


# ---------------------------------------------------------------------------
# Regions: interval x congruence index sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Region:
    """A set of array indices as an interval × congruence product."""

    interval: Interval
    congruence: Congruence

    BOT: "Region" = None  # type: ignore[assignment]
    TOP: "Region" = None  # type: ignore[assignment]

    @staticmethod
    def of(val: AbsVal) -> "Region":
        return Region(val.interval, val.congruence)

    @property
    def is_bottom(self) -> bool:
        return self.interval.is_bottom or self.congruence.is_bottom

    def join(self, other: "Region") -> "Region":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Region(self.interval.join(other.interval),
                      self.congruence.join(other.congruence))

    def contains(self, n: int) -> bool:
        return (not self.is_bottom and self.interval.contains(n)
                and self.congruence.contains(n))

    def members(self, cap: int = GUIDED_REGION_CAP) -> Optional[Tuple[int, ...]]:
        """All member indices when the region is finite and small.

        None when the region is empty, unbounded, or wider than ``cap``
        — only small finite regions are worth expanding into guided
        axiom instances.
        """
        if self.is_bottom:
            return None
        lo, hi = self.interval.lo, self.interval.hi
        if lo is None or hi is None or hi - lo + 1 > cap:
            return None
        picked = tuple(n for n in range(lo, hi + 1)
                       if self.congruence.contains(n))
        return picked or None

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        text = str(self.interval)
        if self.congruence.modulus > 1:
            text += f" {self.congruence}"
        return text


Region.BOT = Region(Interval.BOT, Congruence.BOT)
Region.TOP = Region(Interval.TOP, Congruence.TOP)

ALLOCATED = Region(Interval.make(0, None), Congruence.TOP)
"""Every suite array is 0-based with a symbolic length: the allocated
index region is ``[0, +∞)``.  Out-of-region refutation only trusts the
half the IR guarantees (no negative cells are ever allocated)."""


@dataclass
class ArrayFootprint:
    """Reachable index regions of one array."""

    name: str
    reads: Region = Region.BOT
    writes: Region = Region.BOT

    @property
    def accessed(self) -> Region:
        return self.reads.join(self.writes)

    def describe(self) -> str:
        return (f"{self.name}: reads {self.reads}, writes {self.writes}")


@dataclass
class LoopBound:
    """A symbolic iteration bound for one loop."""

    loop_id: str
    guard: str
    rank: Optional[Expr] = None
    decrease: int = 0
    bounded: bool = False

    def describe(self) -> str:
        if not self.bounded:
            return f"{self.loop_id}: guard {self.guard}, no static bound"
        step = "" if self.decrease == 1 else f" / {self.decrease}"
        return (f"{self.loop_id}: guard {self.guard}, rank {self.rank} "
                f"(≤ {self.rank} + 1{step} iterations)")


@dataclass
class RegionReport:
    """Everything the three consumers read, for one task."""

    name: str
    loops: List[LoopBound] = field(default_factory=list)
    arrays: Dict[str, ArrayFootprint] = field(default_factory=dict)
    path_count: Optional[int] = None
    max_unroll: int = 0
    value_ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    """Array cell-value ranges ``name -> (lo, hi)`` recovered from the
    task's input range axioms (``lo <= a[k] < hi``)."""

    def guided_indices(self, cap: int = GUIDED_REGION_CAP
                       ) -> Dict[str, Tuple[int, ...]]:
        """Per-array concrete index lists for guided axiom instantiation.

        Only arrays whose reachable footprint is a small *finite* region
        appear: expanding an unbounded region is impossible, and the
        trigger E-matcher already instantiates over every syntactic
        index term, so finite-region corner constants are exactly the
        instances it can miss.
        """
        out: Dict[str, Tuple[int, ...]] = {}
        for name, fp in sorted(self.arrays.items()):
            members = fp.accessed.members(cap)
            if members:
                out[name] = members
        return out

    def default_cell(self, array: str) -> int:
        """A cell value satisfying the array's input range axiom.

        The smallest admissible value (the range's ``lo``), or 0 for
        arrays without a recorded range — matching what concrete replay
        reads from unconstrained cells.
        """
        rng = self.value_ranges.get(array)
        if rng is None:
            return 0
        lo, hi = rng
        return lo if not (lo <= 0 < hi) else 0

    def bounded_loops(self) -> int:
        return sum(1 for lb in self.loops if lb.bounded)

    def describe(self) -> str:
        lines = [f"{self.name}: {len(self.loops)} loop(s), "
                 f"{self.bounded_loops()} bounded, "
                 f"paths(unroll={self.max_unroll}) = "
                 f"{self.path_count if self.path_count is not None else '?'}"]
        for lb in self.loops:
            lines.append(f"  loop {lb.describe()}")
        for name in sorted(self.arrays):
            lines.append(f"  array {self.arrays[name].describe()}")
        for name in sorted(self.value_ranges):
            lo, hi = self.value_ranges[name]
            lines.append(f"  range {name}[k] in [{lo}, {hi})")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path_count": self.path_count,
            "max_unroll": self.max_unroll,
            "loops": [{"loop_id": lb.loop_id, "guard": lb.guard,
                       "rank": str(lb.rank) if lb.rank is not None else None,
                       "decrease": lb.decrease, "bounded": lb.bounded}
                      for lb in self.loops],
            "arrays": {name: {"reads": str(fp.reads),
                              "writes": str(fp.writes)}
                       for name, fp in sorted(self.arrays.items())},
            "value_ranges": {name: list(rng) for name, rng
                             in sorted(self.value_ranges.items())},
        }


# ---------------------------------------------------------------------------
# Footprint analysis (a recording ForwardAnalyzer)
# ---------------------------------------------------------------------------


def _base_array(e: Expr) -> Optional[str]:
    """The base variable of a (possibly nested-update) array expression."""
    while isinstance(e, Update):
        e = e.array
    return e.name if isinstance(e, Var) else None


class FootprintAnalyzer(ForwardAnalyzer):
    """A :class:`ForwardAnalyzer` that records ``sel``/``upd`` index
    regions at every abstract visit.

    Joining across visits (including widened Kleene iterates) keeps the
    recorded region an over-approximation of every index any concrete
    execution can touch at that point — exactly what a sound footprint
    needs, at zero extra fixpoint cost.
    """

    def __init__(self, sorts: Mapping[str, Sort], **kwargs: Any) -> None:
        super().__init__(sorts, **kwargs)
        self.footprints: Dict[str, ArrayFootprint] = {}

    def _touch(self, name: str) -> ArrayFootprint:
        fp = self.footprints.get(name)
        if fp is None:
            fp = ArrayFootprint(name)
            self.footprints[name] = fp
        return fp

    def _record_accesses(self, node: Union[Expr, Pred], env: AbsEnv) -> None:
        for sub in ast.walk_exprs(node):
            if isinstance(sub, Select):
                base = _base_array(sub.array)
                if base is not None:
                    region = Region.of(eval_expr(sub.index, env))
                    fp = self._touch(base)
                    fp.reads = fp.reads.join(region)
            elif isinstance(sub, Update):
                base = _base_array(sub.array)
                if base is not None:
                    region = Region.of(eval_expr(sub.index, env))
                    fp = self._touch(base)
                    fp.writes = fp.writes.join(region)

    def _stmt(self, s: Stmt, env: AbsEnv) -> AbsEnv:
        if not env.bottom:
            if isinstance(s, Assign):
                for e in s.exprs:
                    self._record_accesses(e, env)
            elif isinstance(s, Assume):
                self._record_accesses(s.pred, env)
            elif isinstance(s, (GIf, GWhile)):
                self._record_accesses(s.cond, env)
        return super()._stmt(s, env)


# ---------------------------------------------------------------------------
# Loop bounds (guard-derived ranking + affine decrease check)
# ---------------------------------------------------------------------------


def _path_deltas(rank: Expr, body: Stmt,
                 sorts: Mapping[str, Sort]) -> Optional[List[int]]:
    """Per-path constant deltas of ``rank`` over ``body`` at unroll 0.

    Composes each unroll-0 body path's SSA definitions into affine forms
    and folds ``rank^final - rank^0`` to a constant; None when any path
    fails to fold.  Nested loops are skipped at unroll 0, so their
    bodies must not be able to *increase* the rank — checked by
    recursively requiring every inner-body path delta to be a constant
    ``<= 0`` (an inner loop that only drives the rank further down, like
    the run-scanning loop in runlength, keeps the outer fold sound).
    An unfoldable definition leaves its SSA name symbolic, which keeps
    the overall fold conservative.
    """
    from ..symexec.executor import enumerate_paths, loops_of
    from ..symexec.paths import Def

    def is_int(name: str) -> bool:
        return sorts.get(name.rsplit("#", 1)[0]) is Sort.INT

    def fold(e: Expr, env: Mapping[str, Affine]) -> Optional[Affine]:
        return affine_expr(e, env, is_int=is_int)

    rank_vars = ast.expr_vars(rank)
    for inner in loops_of(body):
        if rank_vars & ast.assigned_vars(inner.body):
            inner_deltas = _path_deltas(rank, inner.body, sorts)
            if inner_deltas is None or any(d > 0 for d in inner_deltas):
                return None
    vars_all = sorted(rank_vars | ast.assigned_vars(body))
    vmap0 = {name: 0 for name in vars_all}
    deltas: List[int] = []
    try:
        paths = list(enumerate_paths(body, max_unroll=0, limit=64,
                                     initial_vmap=vmap0))
    except TypeError:
        return None
    if not paths:
        return None
    for path in paths:
        env: Dict[str, Affine] = {f"{name}#0": Affine.of_var(f"{name}#0")
                                  for name in vars_all if is_int(name)}
        for item in path.items:
            if not isinstance(item, Def):
                continue
            val = fold(item.expr, env)
            if val is not None:
                env[item.versioned_var] = val
        vmap = dict(path.final_vmap)
        r0 = fold(version_expr(rank, {n: 0 for n in vars_all}), env)
        rf = fold(version_expr(rank, vmap), env)
        if r0 is None or rf is None:
            return None
        delta = rf - r0
        if delta.terms:
            return None
        deltas.append(delta.const)
    return deltas


def _body_decrease(rank: Expr, body: Stmt,
                   sorts: Mapping[str, Sort]) -> Optional[int]:
    """The guaranteed per-iteration decrease of ``rank`` over ``body``:
    the minimum of :func:`_path_deltas`' magnitudes when every path
    strictly decreases, else None."""
    deltas = _path_deltas(rank, body, sorts)
    if deltas is None or any(d >= 0 for d in deltas):
        return None
    return min(-d for d in deltas)


def loop_bounds(body: Stmt, sorts: Mapping[str, Sort]) -> List[LoopBound]:
    """Ranking-function bounds for every ground-guard loop in ``body``."""
    from ..pins.termination import derive_ranking_candidates
    from ..symexec.executor import loop_guard_and_body, loops_of

    bounds: List[LoopBound] = []
    for loop in loops_of(body):
        try:
            guard, rest = loop_guard_and_body(loop)
        except ValueError:
            bounds.append(LoopBound(loop.loop_id, guard="<unstructured>"))
            continue
        bound = LoopBound(loop.loop_id, guard=str(guard))
        if not ast.expr_unknowns(guard):
            for rank in derive_ranking_candidates([guard]):
                step = _body_decrease(rank, rest, sorts)
                if step is not None:
                    bound.rank = rank
                    bound.decrease = step
                    bound.bounded = True
                    break
        bounds.append(bound)
    return bounds


# ---------------------------------------------------------------------------
# Value ranges from input axioms
# ---------------------------------------------------------------------------


def value_ranges_from_axioms(axioms: Iterable[object]
                             ) -> Dict[str, Tuple[int, int]]:
    """Recover per-array cell ranges from range-axiom bodies.

    Matches the :func:`repro.suite.common.array_range_axiom` shape —
    ``lo <= sel(A#0, ?k)`` and ``sel(A#0, ?k) < hi`` conjuncts over a
    quantified index — and maps the version-stripped array name to
    ``(lo, hi)``.
    """
    from ..smt.terms import Op
    from ..smt.terms import subterms as term_subterms

    ranges: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
    for ax in axioms:
        variables = getattr(ax, "variables", ())
        body = getattr(ax, "body", None)
        if body is None:
            continue
        qvars = set(variables)

        def cell_of(t: object) -> Optional[str]:
            if (getattr(t, "op", None) is Op.SELECT
                    and t.args[0].op is Op.VAR and t.args[1] in qvars):
                return str(t.args[0].payload).split("#", 1)[0]
            return None

        def cell_plus_const(t: object) -> Optional[Tuple[str, int]]:
            """Match ``cell`` or ``cell + c`` (``mk_lt`` desugars the
            strict upper bound to ``LE(ADD(cell, 1), hi)``)."""
            name = cell_of(t)
            if name is not None:
                return name, 0
            if getattr(t, "op", None) is Op.ADD and len(t.args) == 2:
                for cell_arg, const_arg in (t.args, t.args[::-1]):
                    if const_arg.op is Op.INT_CONST:
                        name = cell_of(cell_arg)
                        if name is not None:
                            return name, int(const_arg.payload)
            return None

        for t in term_subterms(body):
            if getattr(t, "op", None) is not Op.LE:
                continue
            if t.args[0].op is Op.INT_CONST:
                name = cell_of(t.args[1])
                if name is not None:
                    lo, hi = ranges.get(name, (None, None))
                    c = int(t.args[0].payload)
                    ranges[name] = (c if lo is None else max(lo, c), hi)
            elif t.args[1].op is Op.INT_CONST:
                matched = cell_plus_const(t.args[0])
                if matched is not None:
                    name, offset = matched
                    lo, hi = ranges.get(name, (None, None))
                    # cell + offset <= h  ==>  cell < h - offset + 1
                    c = int(t.args[1].payload) - offset + 1
                    ranges[name] = (lo, c if hi is None else min(hi, c))
    return {name: (lo, hi) for name, (lo, hi) in ranges.items()
            if lo is not None and hi is not None and lo < hi}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def path_count(body: Stmt, max_unroll: int) -> Optional[int]:
    """Exact syntactic path count at ``max_unroll``.

    Mirrors :func:`repro.symexec.executor.enumerate_paths`' control flow
    (per-``loop_id`` unroll counters persist along a path, ``If``
    branches fork, ``Exit`` completes a path) but carries no SSA items
    and memoizes on the continuation stack, so counts that would take
    exponential enumeration come back in milliseconds.  None when the
    body contains statements the enumerator cannot walk.
    """
    from ..lang.ast import Exit, If, In, Out, Seq, Skip

    memo: Dict[Tuple[Tuple[int, ...], Tuple[Tuple[str, int], ...]], int] = {}

    def walk(cont: List[Stmt],
             unrolls: Tuple[Tuple[str, int], ...]) -> int:
        key = (tuple(id(s) for s in cont), unrolls)
        hit = memo.get(key)
        if hit is not None:
            return hit
        count = _walk(list(cont), unrolls)
        memo[key] = count
        return count

    def _walk(cont: List[Stmt],
              unrolls: Tuple[Tuple[str, int], ...]) -> int:
        while cont:
            s = cont.pop()
            if isinstance(s, Seq):
                cont.extend(reversed(s.stmts))
            elif isinstance(s, If):
                return (walk(cont + [s.then], unrolls)
                        + walk(cont + [s.els], unrolls))
            elif isinstance(s, While):
                taken = dict(unrolls).get(s.loop_id, 0)
                total = walk(cont, unrolls)
                if taken < max_unroll:
                    bumped = tuple(sorted(
                        {**dict(unrolls), s.loop_id: taken + 1}.items()))
                    total += walk(cont + [s, s.body], bumped)
                return total
            elif isinstance(s, Exit):
                return 1
            elif isinstance(s, (Assign, Assume, In, Out, Skip)):
                continue
            else:
                raise TypeError(f"cannot count through {s!r}")
        return 1

    try:
        return walk([body], ())
    except TypeError:
        return None


def analyze_regions(body: Stmt, decls: Mapping[str, Sort],
                    max_unroll: int = 0, name: str = "",
                    axioms: Iterable[object] = ()) -> RegionReport:
    """The full region/bound analysis of one desugared program body."""
    analyzer = FootprintAnalyzer(decls)
    analyzer.run(body)
    report = RegionReport(
        name=name,
        loops=loop_bounds(body, decls),
        arrays=analyzer.footprints,
        path_count=path_count(body, max_unroll),
        max_unroll=max_unroll,
        value_ranges=value_ranges_from_axioms(axioms),
    )
    return report


def analyze_task(task: object, name: str = "") -> RegionReport:
    """Region report for a :class:`repro.pins.task.SynthesisTask`."""
    from ..lang.transform import compose, desugar_program

    desugared = desugar_program(compose(task.program, task.inverse))
    return analyze_regions(
        desugared.body, desugared.decls,
        max_unroll=task.max_unroll,
        name=name or task.name,
        axioms=tuple(task.axioms) + tuple(task.input_axioms),
    )


def inferred_path_budget(name: str) -> Optional[int]:
    """Syntactic path ceiling of a registered suite program.

    The symbolic executor returns each syntactic path at most once per
    run, so a ``paths=`` budget at exactly this count is unreachable —
    appending it to a hand budget can never change a trajectory.
    """
    from ..lang.transform import compose, desugar_program
    from ..suite import get_benchmark

    task = get_benchmark(name).task
    desugared = desugar_program(compose(task.program, task.inverse))
    return path_count(desugared.body, task.max_unroll)


# ---------------------------------------------------------------------------
# Consumer 3: out-of-region candidate refutation
# ---------------------------------------------------------------------------


def refute_out_of_region(space: object, report: RegionReport
                         ) -> List[Tuple[str, int]]:
    """Hole candidates whose select index provably exits every region.

    Conservative first cut: only *constant* indices are judged, against
    the union of the array's allocated region (0-based, so negative
    constants are always out) and its reachable footprint.  Anything
    with a variable index is left to the solver.  Returned pairs become
    unit blocking clauses, exactly like the fwdbwd refutations.
    """
    refuted: List[Tuple[str, int]] = []
    expr_holes: Sequence[Tuple[str, Sequence[Expr]]] = getattr(
        space, "expr_holes", ())
    for hole, candidates in expr_holes:
        for idx, candidate in enumerate(candidates):
            if _candidate_out_of_region(candidate, report):
                refuted.append((hole, idx))
    return refuted


def _candidate_out_of_region(candidate: Expr, report: RegionReport) -> bool:
    for sub in ast.walk_exprs(candidate):
        if not isinstance(sub, Select):
            continue
        base = _base_array(sub.array)
        if base is None:
            continue
        top = AbsEnv({})
        const = eval_expr(sub.index, top).as_const()
        if const is None:
            continue
        if ALLOCATED.contains(const):
            continue
        fp = report.arrays.get(base)
        # A full-line footprint means the index analysis learned nothing
        # (hole expressions evaluate to TOP); it must not widen the
        # allowed set, or no constant would ever be refuted.
        if (fp is not None and not fp.accessed.interval.is_top
                and fp.accessed.contains(const)):
            continue
        return True
    return False


# ---------------------------------------------------------------------------
# Satellite: the stale-profile-budget suitelint rule
# ---------------------------------------------------------------------------


def lint_profile_budget(name: str, budget_spec: Optional[str]
                        ) -> List[Diagnostic]:
    """Flag hand ``paths=`` bench budgets above the inferred ceiling.

    A path budget larger than the syntactic path count can never fire
    (the executor returns each syntactic path at most once), so it is a
    dead knob — either stale after a program edit or mistuned.
    """
    if not budget_spec or "paths" not in budget_spec:
        return []
    hand: Optional[int] = None
    for part in budget_spec.split(";"):
        key, _, raw = part.partition("=")
        if key.strip().lower() in ("paths", "symexec_paths"):
            try:
                hand = int(raw.strip())
            except ValueError:
                return []
    if hand is None:
        return []
    ceiling = inferred_path_budget(name)
    if ceiling is None or hand <= ceiling:
        return []
    return [Diagnostic(
        code=STALE_PROFILE_BUDGET,
        severity=WARNING,
        message=(f"profile budget paths={hand} exceeds the inferred "
                 f"syntactic ceiling {ceiling} and can never fire"),
        program=name,
    )]


def profile_budget_json(names: Sequence[str]) -> str:
    """JSON summary of hand vs inferred path budgets (CLI helper)."""
    from ..suite import bench_profile

    rows = []
    for name in names:
        profile = bench_profile(name)
        rows.append({
            "name": name,
            "profile_budget": profile.budget,
            "inferred_paths": inferred_path_budget(name),
        })
    return json.dumps(rows, indent=2, sort_keys=True)
