"""A small control-flow graph over :class:`repro.lang.ast.Stmt` trees.

Nodes are *atomic* statements (assignments, assumes, ``in``/``out``,
``exit``) plus synthetic ``entry``/``final`` nodes and one ``branch``
node per conditional or loop head.  Both statement dialects are
supported: guarded ``GIf``/``GWhile`` contribute branch nodes carrying
their condition, nondeterministic ``if(*)``/``while(*)`` contribute
condition-free branch nodes (their ``assume`` statements become ordinary
nodes inside the arms, which is exactly what the dataflow analyses
want).

Each node records the 1-based line of its statement, counted with the
same convention as :func:`repro.lang.transform.loc_of`, so analysis
clients can emit located :class:`~repro.analysis.diagnostics.Diagnostic`
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..lang import ast
from ..lang.ast import (
    Assign,
    Assume,
    Exit,
    GIf,
    GWhile,
    If,
    In,
    Out,
    Pred,
    Seq,
    Skip,
    Stmt,
    While,
)

ENTRY = "entry"
FINAL = "final"
ASSIGN = "assign"
ASSUME = "assume"
BRANCH = "branch"
IN = "in"
OUT = "out"
EXIT = "exit"


@dataclass
class Node:
    """One CFG node; ``stmt`` is set for atomic statements, ``pred`` for
    guarded branch nodes (``None`` for nondeterministic branches)."""

    index: int
    kind: str
    stmt: Optional[Stmt] = None
    pred: Optional[Pred] = None
    line: int = 0
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def defs(self) -> FrozenSet[str]:
        """Variables this node writes."""
        if isinstance(self.stmt, Assign):
            return frozenset(self.stmt.targets)
        if isinstance(self.stmt, In):
            return frozenset(self.stmt.names)
        return frozenset()

    def uses(self) -> FrozenSet[str]:
        """Variables this node reads (hole contents are invisible)."""
        if isinstance(self.stmt, Assign):
            names: set = set()
            for e in self.stmt.exprs:
                names |= ast.expr_vars(e)
            return frozenset(names)
        if isinstance(self.stmt, Assume):
            return ast.expr_vars(self.stmt.pred)
        if self.kind == BRANCH and self.pred is not None:
            return ast.expr_vars(self.pred)
        if isinstance(self.stmt, Out):
            return frozenset(self.stmt.names)
        return frozenset()


class CFG:
    """The graph: ``nodes[entry]`` is the unique entry, ``nodes[final]``
    the unique final node every terminating path reaches."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.entry = self._new(ENTRY).index
        self.final = self._new(FINAL).index

    def _new(self, kind: str, stmt: Optional[Stmt] = None,
             pred: Optional[Pred] = None, line: int = 0) -> Node:
        node = Node(index=len(self.nodes), kind=kind, stmt=stmt,
                    pred=pred, line=line)
        self.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def statement_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.kind not in (ENTRY, FINAL)]

    def node_lines(self) -> Dict[int, int]:
        return {n.index: n.line for n in self.nodes}


def build_cfg(stmt: Stmt) -> CFG:
    """Build the CFG of a statement tree (either dialect, holes allowed)."""
    cfg = CFG()
    line = 1

    def loc(s: Stmt) -> int:
        if isinstance(s, Assign):
            return len(s.targets)
        if isinstance(s, Skip):
            return 0
        return 1

    def link_all(preds: List[int], dst: int) -> None:
        for p in preds:
            cfg._edge(p, dst)

    def walk(s: Stmt, preds: List[int]) -> List[int]:
        """Wire ``s`` after ``preds``; return the dangling exits."""
        nonlocal line
        if isinstance(s, Seq):
            for part in s.stmts:
                preds = walk(part, preds)
            return preds
        if isinstance(s, Skip):
            return preds
        if isinstance(s, (GIf, If)):
            pred = s.cond if isinstance(s, GIf) else None
            branch = cfg._new(BRANCH, stmt=s, pred=pred, line=line)
            line += 1
            link_all(preds, branch.index)
            then_exits = walk(s.then, [branch.index])
            else_exits = walk(s.els, [branch.index])
            return then_exits + else_exits
        if isinstance(s, (GWhile, While)):
            pred = s.cond if isinstance(s, GWhile) else None
            head = cfg._new(BRANCH, stmt=s, pred=pred, line=line)
            line += 1
            link_all(preds, head.index)
            body_exits = walk(s.body, [head.index])
            link_all(body_exits, head.index)  # back edge
            return [head.index]
        if isinstance(s, Exit):
            node = cfg._new(EXIT, stmt=s, line=line)
            line += loc(s)
            link_all(preds, node.index)
            cfg._edge(node.index, cfg.final)
            return []
        kind = {Assign: ASSIGN, Assume: ASSUME, In: IN, Out: OUT}.get(type(s))
        if kind is None:
            raise TypeError(f"cannot build a CFG over {s!r}")
        node = cfg._new(kind, stmt=s, line=line)
        line += loc(s)
        link_all(preds, node.index)
        return [node.index]

    exits = walk(stmt, [cfg.entry])
    for e in exits:
        cfg._edge(e, cfg.final)
    if not cfg.nodes[cfg.final].preds:
        # Body diverges everywhere (e.g. bare `while(true)`); keep the
        # final node reachable so backward analyses have a seed.
        cfg._edge(cfg.entry, cfg.final)
    return cfg
