"""Command-line analysis tools: ``python -m repro.analysis``.

Two modes:

* ``python -m repro.analysis [files...] [--suite]`` — lint source files
  in the Fig. 2 concrete syntax (as accepted by
  :func:`repro.lang.parser.parse_program`), or the whole benchmark suite.
  Exit status: 0 clean, 1 diagnostics failed the run, 2 a file could not
  be parsed.
* ``python -m repro.analysis certify [names...]`` — abstractly certify
  the suite's ground-truth inverses (``P ; P⁻¹`` identity) over each
  task's bounded value range and report per-variable PROVED/UNKNOWN.
  With ``--baseline FILE`` exits 1 if any recorded PROVED verdict
  regressed; ``--write-baseline FILE`` records the current verdicts.
* ``python -m repro.analysis unknowns [names...]`` — run the
  forward-backward unknowns analysis on suite templates and report each
  hole's feasible candidate set plus any static unit/pair refutations.
  Exit status 1 when a hole's candidate family is statically empty.
* ``python -m repro.analysis regions [names...]`` — run the array-region
  and loop-bound analysis on suite tasks and report per-loop ranking
  bounds, per-array index footprints, axiom-derived cell value ranges,
  the syntactic path count, and hand-vs-inferred path budgets.  Exit
  status 1 when any ``stale-profile-budget`` lint fires.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from ..lang.parser import ParseError, parse_program
from .diagnostics import failing
from .lint import lint_program
from .suitelint import run_suite_lint


def certify_main(argv: List[str]) -> int:
    from .certify import (certify_suite, compare_to_baseline, load_baseline,
                          reports_to_json, save_baseline)

    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis certify",
        description="Abstractly certify suite inverses (P ; P⁻¹ identity).")
    ap.add_argument("names", nargs="*",
                    help="benchmark names (default: the whole suite)")
    ap.add_argument("--max-boxes", type=int, default=512,
                    help="subdivision budget per certified variable")
    ap.add_argument("--json", action="store_true",
                    help="emit the verdict map as JSON on stdout")
    ap.add_argument("--baseline", metavar="FILE",
                    help="fail on regressions from this recorded verdict map")
    ap.add_argument("--write-baseline", metavar="FILE",
                    help="record the current verdict map to FILE")
    args = ap.parse_args(argv)

    reports = certify_suite(args.names or None, max_boxes=args.max_boxes)
    if args.json:
        print(json.dumps(reports_to_json(reports), indent=2, sort_keys=True))
    else:
        for r in reports:
            print(f"{r.name} (range {r.value_range[0]}..{r.value_range[1]}, "
                  f"{r.boxes_explored} analysis runs):")
            for v in r.verdicts:
                print(f"  {v}")
    status = 0
    if args.baseline:
        regressions, improvements = compare_to_baseline(
            reports, load_baseline(args.baseline))
        for line in improvements:
            print(f"improved: {line}")
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if regressions:
            status = 1
        else:
            print(f"baseline ok: no PROVED verdict regressed "
                  f"({args.baseline})")
    if args.write_baseline:
        save_baseline(reports, args.write_baseline)
        print(f"wrote {args.write_baseline}")
    return status


def unknowns_main(argv: List[str]) -> int:
    from ..lang.transform import compose, desugar_program
    from ..pins.algorithm import build_template
    from ..suite import all_benchmarks, get_benchmark
    from .fwdbwd import analyze_unknowns

    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis unknowns",
        description="Forward-backward unknowns analysis: per-hole feasible "
                    "candidate sets and static refutations, before any "
                    "SAT/SMT work.")
    ap.add_argument("names", nargs="*",
                    help="benchmark names (default: the whole suite)")
    ap.add_argument("--max-rounds", type=int, default=4,
                    help="forward/backward fixpoint iteration cap")
    ap.add_argument("--json", action="store_true",
                    help="emit the reports as JSON on stdout")
    args = ap.parse_args(argv)

    names = args.names or sorted(all_benchmarks())
    status = 0
    blobs = []
    for name in names:
        task = get_benchmark(name).task
        desugared = desugar_program(compose(task.program, task.inverse))
        template = build_template(task)
        spec = task.derived_spec(desugared.decls)
        report = analyze_unknowns(task.program, task.inverse, template.space,
                                  spec, desugared.decls,
                                  max_rounds=args.max_rounds)
        if args.json:
            blobs.append({
                "name": name,
                "iterations": report.iterations,
                "units_refuted": report.units_refuted,
                "pairs_refuted": len(report.pairs),
                "empty_holes": report.empty_holes(),
                "feasible": {
                    h: {"kind": fs.kind, "total": fs.total,
                        "feasible": list(fs.feasible),
                        "refuted": [str(r) for r in fs.refuted]}
                    for h, fs in sorted(report.feasible.items())
                },
            })
        else:
            print(report.describe())
        if report.empty_holes():
            print(f"{name}: EMPTY candidate family for "
                  f"{', '.join(report.empty_holes())}", file=sys.stderr)
            status = 1
    if args.json:
        print(json.dumps(blobs, indent=2, sort_keys=True))
    return status


def regions_main(argv: List[str]) -> int:
    from ..suite import all_benchmarks, bench_profile, get_benchmark
    from .regions import analyze_task, inferred_path_budget, lint_profile_budget

    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis regions",
        description="Array-region and loop-bound analysis: per-loop "
                    "ranking bounds, per-array index footprints, value "
                    "ranges, syntactic path counts, and the "
                    "hand-vs-inferred path-budget lint.")
    ap.add_argument("names", nargs="*",
                    help="benchmark names (default: the whole suite)")
    ap.add_argument("--json", action="store_true",
                    help="emit the reports as JSON on stdout")
    args = ap.parse_args(argv)

    names = args.names or sorted(all_benchmarks())
    status = 0
    blobs = []
    for name in names:
        task = get_benchmark(name).task
        report = analyze_task(task, name=name)
        profile = bench_profile(name)
        diags = lint_profile_budget(name, profile.budget)
        if args.json:
            blob = report.to_json()
            blob["profile_budget"] = profile.budget
            blob["inferred_paths"] = inferred_path_budget(name)
            blob["lint"] = [str(d) for d in diags]
            blobs.append(blob)
        else:
            print(report.describe())
            if profile.budget:
                print(f"  profile budget: {profile.budget}")
        for d in diags:
            print(f"{name}: {d}", file=sys.stderr)
            status = 1
    if args.json:
        print(json.dumps(blobs, indent=2, sort_keys=True))
    return status


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "certify":
        return certify_main(argv[1:])
    if argv and argv[0] == "unknowns":
        return unknowns_main(argv[1:])
    if argv and argv[0] == "regions":
        return regions_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint PINS programs / the benchmark suite "
                    "(or: certify ... / unknowns ... / regions ...).")
    ap.add_argument("files", nargs="*",
                    help="program source files to lint")
    ap.add_argument("--suite", action="store_true",
                    help="lint every suite benchmark (program, template, "
                         "ground truth)")
    ap.add_argument("--strict", action="store_true",
                    help="treat warnings as failures")
    ap.add_argument("--verbose", action="store_true",
                    help="also print non-failing diagnostics")
    args = ap.parse_args(argv)

    if not args.files and not args.suite:
        ap.error("nothing to lint: give file paths or --suite")

    status = 0
    if args.suite:
        status = max(status, run_suite_lint(strict=args.strict,
                                            verbose=args.verbose))
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                program = parse_program(fh.read())
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            return 2
        except ParseError as exc:
            print(f"{path}: parse error: {exc}", file=sys.stderr)
            return 2
        diags = lint_program(program)
        failures = failing(diags, strict=args.strict)
        shown = diags if args.verbose else failures
        for d in shown:
            print(f"{path}: {d}")
        if failures:
            status = max(status, 1)
        print(f"{path}: {'FAIL' if failures else 'ok'} "
              f"({len(diags)} finding(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
