"""Command-line linter: ``python -m repro.analysis [files...]``.

Lints source files in the Fig. 2 concrete syntax (as accepted by
:func:`repro.lang.parser.parse_program`), or the whole benchmark suite
with ``--suite``.  Exit status: 0 clean, 1 diagnostics failed the run,
2 a file could not be parsed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..lang.parser import ParseError, parse_program
from .diagnostics import failing
from .lint import lint_program
from .suitelint import run_suite_lint


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint PINS programs / the benchmark suite.")
    ap.add_argument("files", nargs="*",
                    help="program source files to lint")
    ap.add_argument("--suite", action="store_true",
                    help="lint every suite benchmark (program, template, "
                         "ground truth)")
    ap.add_argument("--strict", action="store_true",
                    help="treat warnings as failures")
    ap.add_argument("--verbose", action="store_true",
                    help="also print non-failing diagnostics")
    args = ap.parse_args(argv)

    if not args.files and not args.suite:
        ap.error("nothing to lint: give file paths or --suite")

    status = 0
    if args.suite:
        status = max(status, run_suite_lint(strict=args.strict,
                                            verbose=args.verbose))
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                program = parse_program(fh.read())
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            return 2
        except ParseError as exc:
            print(f"{path}: parse error: {exc}", file=sys.stderr)
            return 2
        diags = lint_program(program)
        failures = failing(diags, strict=args.strict)
        shown = diags if args.verbose else failures
        for d in shown:
            print(f"{path}: {d}")
        if failures:
            status = max(status, 1)
        print(f"{path}: {'FAIL' if failures else 'ok'} "
              f"({len(diags)} finding(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
