"""Command-line analysis tools: ``python -m repro.analysis``.

Two modes:

* ``python -m repro.analysis [files...] [--suite]`` — lint source files
  in the Fig. 2 concrete syntax (as accepted by
  :func:`repro.lang.parser.parse_program`), or the whole benchmark suite.
  Exit status: 0 clean, 1 diagnostics failed the run, 2 a file could not
  be parsed.
* ``python -m repro.analysis certify [names...]`` — abstractly certify
  the suite's ground-truth inverses (``P ; P⁻¹`` identity) over each
  task's bounded value range and report per-variable PROVED/UNKNOWN.
  With ``--baseline FILE`` exits 1 if any recorded PROVED verdict
  regressed; ``--write-baseline FILE`` records the current verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from ..lang.parser import ParseError, parse_program
from .diagnostics import failing
from .lint import lint_program
from .suitelint import run_suite_lint


def certify_main(argv: List[str]) -> int:
    from .certify import (certify_suite, compare_to_baseline, load_baseline,
                          reports_to_json, save_baseline)

    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis certify",
        description="Abstractly certify suite inverses (P ; P⁻¹ identity).")
    ap.add_argument("names", nargs="*",
                    help="benchmark names (default: the whole suite)")
    ap.add_argument("--max-boxes", type=int, default=512,
                    help="subdivision budget per certified variable")
    ap.add_argument("--json", action="store_true",
                    help="emit the verdict map as JSON on stdout")
    ap.add_argument("--baseline", metavar="FILE",
                    help="fail on regressions from this recorded verdict map")
    ap.add_argument("--write-baseline", metavar="FILE",
                    help="record the current verdict map to FILE")
    args = ap.parse_args(argv)

    reports = certify_suite(args.names or None, max_boxes=args.max_boxes)
    if args.json:
        print(json.dumps(reports_to_json(reports), indent=2, sort_keys=True))
    else:
        for r in reports:
            print(f"{r.name} (range {r.value_range[0]}..{r.value_range[1]}, "
                  f"{r.boxes_explored} analysis runs):")
            for v in r.verdicts:
                print(f"  {v}")
    status = 0
    if args.baseline:
        regressions, improvements = compare_to_baseline(
            reports, load_baseline(args.baseline))
        for line in improvements:
            print(f"improved: {line}")
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if regressions:
            status = 1
        else:
            print(f"baseline ok: no PROVED verdict regressed "
                  f"({args.baseline})")
    if args.write_baseline:
        save_baseline(reports, args.write_baseline)
        print(f"wrote {args.write_baseline}")
    return status


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "certify":
        return certify_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint PINS programs / the benchmark suite "
                    "(or: certify ...).")
    ap.add_argument("files", nargs="*",
                    help="program source files to lint")
    ap.add_argument("--suite", action="store_true",
                    help="lint every suite benchmark (program, template, "
                         "ground truth)")
    ap.add_argument("--strict", action="store_true",
                    help="treat warnings as failures")
    ap.add_argument("--verbose", action="store_true",
                    help="also print non-failing diagnostics")
    args = ap.parse_args(argv)

    if not args.files and not args.suite:
        ap.error("nothing to lint: give file paths or --suite")

    status = 0
    if args.suite:
        status = max(status, run_suite_lint(strict=args.strict,
                                            verbose=args.verbose))
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                program = parse_program(fh.read())
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            return 2
        except ParseError as exc:
            print(f"{path}: parse error: {exc}", file=sys.stderr)
            return 2
        diags = lint_program(program)
        failures = failing(diags, strict=args.strict)
        shown = diags if args.verbose else failures
        for d in shown:
            print(f"{path}: {d}")
        if failures:
            status = max(status, 1)
        print(f"{path}: {'FAIL' if failures else 'ok'} "
              f"({len(diags)} finding(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
