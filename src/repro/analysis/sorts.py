"""Sort inference and checking — the single implementation.

:mod:`repro.lang.types` re-exports :func:`infer_expr_sort` /
:func:`candidate_fits` as thin shims over this module, so the whole
codebase shares one sort checker.  Compared with the original shim this
version also recurses into ``FunApp`` arguments: when the context knows
the extern's full :class:`Signature` (arity + argument sorts), an
ill-sorted argument — e.g. an array passed where an int is expected —
raises :class:`SortError` instead of silently passing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from ..lang import ast
from ..lang.ast import Expr, Sort


class SortError(Exception):
    """An expression is not well-sorted."""


@dataclass(frozen=True)
class Signature:
    """Full sort signature of an external function."""

    args: Tuple[Sort, ...]
    result: Sort


ExternSpec = Union[Signature, Sort]


class SortContext:
    """Declarations plus whatever is known about extern functions.

    ``externs`` accepts any of the shapes the codebase uses:

    * an :class:`repro.axioms.registry.ExternRegistry` (full signatures),
    * a ``Mapping[str, Signature]``,
    * a ``Mapping[str, Sort]`` giving result sorts only (the historical
      ``extern_sorts`` convention — argument sorts are then unchecked),
    * ``None``.
    """

    def __init__(self, decls: Optional[Mapping[str, Sort]] = None,
                 externs: object = None):
        self.decls: Mapping[str, Sort] = decls or {}
        self._signatures: Mapping[str, ExternSpec] = _normalize_externs(externs)

    def var_sort(self, name: str) -> Optional[Sort]:
        return self.decls.get(name)

    def signature(self, name: str) -> Optional[Signature]:
        spec = self._signatures.get(name)
        return spec if isinstance(spec, Signature) else None

    def result_sort(self, name: str) -> Optional[Sort]:
        spec = self._signatures.get(name)
        if isinstance(spec, Signature):
            return spec.result
        return spec  # a bare Sort, or None


def _normalize_externs(externs: object) -> Mapping[str, ExternSpec]:
    if externs is None:
        return {}
    # ExternRegistry duck-typing: has .names() and .get() yielding objects
    # with arg_sorts/result_sort.
    if hasattr(externs, "names") and hasattr(externs, "get") \
            and not isinstance(externs, Mapping):
        table = {}
        for name in externs.names():
            ext = externs.get(name)
            table[name] = Signature(tuple(ext.arg_sorts), ext.result_sort)
        return table
    if isinstance(externs, Mapping):
        return dict(externs)
    raise TypeError(f"cannot interpret extern sorts from {externs!r}")


def _as_context(decls, externs) -> SortContext:
    if isinstance(decls, SortContext):
        return decls
    return SortContext(decls, externs)


def infer_expr_sort(e: Expr,
                    decls: Union[SortContext, Mapping[str, Sort], None],
                    extern_sorts: object = None) -> Optional[Sort]:
    """The sort of ``e``, or None when it cannot be determined.

    Raises :class:`SortError` on definite ill-sortedness (arithmetic over
    an array, a select from a scalar, an extern applied at the wrong
    arity or to wrongly-sorted arguments, ...).
    """
    ctx = _as_context(decls, extern_sorts)
    return _infer(e, ctx)


def _infer(e: Expr, ctx: SortContext) -> Optional[Sort]:
    if isinstance(e, ast.Var):
        return ctx.var_sort(e.name)
    if isinstance(e, ast.IntLit):
        return Sort.INT
    if isinstance(e, ast.BinOp):
        for side in (e.left, e.right):
            sort = _infer(side, ctx)
            if sort is not None and sort is not Sort.INT:
                raise SortError(f"arithmetic over non-integer operand in {e}")
        return Sort.INT
    if isinstance(e, ast.Select):
        arr = _infer(e.array, ctx)
        idx = _infer(e.index, ctx)
        if idx is not None and idx is not Sort.INT:
            raise SortError(f"non-integer index in {e}")
        if arr is None:
            return None
        if not arr.is_array:
            raise SortError(f"select from non-array in {e}")
        return arr.element()
    if isinstance(e, ast.Update):
        arr = _infer(e.array, ctx)
        idx = _infer(e.index, ctx)
        if idx is not None and idx is not Sort.INT:
            raise SortError(f"non-integer index in {e}")
        if arr is not None and not arr.is_array:
            raise SortError(f"update of non-array in {e}")
        val = _infer(e.value, ctx)
        if arr is not None and val is not None and val is not arr.element():
            raise SortError(f"element sort mismatch in {e}")
        return arr
    if isinstance(e, ast.FunApp):
        sig = ctx.signature(e.name)
        if sig is not None:
            if len(e.args) != len(sig.args):
                raise SortError(
                    f"{e.name} expects {len(sig.args)} argument(s), "
                    f"got {len(e.args)} in {e}"
                )
            for i, (arg, expected) in enumerate(zip(e.args, sig.args)):
                got = _infer(arg, ctx)
                if got is not None and got is not expected:
                    raise SortError(
                        f"argument {i + 1} of {e.name} has sort "
                        f"{got.name}, expected {expected.name} in {e}"
                    )
            return sig.result
        # Result sort known (or not) but arguments unchecked: still
        # recurse so ill-sortedness *inside* an argument is caught.
        for arg in e.args:
            _infer(arg, ctx)
        return ctx.result_sort(e.name)
    if isinstance(e, (ast.Unknown, ast.HoleExpr)):
        return None
    raise TypeError(f"unexpected expression {e!r}")


def candidate_fits(candidate: Expr, target_sort: Sort,
                   decls: Union[SortContext, Mapping[str, Sort], None],
                   extern_sorts: object = None) -> bool:
    """True if a candidate expression may fill a slot of ``target_sort``."""
    ctx = _as_context(decls, extern_sorts)
    try:
        sort = _infer(candidate, ctx)
    except SortError:
        return False
    return sort is None or sort is target_sort


def check_pred_sorts(p: "ast.Pred", ctx: SortContext) -> None:
    """Raise :class:`SortError` if a predicate is ill-sorted."""
    if isinstance(p, ast.BoolLit):
        return
    if isinstance(p, ast.Cmp):
        left = _infer(p.left, ctx)
        right = _infer(p.right, ctx)
        for side, sort in ((p.left, left), (p.right, right)):
            if sort is not None and sort.is_array:
                raise SortError(f"comparison over array operand {side} in {p}")
        if left is not None and right is not None and left is not right:
            raise SortError(
                f"comparison between {left.name} and {right.name} in {p}"
            )
        return
    if isinstance(p, ast.Not):
        check_pred_sorts(p.pred, ctx)
        return
    if isinstance(p, (ast.And, ast.Or)):
        for part in p.parts:
            check_pred_sorts(part, ctx)
        return
    if isinstance(p, (ast.UnknownPred, ast.HolePred)):
        return
    raise TypeError(f"unexpected predicate {p!r}")
