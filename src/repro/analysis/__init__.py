"""Static analysis over the Fig. 2 IR: linting, dataflow, abstract
interpretation, and pruning.

Pipeline consumers on top of this package:

* :func:`repro.analysis.prune.prune_hole_space` shrinks per-hole
  candidate sets (and hence the SAT indicator space) before
  ``pins.solve`` runs;
* the symbolic executor folds branch guards through
  :mod:`repro.analysis.fold`'s linear forms *and* threads an abstract
  state from :mod:`repro.analysis.absint` to skip statically infeasible
  paths without an SMT feasibility call;
* the constraint checker screens (constraint, candidate) pairs through
  abstract saturation before any full SMT check (DESIGN.md §11), and
  through the linear fold / Fourier–Motzkin engine
  (:mod:`repro.analysis.linear`, DESIGN.md §13);
* :func:`repro.analysis.fwdbwd.analyze_unknowns` statically refutes
  hole candidates (and candidate pairs) before CDCL, seeding
  ``pins.solve`` with unit clauses (DESIGN.md §13);
* :mod:`repro.analysis.certify` proves the ``P ; P⁻¹`` identity over
  bounded input boxes, and ``validate.roundtrip`` rides it along as a
  pre-check;
* ``pins.template`` / ``pins.task`` fail fast with located
  :class:`~repro.analysis.diagnostics.Diagnostic` objects when a
  template provably cannot write an output the identity spec requires.

``python -m repro.analysis`` (linting, ``certify``, ``unknowns``) and
``scripts/lint_suite.py`` expose the tools on the command line.
"""

from .absint import (
    AbsEnv,
    AnalysisResult,
    BackwardAnalyzer,
    ForwardAnalyzer,
    LoopInfo,
    absint_enabled,
    forward_backward_prove,
    preds_unsat,
    saturate,
)
from .cfg import CFG, Node, build_cfg
from .certify import (
    CertificateReport,
    VariableVerdict,
    certify_benchmark,
    certify_composed,
    certify_suite,
)
from .domains import AbsVal, Congruence, Interval, Sign
from .dataflow import (
    constant_propagation,
    dead_stores,
    definitely_defined,
    live_variables,
    reaching_definitions,
)
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    failing,
    has_errors,
    worst_severity,
)
from .fold import Lin, const_expr, const_pred, lin_expr, lin_pred
from .fwdbwd import (
    FeasibleSet,
    FwdBwdReport,
    PairRefutation,
    Refutation,
    analyze_unknowns,
    fold_goal,
    fwdbwd_enabled,
    sample_state,
)
from .linear import Affine, LinearRefuter, affine_expr, affine_pred, linear_unsat
from .lint import (check_writable_outputs, lint_program, lint_template,
                   lint_unknowns)
from .prune import (
    PruneReport,
    prune_hole_space,
    static_pruning_enabled,
)
from .sorts import Signature, SortContext, SortError, candidate_fits, infer_expr_sort
from .suitelint import lint_benchmark, lint_suite, run_suite_lint

__all__ = [name for name in dir() if not name.startswith("_")]
