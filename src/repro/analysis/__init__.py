"""Static analysis over the Fig. 2 IR: linting, dataflow, and pruning.

Three pipeline consumers sit on top of this package:

* :func:`repro.analysis.prune.prune_hole_space` shrinks per-hole
  candidate sets (and hence the SAT indicator space) before
  ``pins.solve`` runs;
* the symbolic executor folds branch guards through
  :mod:`repro.analysis.fold`'s linear forms to skip statically
  infeasible paths without an SMT feasibility call;
* ``pins.template`` / ``pins.task`` fail fast with located
  :class:`~repro.analysis.diagnostics.Diagnostic` objects when a
  template provably cannot write an output the identity spec requires.

``python -m repro.analysis`` and ``scripts/lint_suite.py`` expose the
linter on the command line.
"""

from .cfg import CFG, Node, build_cfg
from .dataflow import (
    constant_propagation,
    dead_stores,
    definitely_defined,
    live_variables,
    reaching_definitions,
)
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    failing,
    has_errors,
    worst_severity,
)
from .fold import Lin, const_expr, const_pred, lin_expr, lin_pred
from .lint import check_writable_outputs, lint_program, lint_template
from .prune import (
    PruneReport,
    prune_hole_space,
    static_pruning_enabled,
)
from .sorts import Signature, SortContext, SortError, candidate_fits, infer_expr_sort
from .suitelint import lint_benchmark, lint_suite, run_suite_lint

__all__ = [name for name in dir() if not name.startswith("_")]
