"""Constant and linear-form folding for expressions and predicates.

Two evaluation domains:

* **Constants** (:func:`const_expr`, :func:`const_pred`) — plain integer
  folding against a ``{var: int}`` environment; used by
  :func:`repro.analysis.dataflow.constant_propagation` and the linter's
  infeasible-branch check.
* **Linear forms** (:class:`Lin`, :func:`lin_expr`, :func:`lin_pred`) —
  ``base + offset`` with an optional symbolic base, used by the symbolic
  executor to decide guards without SMT: ``x#3 ↦ Lin("n#0", 2)`` against
  guard ``x > n`` folds to ``n + 2 > n + 0 ≡ True`` even though neither
  side is a literal.  Comparisons fold only when both sides are literal
  constants or share the same base, so every fold is sound for *all*
  valuations of the base.

Division follows the interpreter's semantics exactly: floor toward
negative infinity (Python ``//``/``%``); division by zero never folds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from ..lang import ast
from ..lang.ast import ArithOp, CmpOp, Expr, Pred
from .domains import AbsVal, cmp_values


def _decide_cmp(op: CmpOp, left: int, right: int) -> bool:
    """Compare two known integers through the abstract comparison
    transfer, so folding and abstract interpretation share one
    definition of every operator.  On singleton values
    :func:`repro.analysis.domains.cmp_values` always decides."""
    result = cmp_values(op, AbsVal.const(left), AbsVal.const(right))
    assert result is not None
    return result


@dataclass(frozen=True)
class Lin:
    """``base + offset`` where ``base`` is a variable name or None (pure
    constant)."""

    base: Optional[str]
    offset: int

    @property
    def is_const(self) -> bool:
        return self.base is None

    def __str__(self) -> str:
        if self.base is None:
            return str(self.offset)
        if self.offset == 0:
            return self.base
        sign = "+" if self.offset > 0 else "-"
        return f"{self.base} {sign} {abs(self.offset)}"


LinEnv = Mapping[str, Lin]


def lin_expr(e: Expr, env: LinEnv) -> Optional[Lin]:
    """Evaluate ``e`` to a linear form, or None when it has none."""
    if isinstance(e, ast.IntLit):
        return Lin(None, e.value)
    if isinstance(e, ast.Var):
        known = env.get(e.name)
        if known is not None:
            return known
        return Lin(e.name, 0)
    if isinstance(e, ast.BinOp):
        left = lin_expr(e.left, env)
        right = lin_expr(e.right, env)
        if left is None or right is None:
            return None
        if e.op is ArithOp.ADD:
            if left.is_const:
                return Lin(right.base, right.offset + left.offset)
            if right.is_const:
                return Lin(left.base, left.offset + right.offset)
            return None
        if e.op is ArithOp.SUB:
            if right.is_const:
                return Lin(left.base, left.offset - right.offset)
            if left.base == right.base:  # x - x, (x+a) - (x+b)
                return Lin(None, left.offset - right.offset)
            return None
        if e.op is ArithOp.MUL:
            if left.is_const and right.is_const:
                return Lin(None, left.offset * right.offset)
            if left.is_const and left.offset in (0, 1):
                return Lin(None, 0) if left.offset == 0 else right
            if right.is_const and right.offset in (0, 1):
                return Lin(None, 0) if right.offset == 0 else left
            return None
        if e.op is ArithOp.DIV:
            if left.is_const and right.is_const and right.offset != 0:
                return Lin(None, left.offset // right.offset)
            return None
        if e.op is ArithOp.MOD:
            if left.is_const and right.is_const and right.offset != 0:
                return Lin(None, left.offset % right.offset)
            return None
        return None
    # Select/Update/FunApp/holes: no linear form.
    return None


def lin_cmp(op: CmpOp, left: Lin, right: Lin) -> Optional[bool]:
    """Decide a comparison of two linear forms when sound to do so."""
    if left.is_const and right.is_const:
        return _decide_cmp(op, left.offset, right.offset)
    if left.base == right.base:
        return _decide_cmp(op, left.offset, right.offset)
    return None


def lin_pred(p: Pred, env: LinEnv) -> Optional[bool]:
    """Three-valued evaluation of ``p`` under linear forms."""
    if isinstance(p, ast.BoolLit):
        return p.value
    if isinstance(p, ast.Cmp):
        left = lin_expr(p.left, env)
        right = lin_expr(p.right, env)
        if left is None or right is None:
            return None
        return lin_cmp(p.op, left, right)
    if isinstance(p, ast.Not):
        inner = lin_pred(p.pred, env)
        return None if inner is None else (not inner)
    if isinstance(p, ast.And):
        values = [lin_pred(part, env) for part in p.parts]
        if any(val is False for val in values):
            return False
        if all(val is True for val in values):
            return True
        return None
    if isinstance(p, ast.Or):
        values = [lin_pred(part, env) for part in p.parts]
        if any(val is True for val in values):
            return True
        if all(val is False for val in values):
            return False
        return None
    # UnknownPred / HolePred: undecidable.
    return None


def _const_env(env: Mapping[str, int]) -> Dict[str, Lin]:
    return {name: Lin(None, val) for name, val in env.items()}


def const_expr(e: Expr, env: Mapping[str, int]) -> Optional[int]:
    """Fold ``e`` to an integer constant using ``{var: int}`` facts."""
    lin = lin_expr(e, _const_env(env))
    if lin is not None and lin.is_const:
        return lin.offset
    return None


def const_pred(p: Pred, env: Mapping[str, int]) -> Optional[bool]:
    """Three-valued constant folding of a predicate."""
    return lin_pred(p, _const_env(env))
