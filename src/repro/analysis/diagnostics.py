"""Structured diagnostics for the static-analysis layer.

Every finding of the linter (and of the fail-fast validation hooks in
:mod:`repro.pins.template` / :mod:`repro.pins.task`) is a
:class:`Diagnostic`: a severity, a stable machine-readable code, a
human-readable message, and a *statement location*.  Locations are
1-based line numbers inside the program body, counted exactly the way
:func:`repro.lang.transform.loc_of` counts lines (a parallel assignment
to k variables spans k lines, loop/branch guards take one line, ``Seq``
nodes are free) — so a diagnostic's line matches the LoC accounting used
everywhere else in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding, anchored to a statement location."""

    code: str
    severity: str
    message: str
    line: int = 0
    program: str = ""
    statement: str = ""
    """Pretty-printed fragment of the offending statement (may be empty)."""

    def __str__(self) -> str:
        where = f"{self.program or '<program>'}:{self.line}"
        text = f"{where}: {self.severity} [{self.code}] {self.message}"
        if self.statement:
            text += f"  (in `{self.statement}`)"
        return text


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == ERROR for d in diagnostics)


def worst_severity(diagnostics: Sequence[Diagnostic]) -> str:
    if not diagnostics:
        return INFO
    return max((d.severity for d in diagnostics), key=_SEVERITY_RANK.__getitem__)


def failing(diagnostics: Iterable[Diagnostic], strict: bool = False) -> List[Diagnostic]:
    """The diagnostics that should fail a lint run.

    Errors always fail; warnings fail under ``strict``; infos never fail.
    """
    bad = (ERROR,) if not strict else (ERROR, WARNING)
    return [d for d in diagnostics if d.severity in bad]


class AnalysisError(Exception):
    """Raised by fail-fast hooks when a program/template is malformed.

    Carries the structured diagnostics so callers can render or filter
    them; ``str()`` shows them one per line.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)
        super().__init__("\n".join(str(d) for d in self.diagnostics)
                         or "analysis failed")
