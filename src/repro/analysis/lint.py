"""Program-level well-formedness linting over the Fig. 2 IR.

:func:`lint_program` runs every check against a single
:class:`~repro.lang.ast.Program`; :func:`lint_template` lints an inverse
template in the context of its forward program (everything the forward
program writes counts as defined on entry, mirroring how ``compose``
runs the template after the program).

Diagnostic codes:

====================  ========  ===================================================
code                  severity  meaning
====================  ========  ===================================================
``undeclared-var``    error     a variable used or assigned but absent from decls
``use-before-def``    error     a scalar read with *no* reaching definition
``sort-error``        error     a statement is ill-sorted
``unwritable-output`` error     ``out(x)`` where nothing can ever write ``x``
``decl-conflict``     error     program/template declare a shared name at two sorts
``static-false``      warning   a guard or assume folds to ``false`` statically
``stuck-loop``        warning   a hole-free loop body never updates its guard
``nonterminating-loop``  warning  abstract interpretation proves a guard never
                                  becomes false: certain non-termination
``empty-candidate-family``  warning  the forward-backward unknowns analysis
                                     refutes every candidate of a hole
``duplicate-io``      warning   more than one ``in``/``out`` statement
``dead-store``        info      a single-target assignment whose value is never read
====================  ========  ===================================================

Use-before-def is deliberately restricted to non-array sorts: the
suite's idiomatic incremental array builds (``Ap := upd(Ap, ip, ...)``)
read the array's unconstrained initial value on purpose, whereas a
scalar with no reaching definition is always a bug.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang.ast import Assign, Assume, GIf, GWhile, In, Out, Program, Sort
from ..lang.pretty import pretty_pred, pretty_stmt
from .cfg import BRANCH, CFG, Node, build_cfg
from .dataflow import (
    ENTRY_SITE,
    constant_propagation,
    dead_stores,
    reaching_definitions,
)
from .diagnostics import Diagnostic, ERROR, INFO, WARNING
from .fold import const_pred
from .sorts import SortContext, SortError, _infer, check_pred_sorts

UNDECLARED_VAR = "undeclared-var"
USE_BEFORE_DEF = "use-before-def"
SORT_ERROR = "sort-error"
UNWRITABLE_OUTPUT = "unwritable-output"
DECL_CONFLICT = "decl-conflict"
STATIC_FALSE = "static-false"
STUCK_LOOP = "stuck-loop"
NONTERMINATING_LOOP = "nonterminating-loop"
EMPTY_CANDIDATE_FAMILY = "empty-candidate-family"
DUPLICATE_IO = "duplicate-io"
DEAD_STORE = "dead-store"


def _snippet(node: Node) -> str:
    if node.stmt is None:
        return ""
    if isinstance(node.stmt, (GIf, GWhile)) and node.pred is not None:
        head = "if" if isinstance(node.stmt, GIf) else "while"
        return f"{head} ({pretty_pred(node.pred)})"
    if isinstance(node.stmt, (ast.If, ast.While)):
        head = "if" if isinstance(node.stmt, ast.If) else "while"
        return f"{head} (*)"
    text = pretty_stmt(node.stmt).strip()
    first = text.splitlines()[0] if text else ""
    return first if len(first) <= 72 else first[:69] + "..."


def lint_program(program: Program,
                 externs: object = None,
                 entry_defined: Iterable[str] = ()) -> List[Diagnostic]:
    """All diagnostics for one program, sorted by line."""
    ctx = SortContext(program.decls, externs)
    cfg = build_cfg(program.body)
    diags: List[Diagnostic] = []

    def emit(code: str, severity: str, message: str, node: Node,
             line: Optional[int] = None) -> None:
        diags.append(Diagnostic(
            code=code, severity=severity, message=message,
            line=node.line if line is None else line,
            program=program.name, statement=_snippet(node),
        ))

    entry_defined = frozenset(entry_defined)
    _check_scopes(program, cfg, emit, entry_defined)
    _check_sorts(program, cfg, ctx, emit)
    _check_outputs(program, cfg, emit, entry_defined)
    _check_guards(program, cfg, emit)
    _check_termination(program, cfg, emit)
    _check_io(cfg, emit)
    if not ast.stmt_unknowns(program.body):
        # Holes hide uses from the liveness analysis, so dead-store facts
        # are only trustworthy for hole-free bodies.
        _check_dead_stores(cfg, emit)
    diags.sort(key=lambda d: (d.line, d.code))
    return diags


def lint_template(program: Program, inverse: Program,
                  externs: object = None) -> List[Diagnostic]:
    """Lint an inverse template as it runs after ``program``.

    The forward program's inputs and every variable it assigns count as
    defined when the template starts (that is the state ``compose``
    hands over).  Shared declarations must agree on sorts.
    """
    entry_defined = frozenset(program.inputs) | ast.assigned_vars(program.body)
    diags = lint_program(inverse, externs, entry_defined=entry_defined)
    for name, sort in sorted(inverse.decls.items()):
        other = program.decls.get(name)
        if other is not None and other is not sort:
            diags.insert(0, Diagnostic(
                code=DECL_CONFLICT, severity=ERROR,
                message=(f"'{name}' is declared {sort.name} here but "
                         f"{other.name} in program '{program.name}'"),
                line=0, program=inverse.name,
            ))
    return diags


def lint_unknowns(task) -> List[Diagnostic]:
    """Flag template holes whose candidate family the forward-backward
    unknowns analysis statically empties (``empty-candidate-family``).

    ``solve()`` can never fill such a hole: every candidate is refuted
    before CDCL runs, so synthesis is doomed to ``no_solution`` — almost
    always a template or ``Phi_e``/``Phi_p`` authoring mistake.  Emitted
    as a warning (a deliberately unsolvable task is conceivable), so it
    fails runs only under ``--strict``.
    """
    from ..lang.transform import compose, desugar_program
    from ..pins.algorithm import build_template
    from .fwdbwd import analyze_unknowns

    desugared = desugar_program(compose(task.program, task.inverse))
    template = build_template(task)
    spec = task.derived_spec(desugared.decls)
    report = analyze_unknowns(task.program, task.inverse, template.space,
                              spec, desugared.decls)
    diags: List[Diagnostic] = []
    for hole in report.empty_holes():
        fs = report.feasible[hole]
        sample = "; ".join(str(r) for r in fs.refuted[:2])
        suffix = f" (e.g. {sample})" if sample else ""
        diags.append(Diagnostic(
            code=EMPTY_CANDIDATE_FAMILY, severity=WARNING,
            message=(f"hole '{hole}' has no statically feasible candidate: "
                     f"all {fs.total} refuted{suffix}"),
            line=0, program=task.inverse.name))
    return diags


def check_writable_outputs(program: Program,
                           entry_defined: Iterable[str] = ()) -> List[Diagnostic]:
    """Just the ``unwritable-output`` check — the cheap fail-fast subset
    used by :mod:`repro.pins.template` / :mod:`repro.pins.task`."""
    cfg = build_cfg(program.body)
    diags: List[Diagnostic] = []

    def emit(code: str, severity: str, message: str, node: Node,
             line: Optional[int] = None) -> None:
        diags.append(Diagnostic(
            code=code, severity=severity, message=message,
            line=node.line if line is None else line,
            program=program.name, statement=_snippet(node),
        ))

    _check_outputs(program, cfg, emit, frozenset(entry_defined))
    return diags


# -- individual checks -------------------------------------------------------


def _check_scopes(program: Program, cfg: CFG, emit, entry_defined) -> None:
    decls = program.decls
    reaching = reaching_definitions(cfg, entry_defined)
    seen_undeclared: Set[str] = set()
    for node in cfg.statement_nodes():
        for var in sorted(node.uses() | node.defs()):
            if var not in decls and var not in seen_undeclared:
                seen_undeclared.add(var)
                emit(UNDECLARED_VAR, ERROR,
                     f"variable '{var}' is not declared", node)
        facts = reaching.get(node.index, frozenset())
        defined = {var for (var, _site) in facts}
        for var in sorted(node.uses()):
            sort = decls.get(var)
            if sort is None or sort.is_array:
                continue
            if var not in defined:
                emit(USE_BEFORE_DEF, ERROR,
                     f"'{var}' is read but no definition reaches here",
                     node)


def _check_sorts(program: Program, cfg: CFG, ctx: SortContext, emit) -> None:
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if isinstance(stmt, Assign):
            for i, (target, expr) in enumerate(zip(stmt.targets, stmt.exprs)):
                target_sort = program.decls.get(target)
                try:
                    expr_sort = _infer(expr, ctx)
                except SortError as exc:
                    emit(SORT_ERROR, ERROR, str(exc), node,
                         line=node.line + i)
                    continue
                if (target_sort is not None and expr_sort is not None
                        and expr_sort is not target_sort):
                    emit(SORT_ERROR, ERROR,
                         f"assigning {expr_sort.name} expression to "
                         f"{target_sort.name} variable '{target}'",
                         node, line=node.line + i)
        pred = None
        if isinstance(stmt, Assume):
            pred = stmt.pred
        elif node.kind == BRANCH and node.pred is not None:
            pred = node.pred
        if pred is not None:
            try:
                check_pred_sorts(pred, ctx)
            except SortError as exc:
                emit(SORT_ERROR, ERROR, str(exc), node)


def _check_outputs(program: Program, cfg: CFG, emit, entry_defined) -> None:
    writable = (frozenset(program.inputs)
                | ast.assigned_vars(program.body)
                | entry_defined)
    for node in cfg.statement_nodes():
        if not isinstance(node.stmt, Out):
            continue
        for var in node.stmt.names:
            if var not in writable:
                emit(UNWRITABLE_OUTPUT, ERROR,
                     f"output variable '{var}' is never written and not "
                     f"defined on entry", node)


def _check_guards(program: Program, cfg: CFG, emit) -> None:
    consts = constant_propagation(cfg)
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if isinstance(stmt, GWhile):
            guard_vars = ast.expr_vars(stmt.cond)
            if not ast.stmt_unknowns(stmt.body):
                written = ast.assigned_vars(stmt.body)
                if guard_vars and not (guard_vars & written):
                    emit(STUCK_LOOP, WARNING,
                         "loop guard reads only variables the body never "
                         "updates", node)
        pred = None
        if isinstance(stmt, Assume):
            pred = stmt.pred
        elif node.kind == BRANCH and node.pred is not None:
            pred = node.pred
        if pred is not None:
            facts = consts.get(node.index, {})
            if const_pred(pred, facts) is False:
                what = ("assume" if isinstance(stmt, Assume)
                        else "branch condition")
                emit(STATIC_FALSE, WARNING,
                     f"{what} is statically false", node)


def _check_termination(program: Program, cfg: CFG, emit) -> None:
    """Flag loops whose guard *provably* never becomes false.

    Runs the abstract interpreter from an unconstrained entry state, so
    a reported loop diverges for every input — e.g. ``while (i >= 0)
    (i := i + 1)``.  Hole-ridden bodies are skipped: a filled hole could
    update anything, so no termination claim is sound for templates.
    """
    if ast.stmt_unknowns(program.body):
        return
    from .absint import ForwardAnalyzer

    fwd = ForwardAnalyzer(program.decls)
    fwd.run(program.body)
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if isinstance(stmt, (GWhile, ast.While)):
            info = fwd.loop_info(stmt)
            if info is not None and info.certainly_diverges:
                emit(NONTERMINATING_LOOP, WARNING,
                     "loop guard can provably never become false: the loop "
                     "never terminates", node)


def _check_io(cfg: CFG, emit) -> None:
    for cls, word in ((In, "in"), (Out, "out")):
        nodes = [n for n in cfg.statement_nodes() if isinstance(n.stmt, cls)]
        for extra in nodes[1:]:
            emit(DUPLICATE_IO, WARNING,
                 f"more than one `{word}(...)` statement", extra)


def _check_dead_stores(cfg: CFG, emit) -> None:
    for idx, gone in sorted(dead_stores(cfg).items()):
        node = cfg.nodes[idx]
        for var in sorted(gone):
            emit(DEAD_STORE, INFO,
                 f"value assigned to '{var}' is never read", node)
