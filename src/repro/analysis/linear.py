"""Affine forms and linear refutation (bounded Fourier–Motzkin).

The interval/congruence domains in :mod:`repro.analysis.absint` decide
facts about one variable at a time, and the ``base + offset`` forms in
:mod:`repro.analysis.fold` relate exactly two occurrences of the *same*
variable.  Neither can see that ``m - mp - 1 < m - mp' - 1`` is a
tautology when ``mp' = mp + 1`` — precisely the shape of the ranking
deltas and invariant-preservation goals the termination constraints ask
SMT about.  This module closes that gap with two cooperating pieces:

* :class:`Affine` — multi-variable affine combinations
  ``Σ cᵢ·xᵢ + k`` with integer coefficients.  :func:`affine_expr`
  composes a path's SSA definitions into affine forms and
  :func:`affine_pred` folds a goal three-valuedly: a comparison decides
  whenever the *difference* of its sides has no variables left, which is
  sound for every valuation of the bases.

* :func:`linear_unsat` — refutation of a predicate conjunction by
  bounded Fourier–Motzkin elimination.  Atoms are normalised to integer
  inequalities ``Σ cᵢ·xᵢ + k ≤ 0`` (strict comparisons tighten by one —
  over the integers ``a < b`` is ``a + 1 ≤ b``), disjunctions coming
  from negated guards are expanded into a capped DNF, and each
  alternative is eliminated variable by variable; deriving ``k ≤ 0``
  with ``k > 0`` refutes the alternative.  Rational elimination with
  gcd/floor tightening after each step is sound for integer refutation:
  if no rational point survives, no integer point does.

Everything here is *refutation-only*: dropping an atom we cannot
translate (array selects, holes, non-linear terms) only weakens the
fact set, so an UNSAT verdict on the weakened set still refutes the
original.  The engine never claims satisfiability — callers get
``True`` (“proved empty”) or ``False`` (“don't know”).

Budget caps (`max_vars`, `max_ineqs`, DNF width) bound the worst case;
exceeding any cap abandons the proof attempt, never soundness.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.ast import ArithOp, CmpOp, Expr, Pred

# ---------------------------------------------------------------------------
# Affine forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``Σ coeff·var + const`` with integer coefficients.

    ``terms`` is sorted by variable name and never carries zero
    coefficients, so structural equality is semantic equality.
    """

    terms: Tuple[Tuple[str, int], ...]
    const: int

    @staticmethod
    def of_const(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def of_var(name: str) -> "Affine":
        return Affine(((name, 1),), 0)

    @staticmethod
    def make(coeffs: Mapping[str, int], const: int) -> "Affine":
        terms = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return Affine(terms, const)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def __add__(self, other: "Affine") -> "Affine":
        coeffs = dict(self.terms)
        for var, c in other.terms:
            coeffs[var] = coeffs.get(var, 0) + c
        return Affine.make(coeffs, self.const + other.const)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scale(-1)

    def scale(self, k: int) -> "Affine":
        if k == 0:
            return Affine.of_const(0)
        return Affine(tuple((v, c * k) for v, c in self.terms), self.const * k)

    def exact_div(self, d: int) -> Optional["Affine"]:
        """``self / d`` when exact for every valuation, else None.

        If every coefficient and the constant are divisible by ``d``,
        floor division distributes: ``(Σ cᵢxᵢ + k) // d = Σ (cᵢ/d)xᵢ +
        k/d`` for all integer points, matching the interpreter's
        floor-toward-negative-infinity semantics.
        """
        if d == 0:
            return None
        if all(c % d == 0 for _, c in self.terms) and self.const % d == 0:
            return Affine(tuple((v, c // d) for v, c in self.terms),
                          self.const // d)
        return None

    def __str__(self) -> str:
        parts = [f"{c:+d}*{v}" for v, c in self.terms]
        parts.append(f"{self.const:+d}")
        return " ".join(parts)


def affine_expr(expr: Expr, env: Mapping[str, Affine],
                is_int: Optional[Callable[[str], bool]] = None
                ) -> Optional[Affine]:
    """Fold ``expr`` into an affine form, or None when it has a
    non-linear, array, or hole subterm.  ``env`` maps variable names to
    already-composed forms (SSA definitions); unmapped variables stay
    symbolic.  ``is_int`` rejects variables of non-integer sort so array
    or string handles are never conflated with arithmetic unknowns."""
    if isinstance(expr, ast.IntLit):
        return Affine.of_const(expr.value)
    if isinstance(expr, ast.Var):
        known = env.get(expr.name)
        if known is not None:
            return known
        if is_int is not None and not is_int(expr.name):
            return None
        return Affine.of_var(expr.name)
    if isinstance(expr, ast.BinOp):
        left = affine_expr(expr.left, env, is_int)
        right = affine_expr(expr.right, env, is_int)
        if left is None or right is None:
            return None
        if expr.op is ArithOp.ADD:
            return left + right
        if expr.op is ArithOp.SUB:
            return left - right
        if expr.op is ArithOp.MUL:
            if right.is_const:
                return left.scale(right.const)
            if left.is_const:
                return right.scale(left.const)
            return None
        if expr.op is ArithOp.DIV:
            if not right.is_const or right.const == 0:
                return None
            if left.is_const:
                return Affine.of_const(left.const // right.const)
            return left.exact_div(right.const)
        if expr.op is ArithOp.MOD:
            if not right.is_const or right.const == 0:
                return None
            if left.is_const:
                return Affine.of_const(left.const % right.const)
            if left.exact_div(right.const) is not None:
                return Affine.of_const(0)
            return None
    return None


def _cmp_const(op: CmpOp, delta: int) -> bool:
    if op is CmpOp.EQ:
        return delta == 0
    if op is CmpOp.NE:
        return delta != 0
    if op is CmpOp.LT:
        return delta < 0
    if op is CmpOp.LE:
        return delta <= 0
    if op is CmpOp.GT:
        return delta > 0
    return delta >= 0


def affine_cmp(op: CmpOp, left: Affine, right: Affine) -> Optional[bool]:
    """Decide a comparison when the difference of its sides is constant
    (true for *every* valuation of the remaining variables)."""
    delta = left - right
    if delta.is_const:
        return _cmp_const(op, delta.const)
    return None


def affine_pred(pred: Pred, env: Mapping[str, Affine],
                is_int: Optional[Callable[[str], bool]] = None
                ) -> Optional[bool]:
    """Three-valued truth of ``pred`` under the affine environment."""
    if isinstance(pred, ast.BoolLit):
        return pred.value
    if isinstance(pred, ast.Not):
        inner = affine_pred(pred.pred, env, is_int)
        return None if inner is None else not inner
    if isinstance(pred, ast.And):
        saw_none = False
        for part in pred.parts:
            got = affine_pred(part, env, is_int)
            if got is False:
                return False
            if got is None:
                saw_none = True
        return None if saw_none else True
    if isinstance(pred, ast.Or):
        saw_none = False
        for part in pred.parts:
            got = affine_pred(part, env, is_int)
            if got is True:
                return True
            if got is None:
                saw_none = True
        return None if saw_none else False
    if isinstance(pred, ast.Cmp):
        left = affine_expr(pred.left, env, is_int)
        right = affine_expr(pred.right, env, is_int)
        if left is None or right is None:
            return None
        return affine_cmp(pred.op, left, right)
    return None


# ---------------------------------------------------------------------------
# Integer inequalities and Fourier–Motzkin refutation
# ---------------------------------------------------------------------------

#: ``(coeffs, const)`` meaning ``Σ coeffs[v]·v + const ≤ 0``.
Ineq = Tuple[Tuple[Tuple[str, int], ...], int]


def _tighten(coeffs: Dict[str, int], const: int) -> Optional[Ineq]:
    """Normalise ``Σ c·x + const ≤ 0``: drop zero coefficients, divide
    by the gcd with floor-tightening of the constant.  Returns None for
    a tautology (no variables, ``const ≤ 0``)."""
    live = {v: c for v, c in coeffs.items() if c != 0}
    if not live:
        return ((), const) if const > 0 else None
    g = 0
    for c in live.values():
        g = gcd(g, abs(c))
    if g > 1:
        # Σ c·x ≤ -const  ⟹  Σ (c/g)·x ≤ floor(-const / g)
        bound = (-const) // g
        live = {v: c // g for v, c in live.items()}
        const = -bound
    return (tuple(sorted(live.items())), const)


def _ineqs_of_cmp(op: CmpOp, delta: Affine) -> Optional[List[Ineq]]:
    """Conjunction of integer inequalities equivalent to ``delta op 0``.
    ``NE`` is disjunctive and handled by the DNF layer, not here."""
    coeffs = dict(delta.terms)
    if op is CmpOp.LE:
        forms = [(coeffs, delta.const)]
    elif op is CmpOp.LT:
        forms = [(coeffs, delta.const + 1)]
    elif op is CmpOp.GE:
        forms = [({v: -c for v, c in coeffs.items()}, -delta.const)]
    elif op is CmpOp.GT:
        forms = [({v: -c for v, c in coeffs.items()}, -delta.const + 1)]
    elif op is CmpOp.EQ:
        forms = [(dict(coeffs), delta.const),
                 ({v: -c for v, c in coeffs.items()}, -delta.const)]
    else:
        return None
    out: List[Ineq] = []
    for cs, k in forms:
        tight = _tighten(cs, k)
        if tight is not None:
            out.append(tight)
    return out


#: One DNF alternative: a conjunction of integer inequalities plus
#: opaque boolean literals ``{atom: polarity}``.  Atoms the linear
#: fragment cannot translate (array selects, holes, non-linear terms)
#: are kept as literals keyed by structural equality rather than
#: dropped: a path that asserts ``sel(A,i) = sel(A,i+1)`` at loop entry
#: and its negation at exit is refuted propositionally even though the
#: atom itself is outside the theory.  Treating an atom as a free
#: boolean over-approximates its semantics, so refutation stays sound.
_Alt = Tuple[List[Ineq], Dict[Pred, bool]]

#: DNF: list of alternatives.  ``[]`` means “provably false”.
_Dnf = List[_Alt]

#: Absolute bound on cross-product work per merge step; beyond it the
#: conjunct/fact is dropped unexamined.
_HARD_CAP = 4096


def _merge_alts(a: _Alt, b: _Alt) -> Optional[_Alt]:
    """Conjoin two alternatives; None when their opaque literals clash
    (the combined branch is propositionally false)."""
    lits = dict(a[1])
    for atom, pol in b[1].items():
        if lits.setdefault(atom, pol) != pol:
            return None
    return (a[0] + b[0], lits)


_NEGATED = {
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.GT: CmpOp.LE, CmpOp.LE: CmpOp.GT,
}


class LinearRefuter:
    """Streaming refutation context over a path's ground predicates.

    Feeds facts one at a time (in path order — the ground lists SSA
    definitions before the guards that use them) and learns as it goes:

    * integer definitions ``x#k = e`` become substitutions, so later
      facts see ``x#k`` already composed into an affine form over the
      free version-0 variables;
    * array definitions ``B#k = upd(B#j, i, v)`` build update chains,
      and a later ``sel`` walks the chain comparing indices through the
      affine environment — read-over-write resolved purely statically
      (``sel(upd(upd(N,0,r1),1,r3), 0) → r1`` when the indices fold);
    * a ``sel`` that cannot be resolved becomes a canonical *term
      variable*: structurally equal selects (after index
      canonicalisation) share one variable, a sound weak-congruence
      abstraction.

    Refutation then runs DNF expansion with opaque-literal pruning and
    Fourier–Motzkin on every surviving alternative.
    """

    def __init__(self, is_int: Optional[Callable[[str], bool]] = None,
                 width: int = 24, max_vars: int = 32,
                 max_ineqs: int = 192):
        self.is_int = is_int
        self.width = width
        self.max_vars = max_vars
        self.max_ineqs = max_ineqs
        self.defs: Dict[str, Affine] = {}
        self.arrays: Dict[str, Expr] = {}
        self._terms: Dict[object, str] = {}

    # -- term translation ---------------------------------------------------

    def _term_var(self, key: object) -> Affine:
        name = self._terms.get(key)
        if name is None:
            name = f"§t{len(self._terms)}"
            self._terms[key] = name
        return Affine.of_var(name)

    def expr(self, e: Expr) -> Optional[Affine]:
        """Affine form of ``e`` under the learned definitions, with
        ``sel`` resolved through update chains where the indices decide
        and abstracted to a shared term variable where they do not."""
        if isinstance(e, ast.IntLit):
            return Affine.of_const(e.value)
        if isinstance(e, ast.Var):
            known = self.defs.get(e.name)
            if known is not None:
                return known
            if self.is_int is not None and not self.is_int(e.name):
                return None
            return Affine.of_var(e.name)
        if isinstance(e, ast.BinOp):
            left = self.expr(e.left)
            right = self.expr(e.right)
            if left is None or right is None:
                return None
            if e.op is ArithOp.ADD:
                return left + right
            if e.op is ArithOp.SUB:
                return left - right
            if e.op is ArithOp.MUL:
                if right.is_const:
                    return left.scale(right.const)
                if left.is_const:
                    return right.scale(left.const)
                return None
            if e.op is ArithOp.DIV:
                if not right.is_const or right.const == 0:
                    return None
                if left.is_const:
                    return Affine.of_const(left.const // right.const)
                return left.exact_div(right.const)
            if e.op is ArithOp.MOD:
                if not right.is_const or right.const == 0:
                    return None
                if left.is_const:
                    return Affine.of_const(left.const % right.const)
                if left.exact_div(right.const) is not None:
                    return Affine.of_const(0)
                return None
            return None
        if isinstance(e, ast.Select):
            return self._select(e.array, e.index)
        return None

    def _select(self, arr: Expr, idx: Expr) -> Optional[Affine]:
        idx_a = self.expr(idx)
        chain = arr
        for _ in range(256):
            if isinstance(chain, ast.Var):
                resolved = self.arrays.get(chain.name)
                if resolved is None:
                    break
                chain = resolved
                continue
            if isinstance(chain, ast.Update) and idx_a is not None:
                written = self.expr(chain.index)
                if written is None:
                    break
                delta = idx_a - written
                if not delta.is_const:
                    break  # cannot order the indices: stop resolving
                if delta.const == 0:
                    return self.expr(chain.value)
                chain = chain.array
                continue
            break
        if isinstance(chain, (ast.Var, ast.Update)):
            idx_key: object = (idx_a.terms, idx_a.const) \
                if idx_a is not None else idx
            return self._term_var((chain, idx_key))
        return None

    # -- fact ingestion and DNF ---------------------------------------------

    def learn(self, pred: Pred) -> Optional[_Dnf]:
        """Absorb a fact.  Definitional equalities (SSA assignments of
        integers or arrays) are recorded as substitutions and return
        None — the equality is then implicit in every later translation.
        Everything else returns its DNF."""
        if (isinstance(pred, ast.Cmp) and pred.op is CmpOp.EQ
                and isinstance(pred.left, ast.Var)):
            name = pred.left.name
            if isinstance(pred.right, (ast.Update, ast.Var)) \
                    and self.is_int is not None and not self.is_int(name):
                if name not in self.arrays:
                    self.arrays[name] = pred.right
                    return None
            elif name not in self.defs and (self.is_int is None
                                            or self.is_int(name)):
                rhs = self.expr(pred.right)
                if rhs is not None and all(v != name for v, _ in rhs.terms):
                    self.defs[name] = rhs
                    return None
        return self.to_dnf(pred, False)

    def to_dnf(self, pred: Pred, negate: bool) -> _Dnf:
        """Capped disjunctive normal form of ``pred`` (or its negation)
        under the learned definitions.

        Conjunctions cross-multiply alternatives, pruning branches whose
        opaque literals clash; past the width cap the offending conjunct
        is dropped (weaker formula, refutation-sound).  A disjunction
        that exceeds the cap collapses to one opaque literal for the
        whole predicate.
        """
        if isinstance(pred, ast.BoolLit):
            value = pred.value != negate
            return [([], {})] if value else []
        if isinstance(pred, ast.Not):
            return self.to_dnf(pred.pred, not negate)
        if isinstance(pred, (ast.And, ast.Or)):
            conj = isinstance(pred, ast.And) != negate
            parts = [self.to_dnf(p, negate) for p in pred.parts]
            if conj:
                alts: _Dnf = [([], {})]
                for part in parts:
                    if not part:
                        return []  # one conjunct is constant-false
                    if len(alts) * len(part) > _HARD_CAP:
                        continue  # drop the conjunct instead of blowing up
                    merged = [m for a in alts for b in part
                              if (m := _merge_alts(a, b)) is not None]
                    if not merged:
                        return []  # every branch propositionally false
                    if len(merged) > self.width:
                        continue  # still too wide after pruning: drop it
                    alts = merged
                return alts
            out: _Dnf = []
            for part in parts:
                out.extend(part)
            if len(out) > self.width:
                return self._opaque(pred, negate)
            return out
        if isinstance(pred, ast.Cmp):
            left_a = self.expr(pred.left)
            right_a = self.expr(pred.right)
            if left_a is None or right_a is None:
                return self._opaque(pred, negate)
            op = _NEGATED[pred.op] if negate else pred.op
            delta = left_a - right_a
            if op is CmpOp.NE:
                lt = _ineqs_of_cmp(CmpOp.LT, delta)
                gt = _ineqs_of_cmp(CmpOp.GT, delta)
                assert lt is not None and gt is not None
                return [(branch, {}) for branch in (lt, gt)
                        if not any(not i[0] and i[1] > 0 for i in branch)]
            ineqs = _ineqs_of_cmp(op, delta)
            assert ineqs is not None
            if any(not i[0] and i[1] > 0 for i in ineqs):
                return []  # constant contradiction
            return [(ineqs, {})]
        return self._opaque(pred, negate)

    def _opaque(self, pred: Pred, negate: bool) -> _Dnf:
        """A single opaque-literal alternative for an untranslatable
        atom.  ``a ≠ b`` is canonicalised to ``¬(a = b)`` so both
        phrasings of the same disequality share one literal key."""
        pol = not negate
        if isinstance(pred, ast.Cmp) and pred.op is CmpOp.NE:
            pred = ast.Cmp(CmpOp.EQ, pred.left, pred.right)
            pol = not pol
        return [([], {pred: pol})]

    def unsat(self, preds: Sequence[Pred]) -> bool:
        """True when the conjunction of ``preds`` has no model, by DNF
        expansion plus Fourier–Motzkin on every surviving alternative.
        Facts whose expansion exceeds the width cap are dropped (sound
        for refutation); ``False`` means the engine cannot tell."""
        alts: List[_Alt] = [([], {})]
        for pred in preds:
            dnf = self.learn(pred)
            if dnf is None:
                continue  # definitional: absorbed into the environment
            if not dnf:
                return True  # the fact itself is a constant contradiction
            if len(alts) * len(dnf) > _HARD_CAP:
                continue  # expansion too wide — drop the fact instead
            merged = [m for a in alts for b in dnf
                      if (m := _merge_alts(a, b)) is not None]
            if not merged:
                return True  # every branch is propositionally false
            if len(merged) > self.width:
                continue  # still too wide after pruning: drop the fact
            alts = merged
        return all(fm_unsat(ineqs, self.max_vars, self.max_ineqs)
                   for ineqs, _ in alts)


def fm_unsat(ineqs: Sequence[Ineq], max_vars: int = 32,
             max_ineqs: int = 192) -> bool:
    """True when the conjunction of integer inequalities is
    unsatisfiable, proven by Fourier–Motzkin elimination with gcd/floor
    tightening after every combination step.  ``False`` means “no proof
    within budget”, never “satisfiable”."""
    work: List[Ineq] = []
    for terms, const in ineqs:
        if not terms:
            if const > 0:
                return True
            continue
        work.append((terms, const))
    while work:
        vars_here = {v for terms, _ in work for v, _ in terms}
        if len(vars_here) > max_vars or len(work) > max_ineqs:
            return False
        # Drop inequalities mentioning a one-signed variable: they are
        # satisfiable by pushing that variable to ±∞, so removing them
        # only weakens the system (refutation stays sound).
        signs: Dict[str, set] = {}
        for terms, _ in work:
            for v, c in terms:
                signs.setdefault(v, set()).add(c > 0)
        loose = {v for v, s in signs.items() if len(s) < 2}
        if loose:
            work = [iq for iq in work
                    if not any(v in loose for v, _ in iq[0])]
            continue
        if not signs:
            return False
        # Eliminate the variable with the fewest pos×neg combinations.
        def cost(v: str) -> int:
            pos = sum(1 for terms, _ in work
                      for w, c in terms if w == v and c > 0)
            neg = sum(1 for terms, _ in work
                      for w, c in terms if w == v and c < 0)
            return pos * neg
        target = min(signs, key=lambda v: (cost(v), v))
        pos_set, neg_set, rest = [], [], []
        for terms, const in work:
            coeff = dict(terms).get(target, 0)
            if coeff > 0:
                pos_set.append((terms, const, coeff))
            elif coeff < 0:
                neg_set.append((terms, const, coeff))
            else:
                rest.append((terms, const))
        if len(rest) + len(pos_set) * len(neg_set) > max_ineqs:
            return False
        for p_terms, p_const, p_c in pos_set:
            for n_terms, n_const, n_c in neg_set:
                scale = p_c * (-n_c) // gcd(p_c, -n_c)
                pk, nk = scale // p_c, scale // (-n_c)
                coeffs: Dict[str, int] = {}
                for v, c in p_terms:
                    coeffs[v] = coeffs.get(v, 0) + c * pk
                for v, c in n_terms:
                    coeffs[v] = coeffs.get(v, 0) + c * nk
                coeffs.pop(target, None)
                tight = _tighten(coeffs, p_const * pk + n_const * nk)
                if tight is None:
                    continue
                if not tight[0]:
                    if tight[1] > 0:
                        return True
                    continue
                rest.append(tight)
        work = rest
    return False


def linear_unsat(preds: Sequence[Pred],
                 is_int: Optional[Callable[[str], bool]] = None,
                 width: int = 24, max_vars: int = 32,
                 max_ineqs: int = 192) -> bool:
    """True when the conjunction of ``preds`` has no integer model —
    a fresh :class:`LinearRefuter` fed the predicates in order.
    ``False`` means the engine cannot tell, never “satisfiable”."""
    return LinearRefuter(is_int, width, max_vars, max_ineqs).unsat(preds)
