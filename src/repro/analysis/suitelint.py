"""Suite-wide linting: every benchmark's program, template, and oracle.

``lint_suite()`` is the library entry point used by
``scripts/lint_suite.py``, ``python -m repro.analysis --suite`` and the
CI workflow; it lints, for each suite benchmark:

* the forward program (with its extern registry in scope),
* the inverse template, in the context of the forward program,
* the hand-written ground-truth inverse, in the same context,
* the template's hole candidate families, through the forward-backward
  unknowns analysis (``empty-candidate-family``),
* the bench profile's ``paths=`` budget, against the region analysis'
  inferred syntactic path ceiling (``stale-profile-budget``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .diagnostics import Diagnostic, failing
from .lint import lint_program, lint_template, lint_unknowns
from .regions import lint_profile_budget


def lint_benchmark(bench) -> List[Diagnostic]:
    """All diagnostics for one :class:`repro.suite.base.Benchmark`."""
    from ..suite import bench_profile

    task = bench.task
    diags: List[Diagnostic] = []
    diags.extend(lint_program(task.program, externs=task.externs))
    diags.extend(lint_template(task.program, task.inverse,
                               externs=task.externs))
    diags.extend(lint_template(task.program, bench.ground_truth,
                               externs=task.externs))
    diags.extend(lint_unknowns(task))
    diags.extend(lint_profile_budget(bench.name, bench_profile(bench.name).budget))
    return diags


def lint_suite(names: Optional[Iterable[str]] = None,
               ) -> Dict[str, List[Diagnostic]]:
    """Lint the whole suite (or just ``names``); benchmark -> diagnostics."""
    from ..suite import BENCHMARK_MODULES, get_benchmark

    selected = list(names) if names is not None else list(BENCHMARK_MODULES)
    return {name: lint_benchmark(get_benchmark(name)) for name in selected}


def run_suite_lint(names: Optional[Iterable[str]] = None,
                   strict: bool = False,
                   verbose: bool = False,
                   echo=print) -> int:
    """Lint the suite and report; returns a process exit code."""
    results = lint_suite(names)
    total = 0
    bad = 0
    for name, diags in results.items():
        total += len(diags)
        failures = failing(diags, strict=strict)
        bad += len(failures)
        shown = diags if verbose else failures
        for d in shown:
            echo(str(d))
        status = "FAIL" if failures else "ok"
        echo(f"{name}: {status} ({len(diags)} finding(s), "
             f"{len(failures)} failing)")
    echo(f"suite lint: {len(results)} benchmark(s), {total} finding(s), "
         f"{bad} failing{' [strict]' if strict else ''}")
    return 1 if bad else 0
