"""Abstract certification of inverses: prove ``P ; P⁻¹`` is the identity.

Round-trip testing (:mod:`repro.validate.roundtrip`) checks the identity
specification on finitely many concrete inputs; this module *proves* it
for every input in a bounded box, using the abstract interpreter
(:mod:`repro.analysis.absint`) over the reduced product of intervals,
congruences, and signs.

For each scalar pair ``(x, x')`` of the identity spec the engine tries to
show that no execution of the composed program ``P ; P⁻¹`` started from
the box can terminate with ``x' != x@entry`` (a ghost copy of the input
recorded in the entry environment; the program never assigns it).  The
domains are non-relational, so a wide box rarely proves equality
directly — the certifier *adaptively subdivides*: a box that fails is
split along its widest input dimension, and singleton boxes are exact
whenever decided-guard unrolling can step every loop concretely.  The
verdict per variable is

* ``PROVED``   — every sub-box was discharged (or skipped by the task's
  own precondition) within the box budget;
* ``UNKNOWN``  — some sub-box resisted (arrays and concrete-only pairs
  are always UNKNOWN: pointwise array equality needs quantified
  reasoning outside these domains).

``PROVED`` is sound: it certifies the inverse on the whole box, not just
on sampled points.  ``UNKNOWN`` says nothing — the usual one-sided
abstract-interpretation contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..lang.ast import Cmp, CmpOp, Program, Sort, Var
from ..lang.transform import compose
from ..pins.spec import InversionSpec
from .absint import AbsEnv, forward_backward_prove
from .domains import AbsVal, Interval

GHOST_SUFFIX = "@entry"
"""Suffix of the ghost variables holding input values at program entry.
``@`` cannot appear in Fig. 2 identifiers, so ghosts never collide."""

DEFAULT_UNROLL_FUEL = 1024
"""Decided-guard unrolling budget per analysis run; singleton boxes on
the suite's value ranges stay far below this."""


@dataclass
class VariableVerdict:
    """Certification outcome for one identity-spec pair."""

    in_var: str
    out_var: str
    verdict: str            # "PROVED" | "UNKNOWN"
    boxes_proved: int = 0
    boxes_total: int = 0
    reason: str = ""

    @property
    def proved(self) -> bool:
        return self.verdict == "PROVED"

    def __str__(self) -> str:
        detail = self.reason or f"{self.boxes_proved}/{self.boxes_total} boxes"
        return f"{self.in_var} = {self.out_var}': {self.verdict} ({detail})"


@dataclass
class CertificateReport:
    """Per-variable verdicts for one composed program."""

    name: str
    value_range: Tuple[int, int]
    verdicts: List[VariableVerdict] = field(default_factory=list)
    boxes_explored: int = 0

    @property
    def scalars_proved(self) -> bool:
        """Every *scalar* pair proved (arrays are never provable here)."""
        scalars = [v for v in self.verdicts if not v.reason.startswith("array")
                   and not v.reason.startswith("concrete")]
        return bool(scalars) and all(v.proved for v in scalars)

    def verdict_map(self) -> Dict[str, str]:
        return {f"{v.in_var}={v.out_var}": v.verdict for v in self.verdicts}


# ---------------------------------------------------------------------------
# Core engine
# ---------------------------------------------------------------------------

Box = Dict[str, Tuple[int, int]]


def _entry_env(sorts: Mapping[str, Sort], decls: Mapping[str, Sort],
               box: Box, ghosts: Mapping[str, str]) -> AbsEnv:
    """Entry state for one box, mirroring ``Interpreter.run``: every INT
    declaration defaults to 0, inputs take their box range, and each
    ghost copies its input's range (exact — i.e. *equal* — only when the
    range is a singleton, which is what subdivision drives toward)."""
    env = AbsEnv(sorts)
    for name, sort in decls.items():
        if sort is Sort.INT:
            env = env.set(name, AbsVal.const(0))
    for name, (lo, hi) in box.items():
        env = env.set(name, AbsVal.make(Interval(lo, hi)))
    for in_var, ghost in ghosts.items():
        if in_var in box:
            lo, hi = box[in_var]
            env = env.set(ghost, AbsVal.make(Interval(lo, hi)))
    return env


def _split(box: Box) -> Optional[Tuple[Box, Box]]:
    """Split along the widest dimension; None when all singletons."""
    widest, width = None, 0
    for name, (lo, hi) in box.items():
        if hi - lo > width:
            widest, width = name, hi - lo
    if widest is None:
        return None
    lo, hi = box[widest]
    mid = (lo + hi) // 2
    left = dict(box)
    right = dict(box)
    left[widest] = (lo, mid)
    right[widest] = (mid + 1, hi)
    return left, right


def _singleton_point(box: Box) -> Optional[Dict[str, int]]:
    if all(lo == hi for lo, hi in box.values()):
        return {name: lo for name, (lo, _) in box.items()}
    return None


def certify_composed(program: Program, inverse: Program,
                     spec: InversionSpec,
                     value_range: Tuple[int, int] = (0, 2),
                     precondition=None,
                     max_boxes: int = 512,
                     unroll_fuel: int = DEFAULT_UNROLL_FUEL,
                     name: Optional[str] = None) -> CertificateReport:
    """Certify the identity spec of ``P ; P⁻¹`` over a bounded input box.

    ``value_range`` bounds every INT input (inclusive); ``precondition``
    is the task's concrete input filter — singleton boxes it rejects are
    vacuously discharged, exactly as round-trip validation skips them.
    """
    composed = compose(program, inverse)
    decls = dict(composed.decls)
    report = CertificateReport(name=name or program.name,
                               value_range=value_range)

    int_inputs = [v for v in program.inputs if decls.get(v) is Sort.INT]
    lo, hi = value_range
    root: Box = {v: (lo, hi) for v in int_inputs}

    # Ghost copies: certify `out == in@entry` even when P clobbers `in`.
    ghosts: Dict[str, str] = {}
    targets: List[Tuple[str, str, Var, Var]] = []   # (in, out, lhs, rhs)
    sorts = dict(decls)
    for in_var, out_var in spec.scalar_pairs:
        if in_var.startswith("@"):
            # `@b` pairs compare two *final* values; no ghost needed.
            base = in_var[1:]
            if decls.get(base) is Sort.INT and decls.get(out_var) is Sort.INT:
                targets.append((in_var, out_var, Var(out_var), Var(base)))
            else:
                report.verdicts.append(VariableVerdict(
                    in_var, out_var, "UNKNOWN", reason="non-integer pair"))
            continue
        if decls.get(in_var) is not Sort.INT or decls.get(out_var) is not Sort.INT:
            report.verdicts.append(VariableVerdict(
                in_var, out_var, "UNKNOWN", reason="non-integer pair"))
            continue
        ghost = in_var + GHOST_SUFFIX
        ghosts[in_var] = ghost
        sorts[ghost] = Sort.INT
        targets.append((in_var, out_var, Var(out_var), Var(ghost)))
    for in_arr, out_arr, _len in spec.array_pairs:
        report.verdicts.append(VariableVerdict(
            in_arr, out_arr, "UNKNOWN",
            reason="array pair: pointwise equality needs quantifiers"))
    for in_var, out_var in spec.concrete_pairs:
        report.verdicts.append(VariableVerdict(
            in_var, out_var, "UNKNOWN", reason="concrete-only pair"))

    for in_var, out_var, out_ref, entry_ref in targets:
        violation = Cmp(CmpOp.NE, out_ref, entry_ref)
        proved, total, runs, budget = _prove_over_boxes(
            composed, sorts, decls, root, ghosts, violation,
            precondition, max_boxes, unroll_fuel)
        report.boxes_explored += runs
        verdict = ("PROVED" if budget and total and proved == total
                   else "UNKNOWN")
        reason = "" if budget else f"box budget exhausted ({max_boxes})"
        report.verdicts.append(VariableVerdict(
            in_var, out_var, verdict, boxes_proved=proved,
            boxes_total=total, reason=reason))
        obs.count("certify.proved" if verdict == "PROVED"
                  else "certify.unknown")
    obs.count("certify.runs", report.boxes_explored)
    return report


def _prove_over_boxes(composed: Program, sorts: Mapping[str, Sort],
                      decls: Mapping[str, Sort], root: Box,
                      ghosts: Mapping[str, str], violation,
                      precondition, max_boxes: int,
                      unroll_fuel: int) -> Tuple[int, int, int, bool]:
    """Adaptive subdivision over the root box.

    Returns ``(leaves proved, leaves, analysis runs, stayed in budget)``.
    A box that fails and *splits* is not an obligation — its two halves
    cover it exactly; only terminal boxes (proved, precondition-skipped,
    or resisting singletons) count as leaves.
    """
    pending: List[Box] = [dict(root)]
    proved = leaves = runs = 0
    while pending:
        if runs >= max_boxes:
            return proved, leaves, runs, False
        box = pending.pop()
        runs += 1
        point = _singleton_point(box)
        if point is not None and precondition is not None:
            try:
                admitted = bool(precondition(dict(point)))
            except Exception:
                admitted = True   # filter needs inputs we cannot model
            if not admitted:
                proved += 1       # P never owes anything for this input
                leaves += 1
                continue
        entry = _entry_env(sorts, decls, box, ghosts)
        if forward_backward_prove(composed.body, sorts, entry, violation,
                                  unroll_fuel=unroll_fuel):
            proved += 1
            leaves += 1
            continue
        halves = _split(box)
        if halves is None:
            leaves += 1           # singleton resisted: UNKNOWN overall
            return proved, leaves, runs, True
        pending.extend(halves)
    return proved, leaves, runs, True


# ---------------------------------------------------------------------------
# Suite driver + recorded-baseline comparison
# ---------------------------------------------------------------------------


def certify_benchmark(name: str, max_boxes: int = 512) -> CertificateReport:
    """Certify one suite benchmark's *ground-truth* inverse."""
    from ..suite import get_benchmark

    b = get_benchmark(name)
    task = b.task
    composed_decls = dict(task.program.decls)
    composed_decls.update(b.ground_truth.decls)
    spec = task.derived_spec(composed_decls)
    return certify_composed(task.program, b.ground_truth, spec,
                            value_range=task.bmc_value_range,
                            precondition=task.precondition,
                            max_boxes=max_boxes, name=name)


def certify_suite(names: Optional[Sequence[str]] = None,
                  max_boxes: int = 512) -> List[CertificateReport]:
    from ..suite import BENCHMARK_MODULES

    return [certify_benchmark(n, max_boxes=max_boxes)
            for n in (names or BENCHMARK_MODULES)]


def reports_to_json(reports: Sequence[CertificateReport]) -> Dict[str, Dict[str, str]]:
    return {r.name: r.verdict_map() for r in reports}


def compare_to_baseline(reports: Sequence[CertificateReport],
                        baseline: Mapping[str, Mapping[str, str]]
                        ) -> Tuple[List[str], List[str]]:
    """(regressions, improvements) of PROVED verdicts vs a recorded run.

    A pair recorded PROVED that now reports UNKNOWN is a regression — the
    CI gate fails on any.  Newly PROVED pairs are improvements; re-record
    the baseline to lock them in.
    """
    regressions: List[str] = []
    improvements: List[str] = []
    for r in reports:
        recorded = baseline.get(r.name, {})
        for pair, verdict in r.verdict_map().items():
            old = recorded.get(pair)
            if old == "PROVED" and verdict != "PROVED":
                regressions.append(f"{r.name}: {pair} was PROVED, now {verdict}")
            elif old is not None and old != "PROVED" and verdict == "PROVED":
                improvements.append(f"{r.name}: {pair} newly PROVED")
    return regressions, improvements


def load_baseline(path: str) -> Dict[str, Dict[str, str]]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_baseline(reports: Sequence[CertificateReport], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(reports_to_json(reports), fh, indent=2, sort_keys=True)
        fh.write("\n")
