"""Abstract strings (Section 2.3's string ADT).

Strings are an uninterpreted sort with ``empty``/``single``/``append``
constructors and ``strlen``/``first``/``char_at``/``findidx`` observers,
constrained by the axioms the paper lists (``strlen(append(s, c)) =
strlen(s) + 1`` and friends).  Concretely a string is a tuple of ints.
"""

from __future__ import annotations

from ..lang.ast import Sort
from ..smt import INT, SARR, STR, Axiom, mk_add, mk_app, mk_eq, mk_int, mk_le, mk_lt, mk_not, mk_or, mk_select, mk_var
from .registry import Extern, ExternRegistry


def _empty():
    return ()


def _single(c):
    return (int(c),)


def _append(s, c):
    return tuple(s) + (int(c),)


def _conc(s, t):
    return tuple(s) + tuple(t)


def _strlen(s):
    return len(s)


def _first(s):
    if not s:
        raise ValueError("first() of empty string")
    return s[0]


def _char_at(s, j):
    if not (0 <= j < len(s)):
        raise ValueError(f"char_at out of range: {j} in {s!r}")
    return s[j]


def _findidx(d, p, s):
    """Index of string ``s`` among dictionary entries ``d[0..p)`` or -1."""
    target = tuple(s)
    for i in range(p):
        if tuple(d.get(i)) == target:
            return i
    return -1


STRING_EXTERNS = ExternRegistry((
    Extern("empty", (), Sort.STR, _empty),
    Extern("single", (Sort.INT,), Sort.STR, _single),
    Extern("append", (Sort.STR, Sort.INT), Sort.STR, _append),
    Extern("conc", (Sort.STR, Sort.STR), Sort.STR, _conc),
    Extern("strlen", (Sort.STR,), Sort.INT, _strlen),
    Extern("first", (Sort.STR,), Sort.INT, _first),
    Extern("char_at", (Sort.STR, Sort.INT), Sort.INT, _char_at),
    Extern("findidx", (Sort.STRARRAY, Sort.INT, Sort.STR), Sort.INT, _findidx),
))


def string_axioms():
    """The string ADT axioms (the paper's Section 2.3 examples + lookup)."""
    s = mk_var("?s", STR)
    c = mk_var("?c", INT)
    j = mk_var("?j", INT)
    d = mk_var("?d", SARR)
    p = mk_var("?p", INT)
    single_c = mk_app("single", [c], STR)
    append_sc = mk_app("append", [s, c], STR)
    char_sj = mk_app("char_at", [s, j], INT)
    strlen_s = mk_app("strlen", [s], INT)
    axioms = (
        Axiom("strlen_empty", (),
              mk_eq(mk_app("strlen", [mk_app("empty", [], STR)], INT), mk_int(0)),
              (mk_app("empty", [], STR),)),
        Axiom("strlen_single", (c,),
              mk_eq(mk_app("strlen", [single_c], INT), mk_int(1)), (single_c,)),
        Axiom("first_single", (c,),
              mk_eq(mk_app("first", [single_c], INT), c), (single_c,)),
        Axiom("char_at_single", (c,),
              mk_eq(mk_app("char_at", [single_c, mk_int(0)], INT), c), (single_c,)),
        Axiom("strlen_append", (s, c),
              mk_eq(mk_app("strlen", [append_sc], INT),
                    mk_add(strlen_s, mk_int(1))), (append_sc,)),
        Axiom("char_at_append_end", (s, c),
              mk_eq(mk_app("char_at", [append_sc, strlen_s], INT), c),
              (append_sc,)),
        Axiom("char_at_append_prefix", (s, c, j),
              mk_or(mk_not(mk_le(mk_int(0), j)),
                    mk_not(mk_lt(j, strlen_s)),
                    mk_eq(mk_app("char_at", [append_sc, j], INT), char_sj)),
              ((append_sc, char_sj),)),
        Axiom("findidx_sound", (d, p, s),
              mk_or(mk_lt(mk_app("findidx", [d, p, s], INT), mk_int(0)),
                    mk_eq(mk_select(d, mk_app("findidx", [d, p, s], INT)), s)),
              (mk_app("findidx", [d, p, s], INT),)),
    )
    return axioms
