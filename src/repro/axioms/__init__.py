"""External function models and axiom libraries (Section 2.3)."""

from .arith import DIV, MUL, arith_registry, mul_div_axioms
from .registry import EMPTY_REGISTRY, Extern, ExternRegistry
from .strings import STRING_EXTERNS, string_axioms
from .trig import COS, SIN, trig_axioms, trig_registry

__all__ = [name for name in dir() if not name.startswith("_")]
