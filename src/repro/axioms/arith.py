"""Abstract multiplication/division (Section 2.3's ``mul``/``div``).

The paper models nonlinear arithmetic through uninterpreted functions
plus axioms such as ``forall x != 0. mul(x, div(1, x)) = 1`` — "this
particular axiom essentially adds a capability to the solver".  The
concrete models use exact rational arithmetic so round-trips are lossless
(standing in for the reals of the paper's vector benchmarks).
"""

from __future__ import annotations

from fractions import Fraction

from ..lang.ast import Sort
from ..smt import INT, Axiom, mk_add, mk_app, mk_eq, mk_int, mk_mul, mk_or, mk_var
from .registry import Extern, ExternRegistry


def _mul(a, b):
    return a * b


def _div(a, b):
    if b == 0:
        raise ZeroDivisionError("abstract div by zero")
    return Fraction(a) / Fraction(b)


MUL = Extern("mul", (Sort.INT, Sort.INT), Sort.INT, _mul)
DIV = Extern("div", (Sort.INT, Sort.INT), Sort.INT, _div)


def mul_div_axioms():
    """``div(mul(a, b), b) = a  (unless b = 0)`` and the paper's
    ``mul(x, div(1, x)) = 1  (unless x = 0)``."""
    a = mk_var("?a", INT)
    b = mk_var("?b", INT)
    mul_ab = mk_app("mul", [a, b], INT)
    cancel = Axiom(
        name="div_mul_cancel",
        variables=(a, b),
        body=mk_or(mk_eq(b, mk_int(0)),
                   mk_eq(mk_app("div", [mul_ab, b], INT), a)),
        patterns=(mul_ab,),
    )
    x = mk_var("?x", INT)
    inv_x = mk_app("div", [mk_int(1), x], INT)
    reciprocal = Axiom(
        name="mul_reciprocal",
        variables=(x,),
        body=mk_or(mk_eq(x, mk_int(0)),
                   mk_eq(mk_app("mul", [x, inv_x], INT), mk_int(1))),
        patterns=(inv_x,),
    )
    return (cancel, reciprocal)


def arith_registry() -> ExternRegistry:
    return ExternRegistry((MUL, DIV))
