"""Registry of external (library) functions.

The template language models library calls as uninterpreted functions
(``FunApp``).  Each such function is declared here with:

* its signature (argument sorts and result sort) — needed to translate
  ``FunApp`` nodes into SMT terms;
* an optional *concrete implementation* — used by the concrete
  interpreter, the test-case screener, and the bounded checker, playing
  the role of the real library the paper's C programs linked against.

Axioms over these functions live next to the declarations that use them
(:mod:`repro.axioms.strings`, :mod:`repro.axioms.trig`, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..lang.ast import Sort


@dataclass(frozen=True)
class Extern:
    """An external function declaration."""

    name: str
    arg_sorts: Tuple[Sort, ...]
    result_sort: Sort
    impl: Optional[Callable] = None

    def __call__(self, *args):
        if self.impl is None:
            raise RuntimeError(f"external function {self.name!r} has no concrete model")
        return self.impl(*args)


class ExternRegistry:
    """A table of external functions, usually one per benchmark."""

    def __init__(self, externs: Tuple[Extern, ...] = ()):
        self._table: Dict[str, Extern] = {}
        for e in externs:
            self.register(e)

    def register(self, extern: Extern) -> Extern:
        if extern.name in self._table:
            raise ValueError(f"external function {extern.name!r} already registered")
        self._table[extern.name] = extern
        return extern

    def get(self, name: str) -> Extern:
        try:
            return self._table[name]
        except KeyError:
            raise KeyError(f"unknown external function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def names(self):
        return sorted(self._table)

    def merged_with(self, other: "ExternRegistry") -> "ExternRegistry":
        merged = ExternRegistry()
        merged._table.update(self._table)
        merged._table.update(other._table)
        return merged


EMPTY_REGISTRY = ExternRegistry()
