"""Abstract trigonometry for the vector-rotation benchmark.

Angles are opaque; ``cos``/``sin`` are uninterpreted functions related by
the Pythagorean axiom ``cos(t)^2 + sin(t)^2 = 1`` (the single axiom the
paper reports for Vector rotate).  The concrete model picks an exact
rational point on the unit circle per angle (Pythagorean triples), so a
rotation followed by the synthesized un-rotation is lossless.
"""

from __future__ import annotations

from fractions import Fraction

from ..lang.ast import Sort
from ..smt import INT, Axiom, mk_add, mk_app, mk_eq, mk_int, mk_mul, mk_var
from .registry import Extern, ExternRegistry

_TRIPLES = ((3, 4, 5), (5, 12, 13), (8, 15, 17), (20, 21, 29))


def _point(t: int):
    a, b, c = _TRIPLES[t % len(_TRIPLES)]
    return Fraction(a, c), Fraction(b, c)


def _cos(t):
    return _point(int(t))[0]


def _sin(t):
    return _point(int(t))[1]


COS = Extern("cos", (Sort.INT,), Sort.INT, _cos)
SIN = Extern("sin", (Sort.INT,), Sort.INT, _sin)


def trig_axioms():
    """``forall t. cos(t)*cos(t) + sin(t)*sin(t) = 1``."""
    t = mk_var("?t", INT)
    cos_t = mk_app("cos", [t], INT)
    sin_t = mk_app("sin", [t], INT)
    pythagoras = Axiom(
        name="pythagoras",
        variables=(t,),
        body=mk_eq(mk_add(mk_mul(cos_t, cos_t), mk_mul(sin_t, sin_t)), mk_int(1)),
        patterns=(cos_t,),
    )
    return (pythagoras,)


def trig_registry() -> ExternRegistry:
    return ExternRegistry((COS, SIN))
