"""Command line: ``python -m repro.obs report trace.jsonl``.

Renders the per-phase time/count summary of a JSONL trace produced by
``REPRO_TRACE=trace.jsonl`` (or ``PinsConfig.trace``).  Exit status:
0 on success, 1 for a malformed trace, 2 for a missing file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import TraceError, load_trace, render_summary, summarize


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro observability traces.")
    sub = ap.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="summarize a JSONL trace")
    rep.add_argument("trace", help="path to the trace file")
    rep.add_argument("--json", action="store_true",
                     help="emit the aggregates as JSON instead of text")
    args = ap.parse_args(argv)

    try:
        events = load_trace(args.trace)
    except OSError as exc:
        print(f"{args.trace}: cannot read: {exc}", file=sys.stderr)
        return 2
    except TraceError as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 1
    summary = summarize(events)
    try:
        _print_summary(summary, as_json=args.json)
    except BrokenPipeError:
        # e.g. `... report trace.jsonl | head`; not an error.
        sys.stderr.close()
        return 0
    return 0


def _print_summary(summary, as_json: bool) -> None:
    if as_json:
        import json

        def node_dict(node):
            return {"count": node.count, "total": node.total,
                    "self": node.self_time,
                    "children": {k: node_dict(v)
                                 for k, v in node.children.items()}}

        print(json.dumps({
            "events": summary.events,
            "spans": {k: node_dict(v) for k, v in summary.roots.items()},
            "counters": summary.counters,
            "hists": {k: {"count": h.count, "mean": h.mean,
                          "min": h.minimum, "max": h.maximum}
                      for k, h in summary.hists.items()},
        }, indent=2))
    else:
        print(render_summary(summary))


if __name__ == "__main__":
    sys.exit(main())
