"""The observability core: spans, counters, histograms, recorders.

Every hot loop in the synthesizer (SAT search, SMT feasibility checks,
guided symbolic execution, the PINS iteration itself) reports to this
module through three primitives:

* :func:`span` — a context manager measuring the wall time of a
  hierarchical phase (``span("pins.solve")`` nested inside
  ``span("pins.run")``); the dotted names form a path that the trace
  reporter reassembles into a tree.
* :func:`count` — a named monotonic counter increment
  (``count("smt.sat.decisions", d)``).
* :func:`observe` — one sample of a named distribution
  (``observe("pins.solutions", len(sols))``).

Two sinks consume these events:

* a per-run :class:`Metrics` aggregate (installed by
  :func:`use_metrics`), which totals timers/counters/histograms in
  memory.  ``PinsStats`` is derived from it at the end of a run, so the
  stats object and the trace can never disagree.
* an optional :class:`Recorder`.  The default :data:`NULL_RECORDER`
  drops everything; :class:`JsonlRecorder` appends one JSON object per
  event — ``{ts, span, kind, name, value}`` — to a file.  It is enabled
  by ``REPRO_TRACE=path.jsonl`` or ``PinsConfig.trace``.

When neither sink is installed the primitives reduce to a single
attribute check (see :func:`active`), which keeps the disabled-path
overhead near zero.  The module is deliberately not thread-safe: the
synthesizer is single-threaded, and keeping the state a few plain module
attributes is what makes the no-op path cheap.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, TextIO

ENV_TRACE = "REPRO_TRACE"

SPAN_SEP = "/"
"""Separator between nested span names in the event ``span`` field
(span names themselves use dots, e.g. ``pins.solve``)."""

KIND_SPAN = "span"
KIND_COUNTER = "counter"
KIND_HIST = "hist"
KIND_MARK = "mark"


class Recorder:
    """Event sink base class; the base instance is the no-op recorder."""

    enabled = False

    def emit(self, ts: float, span: str, kind: str, name: str, value: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_RECORDER = Recorder()


class JsonlRecorder(Recorder):
    """Appends one event per line: ``{ts, span, kind, name, value}``.

    ``ts`` is seconds since this recorder was opened (monotonic clock).
    Files are opened in append mode so several runs pointed at the same
    ``REPRO_TRACE`` path accumulate into one trace.
    """

    enabled = True

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")
        self._t0 = time.perf_counter()
        self.events_written = 0

    def emit(self, ts: float, span: str, kind: str, name: str, value: Any) -> None:
        if self._fh is None:
            return
        event = {"ts": round(ts - self._t0, 9), "span": span,
                 "kind": kind, "name": name, "value": value}
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def abandon(self) -> None:
        """Drop the file handle without flushing or closing it.

        For forked children: the handle (and any buffered bytes) belongs
        to the parent, so flushing here would duplicate the parent's
        buffered events into the shared file, and closing would race the
        parent's own writes.
        """
        self._fh = None


class CallbackRecorder(Recorder):
    """Streams filtered events to a callback — the live-progress feed
    behind ``repro.serve``'s job event stream.

    Unlike :class:`JsonlRecorder` this recorder has no file: each
    matching event is handed to ``callback`` as a plain dict
    ``{ts, span, kind, name, value}`` (``ts`` relative to recorder
    creation, like the JSONL trace).  ``kinds``/``prefixes`` filter at
    the source so a hot loop emitting thousands of counter events does
    not flood a cross-process queue; the default keeps only ``pins.*``
    spans — the iteration-level heartbeat of a synthesis run.  ``limit``
    caps total forwarded events (a runaway job cannot grow a job record
    without bound); the cap is recorded by a final synthetic
    ``{kind: "mark", name: "obs.events_truncated"}`` event.

    A callback that raises disables further forwarding instead of
    poisoning the instrumented run: observability must never take the
    synthesizer down.
    """

    enabled = True

    def __init__(self, callback, kinds=(KIND_SPAN,), prefixes=("pins.",),
                 limit: Optional[int] = 1000):
        self.callback = callback
        self.kinds = tuple(kinds)
        self.prefixes = tuple(prefixes)
        self.limit = limit
        self.forwarded = 0
        self.dropped = 0
        self._t0 = time.perf_counter()
        self._broken = False

    def emit(self, ts: float, span: str, kind: str, name: str, value: Any) -> None:
        if self._broken or kind not in self.kinds \
                or not name.startswith(self.prefixes):
            return
        if self.limit is not None and self.forwarded >= self.limit:
            if self.dropped == 0:
                self._send({"ts": round(ts - self._t0, 6), "span": span,
                            "kind": KIND_MARK, "name": "obs.events_truncated",
                            "value": self.limit})
            self.dropped += 1
            return
        self.forwarded += 1
        self._send({"ts": round(ts - self._t0, 6), "span": span,
                    "kind": kind, "name": name,
                    "value": round(value, 6) if isinstance(value, float)
                    else value})

    def _send(self, event: Dict[str, Any]) -> None:
        try:
            self.callback(event)
        except Exception:
            self._broken = True


class Metrics:
    """In-memory totals for one run: timers, counters, histograms.

    Timers are keyed by span *name* (not path), so a span entered from
    several places — or once per iteration — totals across all of them.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.timer_counts: Dict[str, int] = {}
        self.hists: Dict[str, List[float]] = {}

    def add(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds
        self.timer_counts[name] = self.timer_counts.get(name, 0) + 1

    def observe(self, name: str, value: float) -> None:
        self.hists.setdefault(name, []).append(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "hists": {k: list(v) for k, v in self.hists.items()},
        }


# -- module state -----------------------------------------------------------

_recorder: Recorder = NULL_RECORDER
_metrics: List[Metrics] = []
_span_stack: List[str] = []
_active: bool = False


def _refresh_active() -> None:
    global _active
    _active = _recorder.enabled or bool(_metrics)


def active() -> bool:
    """True when any sink (recorder or metrics) is installed."""
    return _active


def tracing_enabled() -> bool:
    """True when events are being *persisted* (recorder, not just metrics)."""
    return _recorder.enabled


def recorder() -> Recorder:
    return _recorder


def set_recorder(rec: Optional[Recorder]) -> Recorder:
    """Install ``rec`` (or the null recorder for None); returns the old one."""
    global _recorder
    old = _recorder
    _recorder = rec if rec is not None else NULL_RECORDER
    _refresh_active()
    return old


def recorder_from_env(env: Optional[Dict[str, str]] = None) -> Optional[JsonlRecorder]:
    """A :class:`JsonlRecorder` for ``$REPRO_TRACE``, or None if unset."""
    env = env if env is not None else os.environ  # type: ignore[assignment]
    path = env.get(ENV_TRACE, "").strip()
    if not path:
        return None
    return JsonlRecorder(path)


def current_metrics() -> Optional[Metrics]:
    return _metrics[-1] if _metrics else None


def current_span() -> str:
    return SPAN_SEP.join(_span_stack)


class use_metrics:
    """Context manager installing a per-run :class:`Metrics` aggregate."""

    def __init__(self, metrics: Metrics):
        self.metrics = metrics

    def __enter__(self) -> Metrics:
        _metrics.append(self.metrics)
        _refresh_active()
        return self.metrics

    def __exit__(self, *exc) -> None:
        _metrics.remove(self.metrics)
        _refresh_active()


class Span:
    """A timed hierarchical phase.  Use via :func:`span`.

    The measured ``duration`` is available after exit, so callers that
    keep their own accumulators (e.g. ``SolveStats``) read the *same*
    measurement the trace records.
    """

    __slots__ = ("name", "duration", "_t0", "_live")

    def __init__(self, name: str):
        self.name = name
        self.duration = 0.0
        self._t0 = 0.0
        self._live = False

    def __enter__(self) -> "Span":
        if _active:
            _span_stack.append(self.name)
            self._live = True
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = time.perf_counter() - self._t0
        if not self._live:
            return
        self._live = False
        if _metrics:
            _metrics[-1].time(self.name, self.duration)
        if _recorder.enabled:
            _recorder.emit(time.perf_counter(), SPAN_SEP.join(_span_stack),
                           KIND_SPAN, self.name, self.duration)
        # Pop after emitting so the span event carries its own path.
        _span_stack.pop()


def span(name: str) -> Span:
    """A context manager timing one phase; nests to form the span tree."""
    return Span(name)


def count(name: str, value: int = 1) -> None:
    """Increment a monotonic counter (no-op unless a sink is installed)."""
    if not _active:
        return
    if _metrics:
        _metrics[-1].add(name, value)
    if _recorder.enabled:
        _recorder.emit(time.perf_counter(), SPAN_SEP.join(_span_stack),
                       KIND_COUNTER, name, value)


def observe(name: str, value: float) -> None:
    """Record one sample of a distribution (histogram)."""
    if not _active:
        return
    if _metrics:
        _metrics[-1].observe(name, value)
    if _recorder.enabled:
        _recorder.emit(time.perf_counter(), SPAN_SEP.join(_span_stack),
                       KIND_HIST, name, value)


def reset_for_subprocess() -> None:
    """Detach this (forked) process from the parent's observability state.

    Called from worker-pool initializers (:mod:`repro.perf.pool`).  The
    fork copied the parent's recorder — including its open file handle
    and userspace buffer — plus the metrics stack and span stack.  A
    worker must not write any of them: recorder output would interleave
    torn lines into the parent's trace file, and metrics mutations would
    be silently lost when the worker exits.  The recorder handle is
    *abandoned* (not closed): its buffer is the parent's data.
    """
    global _recorder
    if isinstance(_recorder, JsonlRecorder):
        _recorder.abandon()
    _recorder = NULL_RECORDER
    _metrics.clear()
    _span_stack.clear()
    _refresh_active()


def mark(name: str, value: Any) -> None:
    """Emit a point event (e.g. a query fingerprint).  Trace-only: marks
    carry identifying payloads, not aggregable numbers, so they bypass
    :class:`Metrics`."""
    if _recorder.enabled:
        _recorder.emit(time.perf_counter(), SPAN_SEP.join(_span_stack),
                       KIND_MARK, name, value)
