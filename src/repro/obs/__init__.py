"""Structured observability for the synthesizer (spans/counters/traces).

Quick use::

    from repro import obs

    with obs.span("pins.solve"):
        obs.count("solve.candidate")

By default events go nowhere (near-zero overhead).  Set
``REPRO_TRACE=trace.jsonl`` (or ``PinsConfig.trace``) to persist them,
then inspect with ``python -m repro.obs report trace.jsonl``.
"""

from .core import (
    CallbackRecorder,
    ENV_TRACE,
    JsonlRecorder,
    KIND_COUNTER,
    KIND_HIST,
    KIND_MARK,
    KIND_SPAN,
    Metrics,
    NULL_RECORDER,
    Recorder,
    SPAN_SEP,
    Span,
    active,
    count,
    current_metrics,
    current_span,
    mark,
    observe,
    recorder,
    recorder_from_env,
    reset_for_subprocess,
    set_recorder,
    span,
    tracing_enabled,
    use_metrics,
)
from .report import (
    HistSummary,
    SpanNode,
    TraceError,
    TraceSummary,
    load_trace,
    parse_events,
    render_summary,
    report,
    summarize,
)

__all__ = [
    "CallbackRecorder",
    "ENV_TRACE", "JsonlRecorder", "KIND_COUNTER", "KIND_HIST", "KIND_MARK",
    "KIND_SPAN", "Metrics", "NULL_RECORDER", "Recorder", "SPAN_SEP", "Span",
    "active", "count", "current_metrics", "current_span", "mark", "observe",
    "recorder", "recorder_from_env", "reset_for_subprocess",
    "set_recorder", "span",
    "tracing_enabled", "use_metrics",
    "HistSummary", "SpanNode", "TraceError", "TraceSummary", "load_trace",
    "parse_events", "render_summary", "report", "summarize",
]
