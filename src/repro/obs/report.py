"""Aggregate a JSONL trace into per-phase time/count summaries.

The trace is a stream of ``{ts, span, kind, name, value}`` events (see
:mod:`repro.obs.core`).  This module rebuilds the span tree from the
``span`` paths, totals wall time per node, computes *self* time (node
total minus its children's totals), and tallies counters and histogram
samples — everything ``python -m repro.obs report trace.jsonl`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from .core import KIND_COUNTER, KIND_HIST, KIND_MARK, KIND_SPAN, SPAN_SEP


class TraceError(ValueError):
    """A trace line could not be parsed or is missing required fields."""


REQUIRED_FIELDS = ("ts", "span", "kind", "name", "value")


def parse_events(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse trace lines, validating the event schema."""
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: not valid JSON: {exc}") from exc
        if not isinstance(event, dict):
            raise TraceError(f"line {lineno}: event is not an object")
        missing = [k for k in REQUIRED_FIELDS if k not in event]
        if missing:
            raise TraceError(f"line {lineno}: missing fields {missing}")
        events.append(event)
    return events


def load_trace(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_events(fh)


@dataclass
class SpanNode:
    """One node of the aggregated span tree (keyed by full path)."""

    path: str
    name: str
    count: int = 0
    total: float = 0.0
    children: Dict[str, "SpanNode"] = field(default_factory=dict)

    @property
    def child_total(self) -> float:
        return sum(c.total for c in self.children.values())

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.child_total)


@dataclass
class HistSummary:
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    roots: Dict[str, SpanNode]
    counters: Dict[str, int]
    hists: Dict[str, HistSummary]
    marks: Dict[str, int]
    events: int

    def node(self, path: str) -> Optional[SpanNode]:
        parts = path.split(SPAN_SEP)
        nodes = self.roots
        found: Optional[SpanNode] = None
        for part in parts:
            found = nodes.get(part)
            if found is None:
                return None
            nodes = found.children
        return found

    def total_time(self) -> float:
        return sum(n.total for n in self.roots.values())

    def phase_times(self, root: str) -> Dict[str, float]:
        """Total time per direct child phase of ``root`` (summed over
        every occurrence of the root span)."""
        node = self.node(root)
        if node is None:
            return {}
        return {name: child.total for name, child in node.children.items()}


def summarize(events: Sequence[Dict[str, Any]]) -> TraceSummary:
    roots: Dict[str, SpanNode] = {}
    counters: Dict[str, int] = {}
    hists: Dict[str, HistSummary] = {}
    marks: Dict[str, int] = {}
    for event in events:
        kind = event["kind"]
        if kind == KIND_SPAN:
            parts = [p for p in str(event["span"]).split(SPAN_SEP) if p]
            if not parts:
                parts = [str(event["name"])]
            nodes = roots
            node: Optional[SpanNode] = None
            prefix: List[str] = []
            for part in parts:
                prefix.append(part)
                node = nodes.setdefault(
                    part, SpanNode(path=SPAN_SEP.join(prefix), name=part))
                nodes = node.children
            assert node is not None
            node.count += 1
            node.total += float(event["value"])
        elif kind == KIND_COUNTER:
            name = str(event["name"])
            counters[name] = counters.get(name, 0) + int(event["value"])
        elif kind == KIND_HIST:
            hists.setdefault(str(event["name"]), HistSummary()).add(
                float(event["value"]))
        elif kind == KIND_MARK:
            name = str(event["name"])
            marks[name] = marks.get(name, 0) + 1
    return TraceSummary(roots=roots, counters=counters, hists=hists,
                        marks=marks, events=len(events))


def _walk(node: SpanNode, depth: int) -> Iterable[Tuple[int, SpanNode]]:
    yield depth, node
    for child in sorted(node.children.values(), key=lambda n: -n.total):
        yield from _walk(child, depth + 1)


def render_summary(summary: TraceSummary) -> str:
    """The human-readable report: span tree, counters, histograms."""
    lines: List[str] = []
    total = summary.total_time()
    lines.append(f"trace: {summary.events} events, "
                 f"{total:.3f}s total span time")
    lines.append("")
    lines.append(f"{'span':<44} {'count':>7} {'total':>10} "
                 f"{'self':>10} {'%':>6}")
    lines.append("-" * 80)
    for root in sorted(summary.roots.values(), key=lambda n: -n.total):
        for depth, node in _walk(root, 0):
            label = "  " * depth + node.name
            pct = 100.0 * node.total / total if total else 0.0
            lines.append(f"{label:<44} {node.count:>7} {node.total:>10.4f} "
                         f"{node.self_time:>10.4f} {pct:>5.1f}%")
    if summary.counters:
        lines.append("")
        lines.append(f"{'counter':<54} {'total':>12}")
        lines.append("-" * 67)
        for name in sorted(summary.counters):
            lines.append(f"{name:<54} {summary.counters[name]:>12}")
    if summary.hists:
        lines.append("")
        lines.append(f"{'histogram':<38} {'count':>7} {'mean':>10} "
                     f"{'min':>9} {'max':>9}")
        lines.append("-" * 76)
        for name in sorted(summary.hists):
            h = summary.hists[name]
            lines.append(f"{name:<38} {h.count:>7} {h.mean:>10.3f} "
                         f"{h.minimum:>9.3f} {h.maximum:>9.3f}")
    if summary.marks:
        lines.append("")
        for name in sorted(summary.marks):
            lines.append(f"marks: {name} x{summary.marks[name]}")
    return "\n".join(lines)


def report(path: str) -> str:
    """Load, summarize, and render a trace file."""
    return render_summary(summarize(load_trace(path)))
