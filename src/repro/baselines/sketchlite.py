"""sketchlite — a Sketch-style finitized CEGIS baseline (Section 4.3).

Sketch resolves templates by counterexample-guided inductive synthesis
over a *finitized* space: bounded loop unrollings, bounded array sizes,
bounded integer widths, bit-blasted to SAT.  This baseline reproduces the
shape of that comparison:

* candidates come from the same indicator-variable SAT encoding PINS
  uses, but verification is *exhaustive bounded concrete checking*
  (our stand-in for bit-blasting, see DESIGN.md §3.4);
* it requires explicit bounds and fails (times out) when the needed
  unrolling is large — the paper's Σi observation;
* it cannot ingest axioms: benchmarks whose externs have no executable
  model are rejected, mirroring Sketch running on only 6 of 14.

The correctness guarantee is the same as Sketch's: candidates are correct
on the finitized space only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..concrete.interp import AssumeFailed, InterpError, Interpreter, OutOfFuel
from ..pins.solve import Enumerator, is_auxiliary_hole
from ..pins.task import SynthesisTask
from ..pins.template import Solution, SynthesisTemplate
from ..validate.bmc import BmcBounds, enumerate_inputs
from ..validate.roundtrip import round_trip_once


@dataclass
class SketchLiteResult:
    status: str  # 'sat' | 'unsat' | 'timeout' | 'unsupported'
    solution: Optional[Solution]
    candidates_tried: int
    counterexamples: int
    elapsed: float
    sat_clauses: int = 0


def run_sketchlite(task: SynthesisTask, template: SynthesisTemplate,
                   bounds: BmcBounds,
                   timeout: float = 120.0,
                   max_candidates: int = 200_000) -> SketchLiteResult:
    """CEGIS over the finitized input space."""
    start = time.perf_counter()

    # Sketch cannot take axioms for library functions (Section 4.3); if a
    # benchmark models externs axiomatically we refuse, like the paper did.
    if task.axioms:
        return SketchLiteResult("unsupported", None, 0, 0,
                                time.perf_counter() - start)

    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    enum = Enumerator(template.space)
    sat = enum.fresh_solver()
    interp_fuel = bounds.fuel

    all_inputs: List[Dict[str, Any]] = []
    for i, case in enumerate(enumerate_inputs(task.program, spec, bounds)):
        if i >= bounds.max_cases:
            break
        if task.precondition is not None and not task.precondition(case):
            continue
        all_inputs.append(case)

    # CEGIS loop: counterexample set drives the search.
    cex_pool: List[Dict[str, Any]] = all_inputs[:1]
    tried = 0
    while True:
        if time.perf_counter() - start > timeout:
            return SketchLiteResult("timeout", None, tried, len(cex_pool),
                                    time.perf_counter() - start,
                                    sat.num_clauses())
        if not sat.solve() or tried >= max_candidates:
            return SketchLiteResult("unsat", None, tried, len(cex_pool),
                                    time.perf_counter() - start,
                                    sat.num_clauses())
        solution = enum.decode(sat.model())
        tried += 1
        try:
            inverse = template.instantiate(solution)
        except ValueError:
            sat.add_clause(enum.exact_block(solution))
            continue
        failed_on: Optional[Dict[str, Any]] = None
        # Check the counterexample pool first, then sweep the whole
        # finitized space ("verify" phase).
        for case in cex_pool:
            if not _passes(task, inverse, spec, case, interp_fuel):
                failed_on = case
                break
        if failed_on is None:
            for case in all_inputs:
                if time.perf_counter() - start > timeout:
                    return SketchLiteResult("timeout", None, tried,
                                            len(cex_pool),
                                            time.perf_counter() - start,
                                            sat.num_clauses())
                if not _passes(task, inverse, spec, case, interp_fuel):
                    failed_on = case
                    cex_pool.append(case)
                    break
        if failed_on is None:
            return SketchLiteResult("sat", solution, tried, len(cex_pool),
                                    time.perf_counter() - start,
                                    sat.num_clauses())
        sat.add_clause(_program_block(enum, solution))


def _passes(task: SynthesisTask, inverse, spec, case, fuel) -> bool:
    try:
        return round_trip_once(task.program, inverse, spec, case,
                               task.externs, fuel=fuel)
    except AssumeFailed:
        return True  # precondition unmet: vacuous
    except (OutOfFuel, InterpError):
        return False


def _program_block(enum: Enumerator, solution: Solution) -> List[int]:
    relevant = {n for n, _ in solution.exprs if not is_auxiliary_hole(n)}
    relevant |= {n for n, _ in solution.preds if not is_auxiliary_hole(n)}
    return enum.exact_block(solution, relevant)
