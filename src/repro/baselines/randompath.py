"""Ablation baselines for path selection and pickOne (Sections 2.3-2.4).

* :func:`pins_with_random_pickone` — PINS with uniform-random solution
  selection instead of the infeasible(S) heuristic; the paper measures
  random selection as ~20% slower.
* :func:`random_path_exploration` — synthesis by *unguided* random path
  enumeration (no candidate guidance at all); the paper reports it "did
  not work even for the simplest examples", and Section 2.4 counts 7,225
  run-length paths at just three unrollings to explain why.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional

from ..lang.transform import compose, desugar_program
from ..pins.algorithm import PinsConfig, PinsResult, run_pins
from ..pins.task import SynthesisTask
from ..symexec.executor import count_paths


def pins_with_random_pickone(task: SynthesisTask,
                             config: Optional[PinsConfig] = None) -> PinsResult:
    """PINS with pickOne replaced by uniform random selection."""
    config = config or PinsConfig()
    config.use_infeasible_heuristic = False
    return run_pins(task, config)


@dataclass
class PathExplosion:
    """Syntactic path counts for a composed template (Section 2.4)."""

    benchmark: str
    max_unroll: int
    paths: int


def path_explosion(task: SynthesisTask, max_unroll: int = 3) -> PathExplosion:
    """Count syntactic paths through the composed template.

    For run-length at three unrollings the paper counts 7,225 unique
    paths — the reason unguided exploration is hopeless while PINS needs
    only a handful of *chosen* paths.
    """
    composed = desugar_program(compose(task.program, task.inverse))
    return PathExplosion(task.name, max_unroll,
                         count_paths(composed.body, max_unroll))


@dataclass
class HeuristicComparison:
    seeds: List[int]
    infeasible_times: List[float]
    random_times: List[float]

    @property
    def slowdown(self) -> float:
        """random / infeasible mean-time ratio (paper: ~1.2)."""
        a = sum(self.infeasible_times) / max(1, len(self.infeasible_times))
        b = sum(self.random_times) / max(1, len(self.random_times))
        return b / a if a > 0 else float("inf")


def compare_pickone(task: SynthesisTask, seeds: List[int],
                    config: Optional[PinsConfig] = None) -> HeuristicComparison:
    """Run PINS with both pickOne strategies across seeds, timing each."""
    result = HeuristicComparison(seeds, [], [])
    for seed in seeds:
        for use_heuristic, bucket in ((True, result.infeasible_times),
                                      (False, result.random_times)):
            cfg = PinsConfig(**vars(config)) if config else PinsConfig()
            cfg.seed = seed
            cfg.use_infeasible_heuristic = use_heuristic
            start = time.perf_counter()
            run_pins(task, cfg)
            bucket.append(time.perf_counter() - start)
    return result
