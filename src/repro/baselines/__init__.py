"""Baselines: the Sketch-style finitized CEGIS and path-selection ablations."""

from .randompath import (
    HeuristicComparison,
    PathExplosion,
    compare_pickone,
    path_explosion,
    pins_with_random_pickone,
)
from .sketchlite import SketchLiteResult, run_sketchlite

__all__ = [name for name in dir() if not name.startswith("_")]
