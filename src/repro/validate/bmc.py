"""Bounded exhaustive checking — our stand-in for CBMC (Table 3/5).

CBMC verifies the composed C program after finitizing loop unrollings and
array sizes.  We obtain the same guarantee for our programs by enumerating
*every* input within bounds (array length <= ``array_size``, element
values inside ``value_range``, bounded interpreter fuel standing in for
the unroll bound) and running ``P ; P⁻¹`` through the concrete
interpreter.  Unlike CBMC, external functions pose no obstacle here: the
extern registry carries executable models, so the axiom-using benchmarks
are checkable too (the paper could check only the 6 axiom-free ones —
EXPERIMENTS.md reports both views).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..concrete.values import ConcreteArray
from ..lang.ast import Program, Sort
from ..pins.spec import InversionSpec
from .roundtrip import RoundTripReport, validate_inverse


@dataclass
class BmcBounds:
    """Finitization knobs (the paper's Table 5 parameters)."""

    unroll: int = 10
    array_size: int = 4
    value_range: tuple = (0, 2)
    scalar_range: tuple = (0, 4)
    max_cases: int = 200_000

    @property
    def fuel(self) -> int:
        # A generous interpreter budget standing in for the unroll bound:
        # enough for `unroll` iterations of nested loops over bounded arrays.
        return max(10_000, 200 * (self.unroll + 1) ** 2)


@dataclass
class BmcResult:
    ok: bool
    cases: int
    elapsed: float
    report: RoundTripReport
    exhausted: bool  # False if max_cases truncated the enumeration


def enumerate_inputs(program: Program, spec: InversionSpec,
                     bounds: BmcBounds) -> Iterator[Dict[str, Any]]:
    """Every input assignment within bounds.

    Arrays bound by a length variable enumerate all contents up to
    ``array_size``; free scalars sweep ``scalar_range``.
    """
    inputs = list(program.inputs)
    array_inputs = [v for v in inputs if program.decls[v].is_array]
    scalar_inputs = [v for v in inputs if not program.decls[v].is_array]
    length_of = {arr: ln for arr, _out, ln in spec.array_pairs}
    lo, hi = bounds.value_range
    slo, shi = bounds.scalar_range
    values = list(range(lo, hi + 1))

    length_vars = {length_of[a] for a in array_inputs if a in length_of}
    free_scalars = [v for v in scalar_inputs if v not in length_vars]

    def scalar_axis(var: str) -> List[int]:
        return list(range(slo, shi + 1))

    for length in range(0, bounds.array_size + 1) if array_inputs else [None]:
        array_axes: List[List[ConcreteArray]] = []
        for arr in array_inputs:
            contents = [
                ConcreteArray.from_list(combo)
                for combo in itertools.product(values, repeat=length or 0)
            ]
            array_axes.append(contents)
        scalar_axes = [scalar_axis(v) for v in free_scalars]
        for arrays in itertools.product(*array_axes):
            for scalars in itertools.product(*scalar_axes):
                case: Dict[str, Any] = {}
                if length is not None:
                    for lv in length_vars:
                        case[lv] = length
                for name, arr in zip(array_inputs, arrays):
                    case[name] = arr
                for name, value in zip(free_scalars, scalars):
                    case[name] = value
                yield case


def bounded_check(program: Program, inverse: Program, spec: InversionSpec,
                  bounds: BmcBounds,
                  externs: ExternRegistry = EMPTY_REGISTRY,
                  cases: Optional[Iterable[Dict[str, Any]]] = None,
                  precondition=None) -> BmcResult:
    """Exhaustively check ``P ; P⁻¹ = id`` within bounds.

    ``cases`` overrides the default input enumeration — benchmarks whose
    inputs are not integer arrays (strings, objects) supply their own
    bounded case lists.
    """
    start = time.perf_counter()
    if cases is None:
        cases = enumerate_inputs(program, spec, bounds)
    pool: List[Dict[str, Any]] = []
    exhausted = True
    for i, case in enumerate(cases):
        if i >= bounds.max_cases:
            exhausted = False
            break
        pool.append(case)
    report = validate_inverse(program, inverse, spec, pool, externs,
                              fuel=bounds.fuel, precondition=precondition)
    elapsed = time.perf_counter() - start
    return BmcResult(ok=report.ok, cases=report.total, elapsed=elapsed,
                     report=report, exhausted=exhausted)
