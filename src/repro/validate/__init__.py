"""Validation of synthesized inverses: round-trip testing + bounded checking."""

from .bmc import BmcBounds, BmcResult, bounded_check, enumerate_inputs
from .roundtrip import RoundTripReport, random_pool, round_trip_once, validate_inverse

__all__ = [name for name in dir() if not name.startswith("_")]
