"""Round-trip validation of synthesized inverses (Section 2.5).

Runs ``P`` then a candidate ``P⁻¹`` concretely and checks the identity
specification — the programmatic analogue of the paper's manual
inspection, applied over test pools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..concrete.interp import AssumeFailed, InterpError, Interpreter, OutOfFuel
from ..concrete.values import coerce_input
from ..lang.ast import Program, Sort
from ..lang.transform import compose
from ..pins.spec import InversionSpec


@dataclass
class RoundTripReport:
    """Outcome of validating one candidate inverse."""

    total: int = 0
    passed: int = 0
    skipped: int = 0  # inputs rejected by P's own assume (precondition)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    certificate: Optional[Any] = None
    """Abstract pre-check result (:class:`repro.analysis.certify.
    CertificateReport`) when validation ran with ``certify_range``;
    PROVED verdicts there cover *every* input in the range, while the
    concrete pool below only samples.  Advisory: UNKNOWN never fails
    the report."""

    @property
    def ok(self) -> bool:
        checked = self.total - self.skipped
        return checked > 0 and self.passed == checked and not self.failures


def round_trip_once(program: Program, inverse: Program, spec: InversionSpec,
                    inputs: Mapping[str, Any],
                    externs: ExternRegistry = EMPTY_REGISTRY,
                    fuel: int = 100_000) -> bool:
    """Run ``P ; P⁻¹`` on one input and evaluate the identity spec."""
    composed = compose(program, inverse)
    interp = Interpreter(externs, fuel=fuel)
    env = interp.run(composed, inputs)
    seeded = {
        name: coerce_input(value, composed.decls.get(name, Sort.INT))
        for name, value in inputs.items()
    }
    return spec.check_states(seeded, env)


def validate_inverse(program: Program, inverse: Program, spec: InversionSpec,
                     inputs_pool: Sequence[Mapping[str, Any]],
                     externs: ExternRegistry = EMPTY_REGISTRY,
                     fuel: int = 100_000,
                     precondition=None,
                     certify_range=None) -> RoundTripReport:
    """Round-trip a candidate inverse over a pool of inputs.

    Inputs violating ``P``'s own ``assume`` statements (or the task's
    precondition) are counted as skipped, not failed — ``P`` never runs on
    them, so the inverse owes nothing for them.

    When ``certify_range`` is a ``(lo, hi)`` pair, the abstract certifier
    first tries to *prove* each scalar identity over the whole range (see
    :mod:`repro.analysis.certify`); the result rides along on
    ``report.certificate``.
    """
    report = RoundTripReport()
    if certify_range is not None:
        from ..analysis.certify import certify_composed

        report.certificate = certify_composed(
            program, inverse, spec, value_range=tuple(certify_range),
            precondition=precondition)
    for inputs in inputs_pool:
        report.total += 1
        if precondition is not None and not precondition(dict(inputs)):
            report.skipped += 1
            continue
        try:
            if round_trip_once(program, inverse, spec, inputs, externs, fuel):
                report.passed += 1
            else:
                report.failures.append(dict(inputs))
        except AssumeFailed:
            report.skipped += 1
        except (OutOfFuel, InterpError) as exc:
            report.failures.append(dict(inputs))
            report.errors.append(f"{type(exc).__name__}: {exc}")
    return report


def random_pool(input_gen, count: int, seed: int = 0) -> List[Dict[str, Any]]:
    """Draw a deduplicated random test pool from a task's generator."""
    from ..concrete.testgen import freeze_input

    rng = random.Random(seed)
    pool: List[Dict[str, Any]] = []
    seen = set()
    for _ in range(count * 5):
        if len(pool) >= count:
            break
        candidate = input_gen(rng)
        key = freeze_input(candidate)
        if key not in seen:
            seen.add(key)
            pool.append(candidate)
    return pool
