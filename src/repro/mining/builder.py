"""Inverse-template skeleton construction (Section 3).

The paper's recipe: "make a template program with the same control flow
structure as the original program text, but replacing guards with
unknowns.  For each assignment statement, we either simply replace its
right-hand side with an unknown, or we opt to invert it ... We also
decide whether to keep sequences as-is or reverse them."

:func:`build_skeleton` automates the mechanical part; the human choices
(which loops to reverse, which assignments to drop) are parameters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang.ast import (
    Assign,
    Assume,
    GIf,
    GWhile,
    In,
    Out,
    Program,
    Skip,
    Stmt,
    Unknown,
    UnknownPred,
)
from .miner import default_prime


@dataclass
class SkeletonOptions:
    """The human decisions in the semi-automated workflow."""

    reverse_loops: Set[str] = field(default_factory=set)
    """Loop ids whose body statement order should be reversed (the paper
    reverses the inner run-length loop: the inverse *re-expands* what the
    original compressed)."""

    drop_assignments_to: Set[str] = field(default_factory=set)
    """Variables whose assignments are dropped from the skeleton (the
    paper removes the ``i', A', N`` assignments of lines 8-10)."""

    prime: Callable[[str], str] = default_prime


def build_skeleton(program: Program, options: Optional[SkeletonOptions] = None,
                   name: str = "") -> Program:
    """Derive an inverse-template skeleton from the original program."""
    options = options or SkeletonOptions()
    prime = options.prime
    counter = itertools.count(1)

    def fresh_expr() -> Unknown:
        return Unknown(f"e{next(counter)}")

    pred_counter = itertools.count(1)

    def fresh_pred() -> UnknownPred:
        return UnknownPred(f"p{next(pred_counter)}")

    outputs = set(program.outputs)

    def rewrite(stmt: Stmt, loop_path: Tuple[str, ...]) -> Stmt:
        if isinstance(stmt, ast.Seq):
            parts = [rewrite(s, loop_path) for s in stmt.stmts]
            loop_id = loop_path[-1] if loop_path else ""
            if loop_id in options.reverse_loops:
                parts.reverse()
            return ast.seq(*parts)
        if isinstance(stmt, Assign):
            kept_targets = [t for t in stmt.targets
                            if t not in options.drop_assignments_to]
            if not kept_targets:
                return ast.SKIP
            return Assign(tuple(prime(t) for t in kept_targets),
                          tuple(fresh_expr() for _ in kept_targets))
        if isinstance(stmt, GWhile):
            body = rewrite(stmt.body, loop_path + (stmt.loop_id or "anon",))
            return GWhile(fresh_pred(), body, stmt.loop_id)
        if isinstance(stmt, GIf):
            return GIf(fresh_pred(),
                       rewrite(stmt.then, loop_path),
                       rewrite(stmt.els, loop_path))
        if isinstance(stmt, Assume):
            return ast.SKIP  # preconditions of P do not transfer
        if isinstance(stmt, In):
            # The inverse reads what P produced: its "in" is P's out.
            return ast.SKIP
        if isinstance(stmt, Out):
            # The inverse outputs the primed reconstruction of P's inputs.
            return ast.SKIP
        return ast.SKIP

    body = rewrite(program.body, ())
    out_vars = tuple(prime(v) for v in program.inputs)
    body = ast.seq(body, Out(out_vars))

    decls = dict(program.decls)
    for var in program.decls:
        decls[prime(var)] = program.decls[var]
    return Program(name or f"{program.name}_inv_skeleton", decls, body)
