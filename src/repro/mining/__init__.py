"""Semi-automated template mining (Section 3 of the paper)."""

from .builder import SkeletonOptions, build_skeleton
from .miner import MinedSets, default_prime, harvest, mine, positive_counters, read_retarget
from .projections import (
    INVERSION_PROJECTIONS,
    Projection,
    iterator_positive_projection,
    out_scalar_projection,
)

__all__ = [name for name in dir() if not name.startswith("_")]
