"""The domain-specific projection operators of Section 3.

A projection maps an expression or predicate harvested from the original
program to a set of candidate expressions/predicates for the *inverse*.
The paper uses eight projections for inversion; they "capture specific
domain knowledge — in this case, that program inversion often requires
inverting operations".  All projections are applied to all possible
inputs, and the identity projection keeps every harvested term, so the
mined set always contains the original program's expressions too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple, Union

from ..lang import ast
from ..lang.ast import (
    ArithOp,
    BinOp,
    Cmp,
    CmpOp,
    Expr,
    IntLit,
    Pred,
    Select,
    Update,
    Var,
)

Node = Union[Expr, Pred]


@dataclass(frozen=True)
class Projection:
    """A named projection operator."""

    name: str
    apply: Callable[[Node], Tuple[Node, ...]]

    def __call__(self, node: Node) -> Tuple[Node, ...]:
        return self.apply(node)


def _identity(node: Node) -> Tuple[Node, ...]:
    return (node,)


def _addition_inversion(node: Node) -> Tuple[Node, ...]:
    """``e1 + e2 -> e1 - e2`` (applied at the top level)."""
    if isinstance(node, BinOp) and node.op is ArithOp.ADD:
        return (BinOp(ArithOp.SUB, node.left, node.right),)
    return ()


def _subtraction_inversion(node: Node) -> Tuple[Node, ...]:
    """``e1 - e2 -> e1 + e2``."""
    if isinstance(node, BinOp) and node.op is ArithOp.SUB:
        return (BinOp(ArithOp.ADD, node.left, node.right),)
    return ()


def _multiplication_inversion(node: Node) -> Tuple[Node, ...]:
    """``e1 * e2 -> e1 / e2`` (and the reverse for division)."""
    if isinstance(node, BinOp) and node.op is ArithOp.MUL:
        return (BinOp(ArithOp.DIV, node.left, node.right),)
    if isinstance(node, BinOp) and node.op is ArithOp.DIV:
        return (BinOp(ArithOp.MUL, node.left, node.right),)
    return ()


def _copy_inversion(node: Node) -> Tuple[Node, ...]:
    """``upd(A, i, sel(B, j)) -> upd(B, j, sel(A, i))``."""
    if isinstance(node, Update) and isinstance(node.value, Select):
        a, i = node.array, node.index
        b, j = node.value.array, node.value.index
        return (Update(b, j, Select(a, i)),)
    return ()


def _array_read(node: Node) -> Tuple[Node, ...]:
    """``sel(A, i) op X -> sel(A, i)``: expose reads used in guards."""
    if isinstance(node, Cmp):
        out: List[Node] = []
        if isinstance(node.left, Select):
            out.append(node.left)
        if isinstance(node.right, Select):
            out.append(node.right)
        return tuple(out)
    return ()


def _increment_inversion(node: Node) -> Tuple[Node, ...]:
    """``x + 1 -> x - 1`` and vice versa (loop iterator reversal)."""
    if isinstance(node, BinOp) and isinstance(node.right, IntLit):
        if node.op is ArithOp.ADD:
            return (BinOp(ArithOp.SUB, node.left, node.right),)
        if node.op is ArithOp.SUB:
            return (BinOp(ArithOp.ADD, node.left, node.right),)
    return ()


def out_scalar_projection(out_var: str, prime: Callable[[str], str]) -> Pred:
    """``out(m)`` over ints yields the candidate predicate ``m' < m``.

    The primed copy scans up to the original output — the paper's example
    is ``m' < m`` for the run-length encoder.
    """
    return Cmp(CmpOp.LT, Var(prime(out_var)), Var(out_var))


def iterator_positive_projection(var: str, prime: Callable[[str], str]) -> Pred:
    """A loop counter ``r`` initialized positive yields ``r' > 0``."""
    return Cmp(CmpOp.GT, Var(prime(var)), ast.n(0))


INVERSION_PROJECTIONS: Tuple[Projection, ...] = (
    Projection("identity", _identity),
    Projection("addition-inversion", _addition_inversion),
    Projection("subtraction-inversion", _subtraction_inversion),
    Projection("multiplication-inversion", _multiplication_inversion),
    Projection("copy-inversion", _copy_inversion),
    Projection("array-read", _array_read),
    Projection("increment-inversion", _increment_inversion),
)
"""The structural projections; together with the two ``out``/iterator
predicate projectors below this makes the paper's count of eight (the
paper folds increment/decrement handling into its addition/subtraction
inverters; we keep a dedicated projection for clarity)."""
