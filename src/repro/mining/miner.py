"""Semi-automated template mining (Section 3).

Three steps, exactly as described in the paper:

1. *Harvest*: traverse the program text collecting every assignment
   right-hand side, every assumed/guarding predicate, and the ``in``/
   ``out`` variables.
2. *Project*: apply every inversion projection to every harvested term;
   the identity projection keeps the originals.  Scalar ``out`` variables
   additionally produce scan predicates (``m' < m``), and loop counters
   initialized positive produce positivity guards (``r' > 0``).
3. *Rename*: variables are renamed to fresh (primed) names; terms that
   mention variables unavailable to the inverse (inputs of ``P`` that are
   not outputs) are automatically deleted, like the paper deletes
   everything referring to ``n`` for run-length.

The result is a *starting point*: the user picks a subset, runs PINS, and
iterates (Section 3's workflow); :func:`read_retarget` generates the
"read from the unprimed output array" variants used in that manual step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple, Union

from ..lang import ast
from ..lang.ast import (
    Assign,
    Assume,
    Cmp,
    Expr,
    GIf,
    GWhile,
    IntLit,
    Pred,
    Program,
    Select,
    Update,
    Var,
)
from ..lang.transform import rename_expr, rename_pred
from .projections import (
    INVERSION_PROJECTIONS,
    iterator_positive_projection,
    out_scalar_projection,
)

Node = Union[Expr, Pred]


def default_prime(name: str) -> str:
    """Our primed-name convention (the paper's ``x'`` is our ``xp``)."""
    return name + "p"


@dataclass
class MinedSets:
    """Result of mining: candidate sets plus provenance counts."""

    exprs: Tuple[Expr, ...]
    preds: Tuple[Pred, ...]
    harvested_exprs: Tuple[Expr, ...]
    harvested_preds: Tuple[Pred, ...]

    @property
    def size(self) -> int:
        return len(self.exprs) + len(self.preds)


def harvest(program: Program) -> Tuple[List[Expr], List[Pred]]:
    """Step 1: all assignment RHSs and assumed predicates, in order."""
    exprs: List[Expr] = []
    preds: List[Pred] = []

    def push_expr(e: Expr) -> None:
        if e not in exprs:
            exprs.append(e)

    def push_pred(p: Pred) -> None:
        parts = p.parts if isinstance(p, ast.And) else (p,)
        for q in parts:
            if q not in preds and not isinstance(q, ast.BoolLit):
                preds.append(q)

    for stmt in ast.walk_stmts(program.body):
        if isinstance(stmt, Assign):
            for e in stmt.exprs:
                push_expr(e)
        elif isinstance(stmt, Assume):
            push_pred(stmt.pred)
        elif isinstance(stmt, (GIf, GWhile)):
            push_pred(stmt.cond)
    return exprs, preds


def positive_counters(program: Program) -> List[str]:
    """Variables initialized to a positive constant (scan counters)."""
    counters: List[str] = []
    for stmt in ast.walk_stmts(program.body):
        if isinstance(stmt, Assign):
            for target, e in zip(stmt.targets, stmt.exprs):
                if isinstance(e, IntLit) and e.value > 0 and target not in counters:
                    counters.append(target)
    return counters


def mine(program: Program,
         prime: Callable[[str], str] = default_prime) -> MinedSets:
    """Run the full mining pipeline on a program to be inverted."""
    raw_exprs, raw_preds = harvest(program)
    outputs = set(program.outputs)
    inputs = set(program.inputs)
    unavailable = inputs - outputs  # inputs of P the inverse cannot read

    projected_exprs: List[Expr] = []
    projected_preds: List[Pred] = []

    def push(node: Node) -> None:
        target = projected_preds if isinstance(node, Pred) else projected_exprs
        if node not in target:
            target.append(node)

    for node in list(raw_exprs) + list(raw_preds):
        for projection in INVERSION_PROJECTIONS:
            for out in projection(node):
                push(out)
    for out_var in program.outputs:
        if not program.decls[out_var].is_array:
            projected_preds.append(out_scalar_projection(out_var, prime))
    for counter in positive_counters(program):
        candidate = iterator_positive_projection(counter, prime)
        if candidate not in projected_preds:
            projected_preds.append(candidate)

    renaming_all = {name: prime(name) for name in program.decls}
    primed_unavailable = {prime(name) for name in unavailable}

    def usable(node: Node) -> bool:
        # Terms referring to variables the inverse cannot read (inputs of
        # P that are not also outputs) are automatically deleted — the
        # paper deletes everything referring to ``n`` for run-length.
        return not (ast.expr_vars(node) & primed_unavailable)

    exprs: List[Expr] = []
    preds: List[Pred] = []
    for e in projected_exprs:
        renamed = rename_expr(e, renaming_all)
        if usable(renamed) and renamed not in exprs:
            exprs.append(renamed)
    for p in projected_preds:
        # out/iterator projectors emit predicates that already mix primed
        # and unprimed names deliberately (e.g. m' < m); renaming the
        # still-unprimed occurrences of non-output variables is a no-op
        # for them because they only mention outputs.
        renamed_p = rename_pred(
            p, {k: v for k, v in renaming_all.items()
                if k in ast.expr_vars(p) and not _mentions_primed(p, prime)})
        if usable(renamed_p) and renamed_p not in preds:
            preds.append(renamed_p)
    return MinedSets(tuple(exprs), tuple(preds),
                     tuple(raw_exprs), tuple(raw_preds))


def _mentions_primed(p: Pred, prime: Callable[[str], str]) -> bool:
    """True for predicates the projectors emitted pre-primed."""
    names = ast.expr_vars(p)
    return any(prime(base) in names for base in names)


def read_retarget(exprs: Sequence[Expr], primed_array: str,
                  source_array: str) -> Tuple[Expr, ...]:
    """Rewrite ``sel(primed, x)`` to ``sel(source, x)`` inside updates.

    This is the manual fix from the paper's run-length walkthrough: the
    decoder must read compressed data from the *original* output array
    ``A``, not from its own primed copy ``A'``.
    """
    from ..lang.transform import map_expr

    def fix(e: Expr):
        if isinstance(e, Select) and isinstance(e.array, Var) \
                and e.array.name == primed_array:
            return Select(Var(source_array), e.index)
        return None

    out: List[Expr] = []
    for e in exprs:
        if isinstance(e, Update):
            fixed = Update(e.array, e.index, map_expr(e.value, fix))
            out.append(fixed)
        else:
            out.append(e)
    return tuple(out)
