"""PINS — Path-based Inductive Synthesis for Program Inversion.

A from-scratch Python reproduction of Srivastava, Gulwani, Chaudhuri &
Foster, *Path-based Inductive Synthesis for Program Inversion* (PLDI 2011).

Public entry points:

* :mod:`repro.lang` — the template language (AST, parser, pretty-printer).
* :mod:`repro.smt` — the ground SMT solver substrate (CDCL SAT, EUF, LIA,
  arrays, axiom instantiation).
* :mod:`repro.symexec` — symbolic execution of templates with unknowns.
* :mod:`repro.pins` — the PINS synthesis algorithm (Algorithm 1).
* :mod:`repro.mining` — semi-automated template mining (Section 3).
* :mod:`repro.concrete` — concrete interpreter + test-case generation.
* :mod:`repro.validate` — bounded checking / round-trip validation.
* :mod:`repro.baselines` — Sketch-like finitized CEGIS, random-path ablation.
* :mod:`repro.suite` — the 14 paper benchmarks.
* :mod:`repro.experiments` — regenerates every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "lang",
    "smt",
    "symexec",
    "pins",
    "mining",
    "axioms",
    "concrete",
    "validate",
    "baselines",
    "suite",
    "experiments",
]
