"""Path conditions: the ``f`` of the paper's Figure 3.

A path is the trace of one symbolic execution: a sequence of *definitions*
(SSA equalities introduced by rule ASSN) and *guards* (predicates assumed
by rule ASSUME), each over versioned variables, possibly containing
unknowns paired with version maps (``HoleExpr``/``HolePred``).

Paths are immutable and hashable, which is how the algorithm's set ``F``
of explored paths (rule EXIT) is maintained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.ast import Pred, Sort, VersionMap
from ..lang.transform import (
    substitute_expr,
    substitute_pred,
    unversioned_name,
    versioned_name,
)


@dataclass(frozen=True)
class Def:
    """An SSA definition ``var#version = expr`` (rule ASSN)."""

    var: str
    version: int
    expr: ast.Expr  # versioned; may contain HoleExpr

    @property
    def versioned_var(self) -> str:
        return versioned_name(self.var, self.version)

    def __str__(self) -> str:
        return f"{self.versioned_var} = {self.expr}"


@dataclass(frozen=True)
class Guard:
    """An assumed predicate (rule ASSUME)."""

    pred: Pred  # versioned; may contain HolePred/HoleExpr

    def __str__(self) -> str:
        return str(self.pred)


PathItem = object  # Def | Guard


@dataclass(frozen=True)
class Path:
    """A complete path condition with its final version map.

    ``loop_entries`` records, for every arrival at a loop from outside,
    the loop id, the number of path items preceding the entry, and the
    version map at entry — the "prefix up to the start of the loop" used
    by the paper's init constraints for termination invariants.
    """

    items: Tuple[PathItem, ...]
    final_vmap: VersionMap
    loop_entries: Tuple[Tuple[str, int, VersionMap], ...] = ()

    def __len__(self) -> int:
        return len(self.items)

    def __str__(self) -> str:
        return " /\\ ".join(str(i) for i in self.items)

    @property
    def unknowns(self) -> frozenset:
        names = set()
        for item in self.items:
            if isinstance(item, Def):
                names |= ast.expr_unknowns(item.expr)
            elif isinstance(item, Guard):
                names |= ast.expr_unknowns(item.pred)
        return frozenset(names)

    def final_version(self, var: str) -> int:
        return dict(self.final_vmap).get(var, 0)


def substitute_items(
    items: Sequence[PathItem],
    expr_solution: Mapping[str, ast.Expr],
    pred_solution: Mapping[str, Sequence[Pred]],
) -> List[Pred]:
    """Apply a solution to path items, yielding ground versioned predicates.

    Definitions become equalities ``var#v = expr``; guards stay guards.
    """
    out: List[Pred] = []
    for item in items:
        if isinstance(item, Def):
            rhs = substitute_expr(item.expr, expr_solution)
            out.append(ast.Cmp(ast.CmpOp.EQ, ast.Var(item.versioned_var), rhs))
        elif isinstance(item, Guard):
            out.append(substitute_pred(item.pred, expr_solution, pred_solution))
        else:
            raise TypeError(f"unexpected path item {item!r}")
    return out


def path_variables(items: Sequence[PathItem]) -> frozenset:
    """Base names of all variables mentioned along a path."""
    names = set()
    for item in items:
        if isinstance(item, Def):
            names.add(item.var)
            names |= {unversioned_name(x) for x in ast.expr_vars(item.expr)}
        elif isinstance(item, Guard):
            names |= {unversioned_name(x) for x in ast.expr_vars(item.pred)}
    return frozenset(names)
