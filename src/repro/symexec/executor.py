"""Symbolic execution of template programs (Figure 3 of the paper).

The executor simulates paths through a (desugared) program that may
contain unknown expressions and predicates.  Because unknowns are pure,
evaluation simply pairs them with the current version map (rule ASSN /
ASSUME); the resulting path condition fully determines their meaning
under any candidate solution.

Two modes are provided:

* :meth:`SymbolicExecutor.find_path` — *guided* exploration (the paper's
  line 11): a randomized depth-first search over the nondeterministic
  choices, pruned by SMT feasibility of the path prefix under a candidate
  solution ``S`` (rule ASSUME requires ``f /\\ S(p)`` satisfiable) and by
  the avoid-set ``F`` (rule EXIT requires ``f`` fresh);
* :func:`enumerate_paths` — exhaustive enumeration with loop bounds, used
  for termination constraints (loop-body paths) and for the
  path-explosion ablation of Section 2.4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .. import obs, smt
from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..lang import ast
from ..lang.ast import (
    Assign,
    Assume,
    Exit,
    If,
    In,
    Out,
    Pred,
    Program,
    Seq,
    Skip,
    Stmt,
    While,
)
from ..lang.transform import version_expr, version_pred
from .paths import Def, Guard, Path, substitute_items
from .translate import Translator


@dataclass
class ExecConfig:
    """Knobs for guided path search."""

    max_items: int = 500
    max_unroll: int = 6
    max_backtracks: int = 20000
    check_feasibility: bool = True
    solver_conflict_budget: int = 50_000
    const_pruning: Optional[bool] = None
    """Fold ground guards through the static linear-form domain and
    backtrack on statically-false prefixes without an SMT feasibility
    call.  ``None`` defers to the ``REPRO_STATIC_PRUNING`` env var."""
    absint: Optional[bool] = None
    """Thread an abstract (interval x congruence x sign) state along the
    prefix and backtrack when a guard refines it to ⊥ — a semantic prune
    that fires before any SMT feasibility query.  ``None`` defers to the
    ``REPRO_ABSINT`` env var (which itself follows static pruning)."""
    budget: Optional[object] = None
    """Optional :class:`repro.resil.Budget`: each found path charges
    ``symexec_paths``, the wall clock is re-checked every 128 backtracks,
    and the feasibility oracle's solvers charge SMT queries.  Exhaustion
    raises :class:`repro.resil.BudgetExhausted` out of
    :meth:`SymbolicExecutor.find_path` (unlike the internal
    ``max_backtracks`` cutoff, which merely returns None)."""


class _Backtrack(Exception):
    pass


@dataclass(frozen=True)
class _Reentry:
    """Internal continuation marker: a loop re-popped for its next
    iteration (so loop-entry records fire only on arrival from outside)."""

    loop: While


class _BudgetExhausted(Exception):
    pass


class FeasibilityOracle:
    """Answers "is this ground path prefix satisfiable?" with caching.

    UNKNOWN answers are treated as feasible (optimistic), which only risks
    exploring a path that a stronger solver would prune — harmless for an
    inductive synthesizer.
    """

    def __init__(self, sorts: Mapping[str, ast.Sort],
                 externs: ExternRegistry = EMPTY_REGISTRY,
                 axioms: Sequence[smt.Axiom] = (),
                 conflict_budget: int = 50_000,
                 query_cache: Optional[object] = None,
                 budget: Optional[object] = None):
        self.translator = Translator(sorts, externs)
        self.axioms = tuple(axioms)
        self.conflict_budget = conflict_budget
        self.query_cache = query_cache
        self.budget = budget
        self._cache: Dict[Tuple[Pred, ...], Tuple[bool, Optional[Dict]]] = {}
        self.queries = 0

    def has_cached(self, ground_preds: Sequence[Pred]) -> bool:
        """True when ``feasible_env`` on these preds would be a cache hit."""
        return tuple(ground_preds) in self._cache

    def prime(self, ground_preds: Sequence[Pred],
              result: Tuple[bool, Optional[Dict]]) -> None:
        """Seed the feasibility cache with a worker-computed result.

        ``setdefault`` so a locally computed answer always wins: priming
        can only add entries a serial run would eventually compute, never
        change one.
        """
        self._cache.setdefault(tuple(ground_preds), result)

    def feasible(self, ground_preds: Sequence[Pred]) -> bool:
        return self.feasible_env(ground_preds)[0]

    def feasible_env(self, ground_preds: Sequence[Pred]
                     ) -> Tuple[bool, Optional[Dict]]:
        """Satisfiability plus (when SAT with a model) a concrete versioned
        environment witnessing it, for resuming concrete co-simulation."""
        key = tuple(ground_preds)
        hit = self._cache.get(key)
        if hit is not None:
            obs.count("symexec.cache_hit")
            return hit
        self.queries += 1
        obs.count("symexec.smt_query")
        solver = smt.Solver(axioms=self.axioms,
                            sat_conflict_budget=self.conflict_budget,
                            query_cache=self.query_cache,
                            budget=self.budget)
        status = smt.UNKNOWN
        try:
            with obs.span("symexec.feasibility"):
                for pred in ground_preds:
                    solver.add(self.translator.pred(pred))
                status = solver.check()
        except Exception:
            status = smt.UNKNOWN
        env: Optional[Dict] = None
        if status == smt.SAT:
            env = _env_from_model(solver.model())
        result = (status != smt.UNSAT, env)
        self._cache[key] = result
        return result


def _env_from_model(model: smt.Model) -> Dict[str, object]:
    """A concrete versioned environment extracted from an SMT model."""
    from ..concrete.values import ConcreteArray
    from ..smt.terms import Op

    env: Dict[str, object] = {}
    for term, value in model.int_values.items():
        if term.op == Op.VAR and term.sort.is_int:
            env[term.payload] = value
    for term, contents in model.arrays.items():
        if term.op == Op.VAR:
            arr = ConcreteArray(default=0)
            for i, v in contents.items():
                arr = arr.set(i, v)
            env[term.payload] = arr
    return env


class SymbolicExecutor:
    """Guided symbolic execution of a desugared program.

    ``seed_inputs`` (typically the synthesis test pool) powers a concrete
    fast path for rule ASSUME's feasibility checks: each seed input is
    simulated alongside the symbolic state, and as long as one input still
    follows the prefix, the prefix is feasible without consulting the SMT
    solver.  The solver is the fallback for prefixes no seed follows.
    """

    def __init__(self, program: Program,
                 externs: ExternRegistry = EMPTY_REGISTRY,
                 axioms: Sequence[smt.Axiom] = (),
                 config: Optional[ExecConfig] = None,
                 oracle: Optional[FeasibilityOracle] = None,
                 seed_inputs: Optional[List[Mapping[str, object]]] = None,
                 query_cache: Optional[object] = None):
        self.program = program
        self.config = config or ExecConfig()
        self.externs = externs
        self.oracle = oracle or FeasibilityOracle(
            program.decls, externs, axioms,
            conflict_budget=self.config.solver_conflict_budget,
            query_cache=query_cache,
            budget=self.config.budget)
        self.seed_inputs = seed_inputs if seed_inputs is not None else []
        self.pool = None
        from ..analysis.absint import absint_enabled
        from ..analysis.prune import static_pruning_enabled

        self._const_pruning = static_pruning_enabled(self.config.const_pruning)
        # An explicit const_pruning override cascades to absint (unless
        # absint itself is overridden) so "unpruned" baselines get *no*
        # static layer, not just no linear-form folding.
        absint_override = self.config.absint
        if absint_override is None and self.config.const_pruning is not None:
            absint_override = self.config.const_pruning
        self._absint = absint_enabled(absint_override)
        self.backtracks = 0
        self.concrete_hits = 0
        self.smt_fallbacks = 0
        self.const_prunes = 0
        self.absint_prunes = 0

    # -- public API ---------------------------------------------------------

    def attach_pool(self, pool) -> None:
        """Use ``pool`` (:class:`repro.perf.pool.WorkerPool`) to warm the
        feasibility cache before each guided search."""
        self.pool = pool

    def find_path(self,
                  expr_solution: Mapping[str, ast.Expr],
                  pred_solution: Mapping[str, Sequence[Pred]],
                  avoid: Set[Path],
                  rng: Optional[random.Random] = None) -> Optional[Path]:
        """Find a feasible path under the given solution, not in ``avoid``."""
        rng = rng or random.Random(0)
        self.backtracks = 0
        self._expr_sol = dict(expr_solution)
        self._pred_sol = dict(pred_solution)
        self._avoid = avoid
        self._rng = rng
        self._interp = None
        if self.pool is not None and self.pool.parallel and avoid:
            self._prefetch_avoid(avoid)
        initial_vmap = {v: 0 for v in self.program.decls}
        envs = self._seed_envs()
        aenv = None
        if self._absint:
            from ..analysis.absint import AbsEnv

            aenv = AbsEnv(self.program.decls)
        try:
            return self._exec([self.program.body], [], initial_vmap, {}, [],
                              envs, {}, aenv)
        except _BudgetExhausted:
            return None

    def _prefetch_avoid(self, avoid: Set[Path]) -> None:
        """Warm the feasibility cache for the avoid-set's guard prefixes.

        The guided DFS re-derives each avoided path's prefix before it
        can backtrack away from it, so those feasibility probes are
        near-certain upcoming queries.  Computing them in parallel ahead
        of time is pure cache warming: the oracle's answers are
        deterministic functions of the ground predicates, so priming
        never changes what the search does — only how long it waits.
        """
        index_of = {path: i for i, path in enumerate(self.pool.ctx.explored)}
        tasks = []
        keys = []
        seen = set()
        for path in sorted(avoid, key=lambda p: index_of.get(p, -1)):
            pidx = index_of.get(path)
            if pidx is None:
                continue  # not in the pool's snapshot; probe it serially
            items = list(path.items)
            while items and not isinstance(items[-1], Guard):
                items.pop()
            if not items:
                continue
            ground = tuple(substitute_items(items, self._expr_sol,
                                            self._pred_sol))
            if ground in seen or self.oracle.has_cached(ground):
                continue
            seen.add(ground)
            keys.append(ground)
            tasks.append(("avoid_feasible", pidx, self._expr_sol,
                          self._pred_sol))
        if len(tasks) < 2:
            return
        obs.count("symexec.avoid_prefetch", len(tasks))
        results = self.pool.map_ordered(tasks)
        for key, result in zip(keys, results):
            self.oracle.prime(key, result)

    def _seed_envs(self) -> List[Dict[str, object]]:
        from ..concrete.values import coerce_input

        envs: List[Dict[str, object]] = []
        for inputs in self.seed_inputs:
            env: Dict[str, object] = {}
            for var, value in inputs.items():
                sort = self.program.decls.get(var, ast.Sort.INT)
                env[f"{var}#0"] = coerce_input(value, sort)
            envs.append(env)
        return envs

    # -- the interpreter ------------------------------------------------------

    def _exec(self, cont: List, items: List, vmap: Dict[str, int],
              unrolls: Dict[str, int], entries: List,
              envs: List[Dict[str, object]],
              consts: Dict[str, object], aenv=None) -> Optional[Path]:
        # ``aenv`` (the abstract prefix state) is persistent/functional:
        # updates build new environments, so unlike the mutable arguments
        # above it needs no defensive copy at recursion boundaries.
        from ..lang.transform import substitute_pred
        from ..analysis.fold import lin_pred

        cont = list(cont)
        items = list(items)
        vmap = dict(vmap)
        unrolls = dict(unrolls)
        entries = list(entries)
        envs = [dict(e) for e in envs]
        consts = dict(consts)
        while cont:
            if len(items) > self.config.max_items:
                self._note_backtrack()
                return None
            stmt = cont.pop()
            if isinstance(stmt, Seq):
                cont.extend(reversed(stmt.stmts))
            elif isinstance(stmt, Assign):
                aenv = self._do_assign(stmt, items, vmap, envs, consts, aenv)
            elif isinstance(stmt, Assume):
                pred = version_pred(stmt.pred, vmap)
                items.append(Guard(pred))
                ground = substitute_pred(pred, self._expr_sol, self._pred_sol)
                if self._const_pruning and lin_pred(ground, consts) is False:
                    # The guard is false under every valuation of the
                    # symbolic bases: the prefix is infeasible, no SMT
                    # feasibility call needed.
                    self.const_prunes += 1
                    obs.count("symexec.const_prune")
                    self._note_backtrack()
                    return None
                if aenv is not None:
                    from ..analysis.absint import refine_pred

                    refined = refine_pred(ground, aenv)
                    if refined is None:
                        # The guard refines the abstract prefix state to
                        # ⊥: no concrete valuation follows this prefix,
                        # so skip the SMT feasibility query entirely.
                        self.absint_prunes += 1
                        obs.count("symexec.absint_prune")
                        self._note_backtrack()
                        return None
                    aenv = refined
                envs = self._filter_envs(ground, envs)
                if not envs:
                    feasible, env = self._prefix_feasible(items)
                    if not feasible:
                        self._note_backtrack()
                        return None
                    if env is not None:
                        envs = [env]  # resume concrete co-simulation
            elif isinstance(stmt, If):
                branches = [stmt.then, stmt.els]
                self._rng.shuffle(branches)
                for branch in branches:
                    result = self._exec(cont + [branch], items, vmap, unrolls,
                                        entries, envs, consts, aenv)
                    if result is not None:
                        return result
                return None
            elif isinstance(stmt, (While, _Reentry)):
                if isinstance(stmt, While):
                    loop = stmt
                    entries.append((loop.loop_id, len(items), ast.freeze_vmap(vmap)))
                else:
                    loop = stmt.loop
                count = unrolls.get(loop.loop_id, 0)
                options = ["exit"]
                if count < self.config.max_unroll:
                    options.append("iterate")
                self._rng.shuffle(options)
                for option in options:
                    if option == "exit":
                        result = self._exec(cont, items, vmap, unrolls,
                                            entries, envs, consts, aenv)
                    else:
                        new_unrolls = dict(unrolls)
                        new_unrolls[loop.loop_id] = count + 1
                        result = self._exec(cont + [_Reentry(loop), loop.body],
                                            items, vmap, new_unrolls, entries,
                                            envs, consts, aenv)
                    if result is not None:
                        return result
                return None
            elif isinstance(stmt, Exit):
                return self._finish(items, vmap, entries)
            elif isinstance(stmt, (In, Out, Skip)):
                continue
            else:
                raise TypeError(
                    f"cannot symbolically execute {stmt!r}; desugar the program first"
                )
        return self._finish(items, vmap, entries)

    # -- concrete co-simulation -------------------------------------------------

    def _interpreter(self):
        if self._interp is None:
            from ..concrete.interp import Interpreter

            self._interp = Interpreter(self.externs)
        return self._interp

    def _update_envs(self, var: str, version: int, ground_expr,
                     envs: List[Dict[str, object]]) -> None:
        from ..concrete.interp import InterpError

        interp = self._interpreter()
        kept = []
        for env in envs:
            try:
                env[f"{var}#{version}"] = interp.eval_expr(
                    ground_expr, env, self.program.decls)
                kept.append(env)
            except InterpError:
                pass  # type junk under this candidate: drop the sample
        envs[:] = kept

    def _filter_envs(self, ground, envs: List[Dict[str, object]]
                     ) -> List[Dict[str, object]]:
        """Keep the seed environments satisfying an already-ground guard."""
        from ..concrete.interp import InterpError

        interp = self._interpreter()
        kept = []
        for env in envs:
            try:
                if interp.eval_pred(ground, env, self.program.decls):
                    kept.append(env)
            except InterpError:
                pass
        if kept:
            self.concrete_hits += 1
            obs.count("symexec.concrete_hit")
        return kept

    def _do_assign(self, stmt: Assign, items: List, vmap: Dict[str, int],
                   envs: List[Dict[str, object]],
                   consts: Dict[str, object], aenv=None):
        from ..analysis.fold import lin_expr
        from ..lang.transform import substitute_expr

        # Evaluate all right-hand sides under the *old* version map.
        rhs = [version_expr(e, vmap) for e in stmt.exprs]
        for target, expr in zip(stmt.targets, rhs):
            new_version = vmap.get(target, 0) + 1
            vmap[target] = new_version
            items.append(Def(target, new_version, expr))
            ground = substitute_expr(expr, self._expr_sol)
            self._update_envs(target, new_version, ground, envs)
            if self._const_pruning:
                lin = lin_expr(ground, consts)
                if lin is not None:
                    consts[f"{target}#{new_version}"] = lin
            if aenv is not None:
                from ..analysis.absint import eval_expr as abs_eval

                aenv = aenv.set(f"{target}#{new_version}",
                                abs_eval(ground, aenv))
        return aenv

    def _finish(self, items: List, vmap: Dict[str, int], entries: List) -> Optional[Path]:
        path = Path(tuple(items), ast.freeze_vmap(vmap), tuple(entries))
        if path in self._avoid:
            obs.count("symexec.avoid_hit")
            self._note_backtrack()
            return None
        if self.config.budget is not None:
            # Charged only for paths the search would *return* (avoid-set
            # hits above keep searching): the budget's ``symexec_paths``
            # dimension counts the same thing as PinsStats.paths_explored.
            # Raises repro.resil.BudgetExhausted, which — unlike the
            # internal _BudgetExhausted backtrack cutoff — propagates out
            # of find_path to the PINS loop.
            self.config.budget.charge_symexec_path()
        obs.count("symexec.path_found")
        obs.observe("symexec.path_len", len(items))
        return path

    def _prefix_feasible(self, items: List):
        if not self.config.check_feasibility:
            return True, None
        self.smt_fallbacks += 1
        ground = substitute_items(items, self._expr_sol, self._pred_sol)
        return self.oracle.feasible_env(ground)

    def _note_backtrack(self) -> None:
        self.backtracks += 1
        obs.count("symexec.backtrack")
        if self.config.budget is not None and self.backtracks % 128 == 0:
            self.config.budget.check()  # wall-deadline during deep search
        if self.backtracks > self.config.max_backtracks:
            raise _BudgetExhausted()


# ---------------------------------------------------------------------------
# Exhaustive (unguided) enumeration
# ---------------------------------------------------------------------------


def enumerate_paths(stmt: Stmt, max_unroll: int = 0,
                    limit: Optional[int] = None,
                    initial_vmap: Optional[Mapping[str, int]] = None,
                    ) -> Iterable[Path]:
    """All paths through ``stmt`` with at most ``max_unroll`` iterations
    per loop, without feasibility pruning.

    With ``max_unroll=0`` every loop takes its exit branch immediately —
    the mode used when computing termination-constraint body paths.
    ``initial_vmap`` should assign version 0 to every program variable so
    that recorded hole version maps are complete.
    """
    count = 0

    def walk(cont: List[Stmt], items: List, vmap: Dict[str, int],
             unrolls: Dict[str, int]):
        nonlocal count
        cont = list(cont)
        items = list(items)
        vmap = dict(vmap)
        while cont:
            s = cont.pop()
            if isinstance(s, Seq):
                cont.extend(reversed(s.stmts))
            elif isinstance(s, Assign):
                rhs = [version_expr(e, vmap) for e in s.exprs]
                for target, expr in zip(s.targets, rhs):
                    vmap[target] = vmap.get(target, 0) + 1
                    items.append(Def(target, vmap[target], expr))
            elif isinstance(s, Assume):
                items.append(Guard(version_pred(s.pred, vmap)))
            elif isinstance(s, If):
                yield from walk(cont + [s.then], items, vmap, unrolls)
                yield from walk(cont + [s.els], items, vmap, unrolls)
                return
            elif isinstance(s, While):
                taken = unrolls.get(s.loop_id, 0)
                yield from walk(cont, items, vmap, unrolls)
                if taken < max_unroll:
                    yield from walk(cont + [s, s.body], items, vmap,
                                    {**unrolls, s.loop_id: taken + 1})
                return
            elif isinstance(s, Exit):
                break
            elif isinstance(s, (In, Out, Skip)):
                continue
            else:
                raise TypeError(f"cannot enumerate through {s!r}")
        if limit is not None and count >= limit:
            return
        count += 1
        yield Path(tuple(items), ast.freeze_vmap(vmap))

    yield from walk([stmt], [], dict(initial_vmap or {}), {})


def count_paths(stmt: Stmt, max_unroll: int) -> int:
    """Number of syntactic paths with the given per-loop unroll bound."""
    return sum(1 for _ in enumerate_paths(stmt, max_unroll=max_unroll))


def loops_of(stmt: Stmt) -> List[While]:
    """All loops in a statement tree, outermost first."""
    return [s for s in ast.walk_stmts(stmt) if isinstance(s, While)]


def loop_guard_and_body(loop: While) -> Tuple[Pred, Stmt]:
    """Split a desugared loop into its guard predicate and remaining body.

    Desugaring ``GWhile(p, body)`` produces ``While(Seq(Assume(p), body))``;
    this helper recovers that structure (used by termination constraints).
    """
    body = loop.body
    if isinstance(body, Assume):
        return body.pred, ast.SKIP
    if isinstance(body, Seq) and body.stmts and isinstance(body.stmts[0], Assume):
        rest = body.stmts[1:]
        return body.stmts[0].pred, ast.seq(*rest)
    raise ValueError(
        "loop body does not start with an assume; build loops with GWhile"
    )
