"""Symbolic execution with unknowns (Figure 3 of the paper)."""

from .executor import (
    ExecConfig,
    FeasibilityOracle,
    SymbolicExecutor,
    count_paths,
    enumerate_paths,
    loop_guard_and_body,
    loops_of,
)
from .paths import Def, Guard, Path, path_variables, substitute_items
from .translate import TranslationError, Translator, smt_sort

__all__ = [name for name in dir() if not name.startswith("_")]
