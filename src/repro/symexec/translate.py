"""Translation from (versioned, hole-free) language terms to SMT terms.

Path conditions produced by symbolic execution talk about *versioned*
variables (``x#3``).  The sort of a versioned variable is the declared
sort of its base name.  External function applications are typed through
an :class:`~repro.axioms.registry.ExternRegistry`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .. import smt
from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..lang import ast
from ..lang.ast import ArithOp, CmpOp, Sort
from ..lang.transform import unversioned_name
from ..smt import terms as T

_SORT_MAP = {
    Sort.INT: T.INT,
    Sort.BOOL: T.BOOL,
    Sort.ARRAY: T.ARR,
    Sort.STR: T.STR,
    Sort.STRARRAY: T.SARR,
    Sort.OBJ: T.OBJ,
}


def smt_sort(sort: Sort) -> T.TSort:
    return _SORT_MAP[sort]


class TranslationError(Exception):
    """Raised when a term cannot be translated (e.g. residual holes)."""


class Translator:
    """Translates versioned language expressions/predicates to SMT terms."""

    def __init__(self, sorts: Mapping[str, Sort],
                 externs: ExternRegistry = EMPTY_REGISTRY):
        self.sorts = dict(sorts)
        self.externs = externs
        self._var_cache: Dict[str, T.Term] = {}

    def sort_of(self, versioned: str) -> Sort:
        base = unversioned_name(versioned)
        try:
            return self.sorts[base]
        except KeyError:
            raise TranslationError(f"no declared sort for variable {base!r}") from None

    def var(self, name: str) -> T.Term:
        cached = self._var_cache.get(name)
        if cached is None:
            cached = T.mk_var(name, smt_sort(self.sort_of(name)))
            self._var_cache[name] = cached
        return cached

    def expr(self, e: ast.Expr) -> T.Term:
        if isinstance(e, ast.Var):
            return self.var(e.name)
        if isinstance(e, ast.IntLit):
            return T.mk_int(e.value)
        if isinstance(e, ast.BinOp):
            left, right = self.expr(e.left), self.expr(e.right)
            if e.op is ArithOp.ADD:
                return T.mk_add(left, right)
            if e.op is ArithOp.SUB:
                return T.mk_sub(left, right)
            if e.op is ArithOp.MUL:
                return T.mk_mul(left, right)
            if e.op is ArithOp.DIV:
                return T.mk_div(left, right)
            if e.op is ArithOp.MOD:
                return T.mk_mod(left, right)
            raise TranslationError(f"unsupported operator {e.op}")
        if isinstance(e, ast.Select):
            return T.mk_select(self.expr(e.array), self.expr(e.index))
        if isinstance(e, ast.Update):
            return T.mk_store(self.expr(e.array), self.expr(e.index), self.expr(e.value))
        if isinstance(e, ast.FunApp):
            extern = self.externs.get(e.name)
            args = tuple(self.expr(a) for a in e.args)
            return T.mk_app(e.name, args, smt_sort(extern.result_sort))
        if isinstance(e, (ast.Unknown, ast.HoleExpr)):
            raise TranslationError(f"cannot translate unresolved hole {e!r}")
        raise TranslationError(f"unexpected expression {e!r}")

    def pred(self, p: ast.Pred) -> T.Term:
        if isinstance(p, ast.BoolLit):
            return T.TRUE if p.value else T.FALSE
        if isinstance(p, ast.Cmp):
            left, right = self.expr(p.left), self.expr(p.right)
            if p.op is CmpOp.EQ:
                return T.mk_eq(left, right)
            if p.op is CmpOp.NE:
                return T.mk_not(T.mk_eq(left, right))
            if not (left.sort.is_int and right.sort.is_int):
                raise TranslationError(f"ordering over non-integer terms in {p!r}")
            if p.op is CmpOp.LT:
                return T.mk_lt(left, right)
            if p.op is CmpOp.LE:
                return T.mk_le(left, right)
            if p.op is CmpOp.GT:
                return T.mk_gt(left, right)
            if p.op is CmpOp.GE:
                return T.mk_ge(left, right)
        if isinstance(p, ast.And):
            return T.mk_and(*(self.pred(q) for q in p.parts))
        if isinstance(p, ast.Or):
            return T.mk_or(*(self.pred(q) for q in p.parts))
        if isinstance(p, ast.Not):
            return T.mk_not(self.pred(p.pred))
        if isinstance(p, (ast.UnknownPred, ast.HolePred)):
            raise TranslationError(f"cannot translate unresolved hole {p!r}")
        raise TranslationError(f"unexpected predicate {p!r}")
