"""Fork-based worker pool for independent solver probes.

The PINS loop has three embarrassingly parallel inner fan-outs, all of
the shape "run N independent SMT probes, then fold the answers in a
fixed order":

* tier-2 constraint checks over a candidate solution
  (:func:`repro.pins.solve.solve`),
* ground satisfiability probes scored by the chooser
  (:func:`repro.pins.pickone.pick_one`),
* avoid-set feasibility probes during symbolic execution
  (:class:`repro.symexec.executor.SymbolicExecutor`).

A fresh pool is forked **per PINS iteration**: workers inherit the
parent's :class:`PerfContext` — checker, feasibility oracle, and
snapshots of the current constraint and explored-path lists — via
copy-on-write, including every cache the parent has accumulated so far.
Task descriptions then stay tiny (indices into the snapshots plus a
candidate :class:`~repro.pins.template.Solution`); the full constraint
and path ASTs never cross the process boundary.  Worker-computed results
flow back two ways: as the pickled return value of the task, and (for
the query cache's disk tier) through per-process shard files that the
parent re-reads before the next fork.

Determinism contract (DESIGN.md §10): :meth:`WorkerPool.map_ordered`
returns results **in submission order**, and every call site folds them
with exactly the serial control flow (first-violation wins, speculative
results discarded).  A run with ``jobs=N`` therefore produces
bit-identical output to ``jobs=1``; the pool only changes wall time.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..resil import faults

ENV_JOBS = "REPRO_JOBS"
ENV_JOBS_FORCE = "REPRO_JOBS_FORCE"
"""Set to 1 to skip the CPU-count clamp (tests exercise the fork path on
single-core CI machines this way)."""
ENV_POOL_TIMEOUT = "REPRO_POOL_TIMEOUT"
"""Seconds a single parallel probe may run before the pool declares its
worker wedged and degrades the batch to serial re-execution.  Unset (the
default): wait forever, matching plain ``multiprocessing`` behaviour."""

_POLL_S = 0.2
"""How often the parent wakes while waiting on a worker result to check
for dead workers and the per-task timeout."""


def resolve_task_timeout(config_value: Optional[float]) -> Optional[float]:
    """Effective per-task timeout: config wins, then ``REPRO_POOL_TIMEOUT``,
    then ``None`` (no timeout).  Zero or negative disables."""
    if config_value is not None:
        return float(config_value) if float(config_value) > 0 else None
    env = os.environ.get(ENV_POOL_TIMEOUT, "").strip()
    if env:
        try:
            val = float(env)
        except ValueError:
            return None
        return val if val > 0 else None
    return None


class _PoolDegraded(Exception):
    """Internal: a batch cannot complete in parallel; fall back to serial.

    ``reason`` feeds the ``resil.pool.<reason>`` obs counter:
    ``worker_death`` (a forked worker vanished or exited non-zero),
    ``task_timeout`` (a probe exceeded the per-task timeout), or
    ``task_error`` (the result channel broke / a task raised — the
    serial re-run will surface the real exception deterministically).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class PerfContext:
    """The solver state a worker needs: built once in the parent, forked.

    ``constraints`` and ``explored`` are positional snapshots — tasks
    reference them by index, so they must be taken at fork time from the
    very lists the call sites iterate.
    """

    def __init__(self, checker=None, oracle=None,
                 constraints: Sequence = (), explored: Sequence = ()):
        self.checker = checker
        self.oracle = oracle
        self.constraints = tuple(constraints)
        self.explored = tuple(explored)


_CTX: Optional[PerfContext] = None


def _init_worker(ctx: PerfContext) -> None:
    global _CTX
    _CTX = ctx
    # The fork copied the parent's trace recorder (open file handle and
    # all) and metrics; a worker must not write to either.
    obs.reset_for_subprocess()
    # Fault-injection decisions are made parent-side (where the hit
    # counters live); a worker consuming hits from its inherited copy of
    # the plan would double-fire sites like smt.timeout.
    faults.uninstall_plan()


def _run_task(task: Tuple) -> object:
    assert _CTX is not None, "worker used before _init_worker"
    from ..symexec.paths import Guard, substitute_items

    kind = task[0]
    if kind == "resil.crash":
        # Injected by ``pool.worker_crash``: die the way a real worker
        # does when the OS kills it — no exception, no cleanup.
        os._exit(13)
    if kind == "resil.hang":
        # Injected by ``pool.worker_hang``: wedge, as if stuck in C code.
        time.sleep(3600)
    if kind == "constraint":
        _, idx, solution = task
        return _CTX.checker.check(_CTX.constraints[idx], solution)
    if kind == "path_sat":
        # pickOne's infeasible(S) probe; the model is dropped from the
        # reply (the score only needs the status) to keep replies small.
        _, idx, solution = task
        ground = substitute_items(_CTX.explored[idx].items,
                                  solution.expr_map, solution.pred_map)
        status, _model = _CTX.checker._check_sat(ground, want_model=False)
        return (status, None)
    if kind == "avoid_feasible":
        _, idx, expr_map, pred_map = task
        items = list(_CTX.explored[idx].items)
        while items and not isinstance(items[-1], Guard):
            items.pop()
        ground = substitute_items(items, expr_map, pred_map)
        return _CTX.oracle.feasible_env(ground)
    raise ValueError(f"unknown perf task kind {kind!r}")


def resolve_jobs(config_jobs: Optional[int]) -> int:
    """Effective worker count: config wins, then ``REPRO_JOBS``, then 1."""
    if config_jobs is not None:
        return max(1, config_jobs)
    env = os.environ.get(ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


class WorkerPool:
    """A ``jobs``-wide fork pool, degrading to serial execution.

    ``jobs`` is a *request*: the effective worker count is clamped to
    the machine's CPU count (forking four workers onto one core is pure
    oversubscription — every probe still runs serially, plus IPC tax).
    Serial when the clamped count is <= 1 or when the platform has no
    ``fork`` start method (the context-inheritance design requires fork;
    spawn would have to pickle the whole checker).  Call sites check
    :attr:`parallel` to skip building task lists when serial.  Set
    ``REPRO_JOBS_FORCE=1`` to skip the clamp (tests use this to exercise
    real forked workers on single-core CI runners — the results are
    bit-identical either way, only the wall time differs).
    """

    def __init__(self, jobs: int, ctx: PerfContext,
                 task_timeout: Optional[float] = None):
        self.jobs = max(1, jobs)
        self.ctx = ctx
        self.task_timeout = resolve_task_timeout(task_timeout)
        self._pool = None
        self._worker_pids: frozenset = frozenset()
        effective = self.jobs
        if os.environ.get(ENV_JOBS_FORCE, "").strip() not in ("1", "true"):
            effective = min(effective, os.cpu_count() or 1)
        if effective > 1:
            try:
                mp = multiprocessing.get_context("fork")
            except ValueError:
                return
            self._pool = mp.Pool(effective, initializer=_init_worker,
                                 initargs=(ctx,))
            self._worker_pids = frozenset(p.pid for p in self._pool._pool)

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def map_ordered(self, tasks: Sequence[Tuple]) -> List[object]:
        """Run ``tasks`` and return their results in submission order.

        Resilience: the parent never blocks indefinitely on a worker.
        Results are drained through ``imap`` with a poll loop that
        watches for dead workers and (when a task timeout is configured)
        wedged ones.  On either signal the pool is torn down and the
        batch **degrades to serial**: the in-order prefix already
        received is kept, and the remaining tasks are re-executed in the
        parent.  Because probes are pure functions of (task, context),
        the merged result list is bit-identical to an all-parallel or
        all-serial run (DESIGN.md §10).
        """
        if self._pool is None:
            global _CTX
            _CTX = self.ctx
            return [_run_task(t) for t in tasks]
        obs.count("perf.pool.tasks", len(tasks))
        run_tasks = list(tasks)
        if faults.active_plan() is not None:
            # Injection decisions happen parent-side, where the plan's
            # hit counters live; the wrapped copy replaces the task sent
            # to the worker while `tasks` keeps the original for the
            # serial fallback.
            run_tasks = [self._fault_task(t) for t in run_tasks]
        results: List[object] = []
        it = self._pool.imap(_run_task, run_tasks)
        try:
            for _ in range(len(run_tasks)):
                results.append(self._next_result(it))
        except _PoolDegraded as exc:
            obs.count("resil.pool.degraded")
            obs.count(f"resil.pool.{exc.reason}")
            return self._serial_fallback(tasks, results)
        return results

    def _fault_task(self, task: Tuple) -> Tuple:
        if faults.should_fail("pool.worker_crash"):
            return ("resil.crash",)
        if faults.should_fail("pool.worker_hang"):
            return ("resil.hang",)
        return task

    def _next_result(self, it) -> object:
        """Next in-order result, polling for dead/wedged workers."""
        waited = 0.0
        while True:
            try:
                return it.next(timeout=_POLL_S)
            except multiprocessing.TimeoutError:
                waited += _POLL_S
                if self._worker_died():
                    raise _PoolDegraded("worker_death")
                if (self.task_timeout is not None
                        and waited >= self.task_timeout):
                    raise _PoolDegraded("task_timeout")
            except Exception:
                # The result channel broke or the task raised; re-run
                # serially so the real exception (if any) surfaces with
                # deterministic ordering.
                raise _PoolDegraded("task_error")

    def _worker_died(self) -> bool:
        """True when any forked worker exited or was replaced.

        ``Pool`` quietly reaps and respawns dead workers, so check both
        exit codes and drift of the pid set from the one forked at
        construction — either way the task the dead worker held is lost
        and the in-order iterator would wait on it forever.
        """
        if self._pool is None:
            return True
        procs = list(self._pool._pool)
        if any(p.exitcode is not None for p in procs):
            return True
        return frozenset(p.pid for p in procs) != self._worker_pids

    def _serial_fallback(self, tasks: Sequence[Tuple],
                         results: List[object]) -> List[object]:
        """Finish a degraded batch in the parent, serially.

        ``imap`` yields strictly in submission order, so the prefix
        gathered before degradation maps 1:1 onto ``tasks[:len(results)]``;
        only the remainder is recomputed — from the ORIGINAL tasks, not
        the fault-wrapped copies.  The pool is closed for good: later
        batches this iteration run serial too (the next PINS iteration
        forks a fresh pool).
        """
        self.close()
        global _CTX
        _CTX = self.ctx
        return list(results) + [_run_task(t) for t in tasks[len(results):]]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
