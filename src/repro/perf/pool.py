"""Fork-based worker pool for independent solver probes.

The PINS loop has three embarrassingly parallel inner fan-outs, all of
the shape "run N independent SMT probes, then fold the answers in a
fixed order":

* tier-2 constraint checks over a candidate solution
  (:func:`repro.pins.solve.solve`),
* ground satisfiability probes scored by the chooser
  (:func:`repro.pins.pickone.pick_one`),
* avoid-set feasibility probes during symbolic execution
  (:class:`repro.symexec.executor.SymbolicExecutor`).

A fresh pool is forked **per PINS iteration**: workers inherit the
parent's :class:`PerfContext` — checker, feasibility oracle, and
snapshots of the current constraint and explored-path lists — via
copy-on-write, including every cache the parent has accumulated so far.
Task descriptions then stay tiny (indices into the snapshots plus a
candidate :class:`~repro.pins.template.Solution`); the full constraint
and path ASTs never cross the process boundary.  Worker-computed results
flow back two ways: as the pickled return value of the task, and (for
the query cache's disk tier) through per-process shard files that the
parent re-reads before the next fork.

Determinism contract (DESIGN.md §10): :meth:`WorkerPool.map_ordered`
returns results **in submission order**, and every call site folds them
with exactly the serial control flow (first-violation wins, speculative
results discarded).  A run with ``jobs=N`` therefore produces
bit-identical output to ``jobs=1``; the pool only changes wall time.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from .. import obs

ENV_JOBS = "REPRO_JOBS"
ENV_JOBS_FORCE = "REPRO_JOBS_FORCE"
"""Set to 1 to skip the CPU-count clamp (tests exercise the fork path on
single-core CI machines this way)."""


class PerfContext:
    """The solver state a worker needs: built once in the parent, forked.

    ``constraints`` and ``explored`` are positional snapshots — tasks
    reference them by index, so they must be taken at fork time from the
    very lists the call sites iterate.
    """

    def __init__(self, checker=None, oracle=None,
                 constraints: Sequence = (), explored: Sequence = ()):
        self.checker = checker
        self.oracle = oracle
        self.constraints = tuple(constraints)
        self.explored = tuple(explored)


_CTX: Optional[PerfContext] = None


def _init_worker(ctx: PerfContext) -> None:
    global _CTX
    _CTX = ctx
    # The fork copied the parent's trace recorder (open file handle and
    # all) and metrics; a worker must not write to either.
    obs.reset_for_subprocess()


def _run_task(task: Tuple) -> object:
    assert _CTX is not None, "worker used before _init_worker"
    from ..symexec.paths import Guard, substitute_items

    kind = task[0]
    if kind == "constraint":
        _, idx, solution = task
        return _CTX.checker.check(_CTX.constraints[idx], solution)
    if kind == "path_sat":
        # pickOne's infeasible(S) probe; the model is dropped from the
        # reply (the score only needs the status) to keep replies small.
        _, idx, solution = task
        ground = substitute_items(_CTX.explored[idx].items,
                                  solution.expr_map, solution.pred_map)
        status, _model = _CTX.checker._check_sat(ground, want_model=False)
        return (status, None)
    if kind == "avoid_feasible":
        _, idx, expr_map, pred_map = task
        items = list(_CTX.explored[idx].items)
        while items and not isinstance(items[-1], Guard):
            items.pop()
        ground = substitute_items(items, expr_map, pred_map)
        return _CTX.oracle.feasible_env(ground)
    raise ValueError(f"unknown perf task kind {kind!r}")


def resolve_jobs(config_jobs: Optional[int]) -> int:
    """Effective worker count: config wins, then ``REPRO_JOBS``, then 1."""
    if config_jobs is not None:
        return max(1, config_jobs)
    env = os.environ.get(ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


class WorkerPool:
    """A ``jobs``-wide fork pool, degrading to serial execution.

    ``jobs`` is a *request*: the effective worker count is clamped to
    the machine's CPU count (forking four workers onto one core is pure
    oversubscription — every probe still runs serially, plus IPC tax).
    Serial when the clamped count is <= 1 or when the platform has no
    ``fork`` start method (the context-inheritance design requires fork;
    spawn would have to pickle the whole checker).  Call sites check
    :attr:`parallel` to skip building task lists when serial.  Set
    ``REPRO_JOBS_FORCE=1`` to skip the clamp (tests use this to exercise
    real forked workers on single-core CI runners — the results are
    bit-identical either way, only the wall time differs).
    """

    def __init__(self, jobs: int, ctx: PerfContext):
        self.jobs = max(1, jobs)
        self.ctx = ctx
        self._pool = None
        effective = self.jobs
        if os.environ.get(ENV_JOBS_FORCE, "").strip() not in ("1", "true"):
            effective = min(effective, os.cpu_count() or 1)
        if effective > 1:
            try:
                mp = multiprocessing.get_context("fork")
            except ValueError:
                return
            self._pool = mp.Pool(effective, initializer=_init_worker,
                                 initargs=(ctx,))

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def map_ordered(self, tasks: Sequence[Tuple]) -> List[object]:
        """Run ``tasks`` and return their results in submission order."""
        if self._pool is None:
            global _CTX
            _CTX = self.ctx
            return [_run_task(t) for t in tasks]
        obs.count("perf.pool.tasks", len(tasks))
        return self._pool.map(_run_task, tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
