"""Fork-based worker pool for independent solver probes.

The PINS loop has three embarrassingly parallel inner fan-outs, all of
the shape "run N independent SMT probes, then fold the answers in a
fixed order":

* tier-2 constraint checks over a candidate solution
  (:func:`repro.pins.solve.solve`),
* ground satisfiability probes scored by the chooser
  (:func:`repro.pins.pickone.pick_one`),
* avoid-set feasibility probes during symbolic execution
  (:class:`repro.symexec.executor.SymbolicExecutor`).

A fresh pool is forked **per PINS iteration**: workers inherit the
parent's :class:`PerfContext` — checker, feasibility oracle, and
snapshots of the current constraint and explored-path lists — via
copy-on-write, including every cache the parent has accumulated so far.
Task descriptions then stay tiny (indices into the snapshots plus a
candidate :class:`~repro.pins.template.Solution`); the full constraint
and path ASTs never cross the process boundary.  Worker-computed results
flow back two ways: as the pickled return value of the task, and (for
the query cache's disk tier) through per-process shard files that the
parent re-reads before the next fork.

Determinism contract (DESIGN.md §10): :meth:`WorkerPool.map_ordered`
returns results **in submission order**, and every call site folds them
with exactly the serial control flow (first-violation wins, speculative
results discarded).  A run with ``jobs=N`` therefore produces
bit-identical output to ``jobs=1``; the pool only changes wall time.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..resil import faults

ENV_JOBS = "REPRO_JOBS"
ENV_JOBS_FORCE = "REPRO_JOBS_FORCE"
"""Set to 1 to skip the CPU-count clamp (tests exercise the fork path on
single-core CI machines this way)."""
ENV_POOL_TIMEOUT = "REPRO_POOL_TIMEOUT"
"""Seconds a single parallel probe may run before the pool declares its
worker wedged and degrades the batch to serial re-execution.  Unset (the
default): wait forever, matching plain ``multiprocessing`` behaviour."""

ENV_WORKERS = "REPRO_WORKERS"
"""Worker strategy: ``persistent`` (one long-lived fleet per run, warm
solver state), ``fork`` (a fresh pool per PINS iteration), or ``serial``.
``PinsConfig.workers`` wins over the env var; the default is ``fork``
whenever ``jobs > 1`` so existing configurations keep their behaviour."""

ENV_WARMUP_TIMEOUT = "REPRO_POOL_WARMUP_TIMEOUT"
"""Seconds the parent waits for a persistent worker's ready handshake
before declaring it wedged and degrading the whole run to serial."""

_POLL_S = 0.2
"""How often the parent wakes while waiting on a worker result to check
for dead workers and the per-task timeout."""

_WARMUP_TIMEOUT_S = 30.0
"""Default persistent-worker warm-up handshake deadline.  Unlike the
per-task timeout this is never ``None``: a worker that wedges before its
first heartbeat would otherwise stall ``run_pins`` forever."""


def resolve_task_timeout(config_value: Optional[float]) -> Optional[float]:
    """Effective per-task timeout: config wins, then ``REPRO_POOL_TIMEOUT``,
    then ``None`` (no timeout).  Zero or negative disables."""
    if config_value is not None:
        return float(config_value) if float(config_value) > 0 else None
    env = os.environ.get(ENV_POOL_TIMEOUT, "").strip()
    if env:
        try:
            val = float(env)
        except ValueError:
            return None
        return val if val > 0 else None
    return None


class _PoolDegraded(Exception):
    """Internal: a batch cannot complete in parallel; fall back to serial.

    ``reason`` feeds the ``resil.pool.<reason>`` obs counter:
    ``worker_death`` (a forked worker vanished or exited non-zero),
    ``task_timeout`` (a probe exceeded the per-task timeout), or
    ``task_error`` (the result channel broke / a task raised — the
    serial re-run will surface the real exception deterministically).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class PerfContext:
    """The solver state a worker needs: built once in the parent, forked.

    ``constraints`` and ``explored`` are positional snapshots — tasks
    reference them by index, so they must be taken at fork time from the
    very lists the call sites iterate.
    """

    def __init__(self, checker=None, oracle=None,
                 constraints: Sequence = (), explored: Sequence = ()):
        self.checker = checker
        self.oracle = oracle
        self.constraints = tuple(constraints)
        self.explored = tuple(explored)


_CTX: Optional[PerfContext] = None


def _init_worker(ctx: PerfContext) -> None:
    global _CTX
    _CTX = ctx
    # The fork copied the parent's trace recorder (open file handle and
    # all) and metrics; a worker must not write to either.
    obs.reset_for_subprocess()
    # Fault-injection decisions are made parent-side (where the hit
    # counters live); a worker consuming hits from its inherited copy of
    # the plan would double-fire sites like smt.timeout.
    faults.uninstall_plan()


def _run_task(task: Tuple) -> object:
    assert _CTX is not None, "worker used before _init_worker"
    from ..symexec.paths import Guard, substitute_items

    kind = task[0]
    if kind == "resil.crash":
        # Injected by ``pool.worker_crash``: die the way a real worker
        # does when the OS kills it — no exception, no cleanup.
        os._exit(13)
    if kind == "resil.hang":
        # Injected by ``pool.worker_hang``: wedge, as if stuck in C code.
        time.sleep(3600)
    if kind == "constraint":
        _, idx, solution = task
        return _CTX.checker.check(_CTX.constraints[idx], solution)
    if kind == "path_sat":
        # pickOne's infeasible(S) probe; the model is dropped from the
        # reply (the score only needs the status) to keep replies small.
        _, idx, solution = task
        path = _CTX.explored[idx]
        ground = substitute_items(path.items,
                                  solution.expr_map, solution.pred_map)
        status, _model = _CTX.checker._check_sat(ground, want_model=False,
                                                 inc_src=path)
        return (status, None)
    if kind == "avoid_feasible":
        _, idx, expr_map, pred_map = task
        items = list(_CTX.explored[idx].items)
        while items and not isinstance(items[-1], Guard):
            items.pop()
        ground = substitute_items(items, expr_map, pred_map)
        return _CTX.oracle.feasible_env(ground)
    raise ValueError(f"unknown perf task kind {kind!r}")


def resolve_jobs(config_jobs: Optional[int]) -> int:
    """Effective worker count: config wins, then ``REPRO_JOBS``, then 1."""
    if config_jobs is not None:
        return max(1, config_jobs)
    env = os.environ.get(ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def resolve_workers(config_workers: Optional[str]) -> str:
    """Effective worker strategy: config wins, then ``REPRO_WORKERS``,
    then ``"fork"`` (the historical per-iteration pool)."""
    val = config_workers
    if val is None:
        val = os.environ.get(ENV_WORKERS, "").strip().lower() or None
    if val in ("persistent", "fork", "serial"):
        return val
    return "fork"


def resolve_warmup_timeout(config_value: Optional[float]) -> float:
    """Warm-up handshake deadline: config, then env, then the default.
    Never ``None`` — see :data:`_WARMUP_TIMEOUT_S`."""
    if config_value is not None and float(config_value) > 0:
        return float(config_value)
    env = os.environ.get(ENV_WARMUP_TIMEOUT, "").strip()
    if env:
        try:
            val = float(env)
            if val > 0:
                return val
        except ValueError:
            pass
    return _WARMUP_TIMEOUT_S


class WorkerPool:
    """A ``jobs``-wide fork pool, degrading to serial execution.

    ``jobs`` is a *request*: the effective worker count is clamped to
    the machine's CPU count (forking four workers onto one core is pure
    oversubscription — every probe still runs serially, plus IPC tax).
    Serial when the clamped count is <= 1 or when the platform has no
    ``fork`` start method (the context-inheritance design requires fork;
    spawn would have to pickle the whole checker).  Call sites check
    :attr:`parallel` to skip building task lists when serial.  Set
    ``REPRO_JOBS_FORCE=1`` to skip the clamp (tests use this to exercise
    real forked workers on single-core CI runners — the results are
    bit-identical either way, only the wall time differs).
    """

    def __init__(self, jobs: int, ctx: PerfContext,
                 task_timeout: Optional[float] = None):
        self.jobs = max(1, jobs)
        self.ctx = ctx
        self.task_timeout = resolve_task_timeout(task_timeout)
        self._pool = None
        self._worker_pids: frozenset = frozenset()
        effective = self.jobs
        if os.environ.get(ENV_JOBS_FORCE, "").strip() not in ("1", "true"):
            effective = min(effective, os.cpu_count() or 1)
        if effective > 1:
            try:
                mp = multiprocessing.get_context("fork")
            except ValueError:
                return
            self._pool = mp.Pool(effective, initializer=_init_worker,
                                 initargs=(ctx,))
            self._worker_pids = frozenset(p.pid for p in self._pool._pool)

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def map_ordered(self, tasks: Sequence[Tuple]) -> List[object]:
        """Run ``tasks`` and return their results in submission order.

        Resilience: the parent never blocks indefinitely on a worker.
        Results are drained through ``imap`` with a poll loop that
        watches for dead workers and (when a task timeout is configured)
        wedged ones.  On either signal the pool is torn down and the
        batch **degrades to serial**: the in-order prefix already
        received is kept, and the remaining tasks are re-executed in the
        parent.  Because probes are pure functions of (task, context),
        the merged result list is bit-identical to an all-parallel or
        all-serial run (DESIGN.md §10).
        """
        if self._pool is None:
            global _CTX
            _CTX = self.ctx
            return [_run_task(t) for t in tasks]
        obs.count("perf.pool.tasks", len(tasks))
        run_tasks = list(tasks)
        if faults.active_plan() is not None:
            # Injection decisions happen parent-side, where the plan's
            # hit counters live; the wrapped copy replaces the task sent
            # to the worker while `tasks` keeps the original for the
            # serial fallback.
            run_tasks = [self._fault_task(t) for t in run_tasks]
        results: List[object] = []
        it = self._pool.imap(_run_task, run_tasks)
        try:
            for _ in range(len(run_tasks)):
                results.append(self._next_result(it))
        except _PoolDegraded as exc:
            obs.count("resil.pool.degraded")
            obs.count(f"resil.pool.{exc.reason}")
            return self._serial_fallback(tasks, results)
        return results

    def _fault_task(self, task: Tuple) -> Tuple:
        if faults.should_fail("pool.worker_crash"):
            return ("resil.crash",)
        if faults.should_fail("pool.worker_hang"):
            return ("resil.hang",)
        return task

    def _next_result(self, it) -> object:
        """Next in-order result, polling for dead/wedged workers."""
        waited = 0.0
        while True:
            try:
                return it.next(timeout=_POLL_S)
            except multiprocessing.TimeoutError:
                waited += _POLL_S
                if self._worker_died():
                    raise _PoolDegraded("worker_death")
                if (self.task_timeout is not None
                        and waited >= self.task_timeout):
                    raise _PoolDegraded("task_timeout")
            except Exception:
                # The result channel broke or the task raised; re-run
                # serially so the real exception (if any) surfaces with
                # deterministic ordering.
                raise _PoolDegraded("task_error")

    def _worker_died(self) -> bool:
        """True when any forked worker exited or was replaced.

        ``Pool`` quietly reaps and respawns dead workers, so check both
        exit codes and drift of the pid set from the one forked at
        construction — either way the task the dead worker held is lost
        and the in-order iterator would wait on it forever.
        """
        if self._pool is None:
            return True
        procs = list(self._pool._pool)
        if any(p.exitcode is not None for p in procs):
            return True
        return frozenset(p.pid for p in procs) != self._worker_pids

    def _serial_fallback(self, tasks: Sequence[Tuple],
                         results: List[object]) -> List[object]:
        """Finish a degraded batch in the parent, serially.

        ``imap`` yields strictly in submission order, so the prefix
        gathered before degradation maps 1:1 onto ``tasks[:len(results)]``;
        only the remainder is recomputed — from the ORIGINAL tasks, not
        the fault-wrapped copies.  The pool is closed for good: later
        batches this iteration run serial too (the next PINS iteration
        forks a fresh pool).
        """
        self.close()
        global _CTX
        _CTX = self.ctx
        return list(results) + [_run_task(t) for t in tasks[len(results):]]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _persistent_worker_main(ctx: PerfContext, task_q, result_q,
                            worker_id: int) -> None:
    """Long-lived worker loop: warm up, then drain tasks until ``stop``.

    The first queue message is the parent's warm-up directive — normally
    ``("warmup",)``, or a fault-injected ``resil.*`` task standing in for
    a worker that wedges or dies before its first heartbeat.  Only after
    processing it does the worker send ``("ready", ...)``; the parent's
    handshake deadline therefore covers injected warm-up faults too.
    """
    _init_worker(ctx)
    first = task_q.get()
    if first[0] == "resil.crash":
        os._exit(13)
    if first[0] == "resil.hang":
        time.sleep(3600)
    result_q.put(("ready", worker_id, None))
    while True:
        msg = task_q.get()
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "sync":
            # Snapshot deltas: extend, never replace — tasks reference
            # entries by index into the fork-time prefix plus deltas.
            _, dc, de = msg
            assert _CTX is not None
            _CTX.constraints = _CTX.constraints + dc
            _CTX.explored = _CTX.explored + de
            continue
        _, seq, task = msg
        try:
            result = _run_task(task)
        except BaseException as exc:
            result_q.put(("error", seq, repr(exc)))
            continue
        result_q.put(("result", seq, result))


class PersistentWorkerPool:
    """A warm worker fleet forked once per run (``workers=persistent``).

    The per-iteration :class:`WorkerPool` pays a full fork (and first-
    query solver cold start) every PINS iteration, and each fork discards
    whatever the previous fleet learned.  This pool forks its workers
    once; each holds the interned term graph, its checker's warm
    incremental SMT contexts, and the query cache's memory tier across
    the whole run, so later iterations start hot.  Parent-side list
    growth is shipped as pickled deltas through :meth:`sync` (terms
    re-enter the worker's hash-cons table on unpickle, preserving
    identity semantics).

    The determinism contract is unchanged (DESIGN.md §10): tasks are
    dealt round-robin — a pure function of submission index — results
    are reassembled and folded in submission order, and every probe is a
    pure function of (task, context), so a persistent run is
    bit-identical to a fork or serial one.

    Resilience mirrors :class:`WorkerPool` and adds a warm-up handshake:
    every worker must answer ``ready`` within ``warmup_timeout`` seconds
    of being forked (a worker wedged in warm-up — e.g. the
    ``pool.worker_hang`` fault at hit 0 — would otherwise stall
    ``run_pins`` with no task in flight to time out).  Any warm-up or
    batch failure tears the whole fleet down and the run continues
    serially; there is no mid-run refork, keeping the degradation
    cascade one-way and the trajectory deterministic.
    """

    def __init__(self, jobs: int, ctx: PerfContext,
                 task_timeout: Optional[float] = None,
                 warmup_timeout: Optional[float] = None):
        self.jobs = max(1, jobs)
        self.ctx = ctx
        self.task_timeout = resolve_task_timeout(task_timeout)
        self.warmup_timeout = resolve_warmup_timeout(warmup_timeout)
        self._procs: Optional[List] = None
        self._task_qs: List = []
        self._result_q = None
        self._shipped = (len(ctx.constraints), len(ctx.explored))
        effective = self.jobs
        if os.environ.get(ENV_JOBS_FORCE, "").strip() not in ("1", "true"):
            effective = min(effective, os.cpu_count() or 1)
        if effective <= 1:
            return
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:
            return
        self._result_q = mp.Queue()
        procs = []
        for wid in range(effective):
            tq = mp.Queue()
            p = mp.Process(target=_persistent_worker_main,
                           args=(ctx, tq, self._result_q, wid), daemon=True)
            p.start()
            warmup: Tuple = ("warmup",)
            if faults.should_fail("pool.worker_crash"):
                warmup = ("resil.crash",)
            elif faults.should_fail("pool.worker_hang"):
                warmup = ("resil.hang",)
            tq.put(warmup)
            self._task_qs.append(tq)
            procs.append(p)
        self._procs = procs
        if not self._await_warmup():
            obs.count("resil.pool.degraded")
            obs.count("resil.pool.warmup_failed")
            self._teardown()

    def _await_warmup(self) -> bool:
        """Collect every worker's ready heartbeat within the deadline."""
        assert self._procs is not None
        ready: set = set()
        deadline = time.monotonic() + self.warmup_timeout
        while len(ready) < len(self._procs):
            try:
                kind, wid, _ = self._result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if any(p.exitcode is not None for p in self._procs):
                    return False
                if time.monotonic() >= deadline:
                    return False
                continue
            if kind == "ready":
                ready.add(wid)
                obs.count("perf.pool.worker_warm_start")
        return True

    @property
    def parallel(self) -> bool:
        return self._procs is not None

    def sync(self, constraints: Sequence, explored: Sequence) -> None:
        """Ship list growth since the last sync to every worker.

        Must be called between batches (the queues are idle then, so the
        FIFO guarantees every worker applies the delta before any task
        that references it).  Also refreshes the parent-side snapshots
        used by the serial fallback.
        """
        self.ctx.constraints = tuple(constraints)
        self.ctx.explored = tuple(explored)
        if self._procs is None:
            return
        nc, ne = self._shipped
        dc = tuple(constraints[nc:])
        de = tuple(explored[ne:])
        if dc or de:
            for tq in self._task_qs:
                tq.put(("sync", dc, de))
        self._shipped = (len(constraints), len(explored))

    def map_ordered(self, tasks: Sequence[Tuple]) -> List[object]:
        """Run ``tasks`` on the fleet; results in submission order.

        Same degradation semantics as :meth:`WorkerPool.map_ordered`,
        except a degraded fleet stays down for the rest of the run.
        """
        if self._procs is None:
            global _CTX
            _CTX = self.ctx
            return [_run_task(t) for t in tasks]
        obs.count("perf.pool.tasks", len(tasks))
        run_tasks = list(tasks)
        if faults.active_plan() is not None:
            run_tasks = [self._fault_task(t) for t in run_tasks]
        for i, t in enumerate(run_tasks):
            self._task_qs[i % len(self._task_qs)].put(("task", i, t))
        results: List[object] = []
        buffered: Dict[int, object] = {}
        try:
            for i in range(len(run_tasks)):
                results.append(self._next_result(i, buffered))
        except _PoolDegraded as exc:
            obs.count("resil.pool.degraded")
            obs.count(f"resil.pool.{exc.reason}")
            return self._serial_fallback(tasks, results)
        return results

    def _fault_task(self, task: Tuple) -> Tuple:
        if faults.should_fail("pool.worker_crash"):
            return ("resil.crash",)
        if faults.should_fail("pool.worker_hang"):
            return ("resil.hang",)
        return task

    def _next_result(self, seq: int, buffered: Dict[int, object]) -> object:
        """The result for submission index ``seq``, buffering later ones."""
        waited = 0.0
        while True:
            if seq in buffered:
                return buffered.pop(seq)
            try:
                kind, rseq, payload = self._result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                waited += _POLL_S
                assert self._procs is not None
                if any(p.exitcode is not None for p in self._procs):
                    raise _PoolDegraded("worker_death")
                if (self.task_timeout is not None
                        and waited >= self.task_timeout):
                    raise _PoolDegraded("task_timeout")
                continue
            if kind == "error":
                raise _PoolDegraded("task_error")
            buffered[rseq] = payload

    def _serial_fallback(self, tasks: Sequence[Tuple],
                         results: List[object]) -> List[object]:
        """Finish a degraded batch in the parent; the fleet stays down.

        Only the contiguous in-order prefix is kept — buffered
        out-of-order results are discarded so the merged list is exactly
        what a serial run would produce from ``tasks``.
        """
        self._teardown()
        global _CTX
        _CTX = self.ctx
        return list(results) + [_run_task(t) for t in tasks[len(results):]]

    def _teardown(self) -> None:
        if self._procs is None:
            return
        for p in self._procs:
            if p.exitcode is None:
                p.terminate()
        for p in self._procs:
            p.join(timeout=5)
        self._procs = None
        self._task_qs = []

    def close(self) -> None:
        if self._procs is None:
            return
        for tq in self._task_qs:
            tq.put(("stop",))
        deadline = time.monotonic() + 2.0
        for p in self._procs:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        self._teardown()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
