"""Fingerprint-keyed SMT query-result cache (the memo behind PINS's loop).

PINS issues thousands of short-lived solver queries, and across
iterations (and across runs with the same seed) most of them are
structurally identical.  :class:`QueryCache` memoizes ``sat``/``unsat``
answers keyed by the solver's structural query fingerprint
(:func:`repro.smt.solver.query_signature`, which includes every op,
payload, and constant, plus the axiom-set digest and instantiation
budget).

Two tiers:

* **memory** — a per-run ``OrderedDict`` holding the verdict plus the
  verified :class:`~repro.smt.models.Model` object (terms are
  hash-consed, so a same-fingerprint query in the same process asserts
  the *same* term objects).  Bounded; FIFO eviction.
* **disk** (optional) — a JSONL file of ``{key, status, witness}``
  entries for cross-run reuse.  ``sat`` entries carry a replayable
  witness (integer/array variable values) and are only written when the
  model is fully concrete (no uninterpreted applications or sorts, whose
  values are process-relative class ids).

Correctness contract (enforced here, relied on by
:meth:`repro.smt.solver.Solver.check`):

* ``unknown`` is **never** stored or served — a budget-dependent answer
  must be recomputed under the caller's budget;
* a ``sat`` hit is served only after the stored model concretely
  re-verifies against the *current* assertions
  (:func:`repro.smt.models.satisfies`), so a fingerprint collision or a
  stale disk entry degrades to a miss, never to a wrong answer;
* ``unsat`` is served on fingerprint match alone: the key is a full
  sha1 over the query structure *including constants*, so distinct
  queries collide only with negligible probability (and the unit tests
  pin that different constants produce different keys).

Concurrent writers (the parallel worker pool) never share a file:
appends go to a per-process shard ``<path>.shard-<pid>``, and
:meth:`QueryCache.compact` merges shards into the base file with an
atomic rename.  Loading reads the base file plus every shard.
"""

from __future__ import annotations

import glob
import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..resil import faults
from ..smt.models import Model, satisfies
from ..smt.solver import SAT, UNSAT
from ..smt.terms import Op, Term, subterms

ENV_QUERY_CACHE = "REPRO_QUERY_CACHE"
MEMORY_SPECS = ("1", "mem", "memory")
"""``REPRO_QUERY_CACHE`` values selecting the memory-only tier; anything
else (except ``""``/``"0"``) is a disk path."""


def _encode_app_key(key: tuple) -> Optional[list]:
    """JSON form of an app-table key ``(name_or_op, *values)``.

    Values are ints or frozen array contents (tuples of (index, value)
    pairs); anything else — a class id could sneak in only alongside
    ``class_values``, which the caller already rejects — returns None.
    """
    name = key[0]
    out: list = [["op", name.name] if isinstance(name, Op) else ["fn", name]]
    for value in key[1:]:
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            out.append(value)
        elif isinstance(value, tuple):
            if not all(isinstance(i, int) and isinstance(v, int)
                       for i, v in value):
                return None
            out.append([[i, v] for i, v in value])
        else:
            return None
    return out


def _decode_app_key(encoded: list) -> tuple:
    kind, name = encoded[0]
    head = Op[name] if kind == "op" else name
    args: list = [head]
    for value in encoded[1:]:
        if isinstance(value, list):
            args.append(tuple((i, v) for i, v in value))
        else:
            args.append(value)
    return tuple(args)


def extract_witness(model: Optional[Model]) -> Optional[dict]:
    """A JSON-serializable, process-independent witness of a sat model.

    Returns None when the model cannot be replayed faithfully in another
    process: class values are process-relative ids (term ids assigned in
    construction order), so any uninterpreted-*sorted* content
    disqualifies the model from the disk tier (the in-memory tier still
    holds the object itself).  Integer-valued uninterpreted
    *applications* are fine — their function table is value-keyed and
    serializes as ``apps``.
    """
    if model is None or model.class_values:
        return None
    ints: Dict[str, int] = {}
    for term, value in model.int_values.items():
        if term.op == Op.VAR:
            ints[term.payload] = value
        # APP/MUL/DIV/MOD assignments replay through the app table below.
    arrays: Dict[str, Dict[str, int]] = {}
    for term, contents in model.arrays.items():
        if term.op != Op.VAR or term.sort.elem is None or not term.sort.elem.is_int:
            return None
        arrays[term.payload] = {str(i): v for i, v in contents.items()}
    apps: List[list] = []
    for key, value in model.app_table.items():
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        encoded = _encode_app_key(key)
        if encoded is None:
            return None
        apps.append([encoded, value])
    witness = {"ints": ints, "arrays": arrays}
    if apps:
        witness["apps"] = apps
    return witness


def _conjuncts(formula: Term) -> List[Term]:
    """Top-level conjuncts of ``formula`` in assertion order."""
    if formula.op != Op.AND:
        return [formula]
    out: List[Term] = []
    for part in formula.args:
        out.extend(_conjuncts(part))
    return out


def completed_check_model(model: Model, formulas: Sequence[Term]) -> Model:
    """A copy of ``model`` with unconstrained array variables completed.

    Solver models are *partial*: an array variable that is written but
    never read (``Ap#1 = store(Ap#0, i, v)`` with no select over
    ``Ap#1``) gets no contents, because the array theory only constrains
    indices that are actually read.  Such a model is a correct witness —
    the unconstrained variable can always be *extended* to satisfy the
    equality — but a strict :func:`~repro.smt.models.satisfies` check
    rejects it.  This helper performs that extension deterministically:
    walking top-level ``=`` conjuncts in assertion order (the IR is SSA,
    so definitions precede uses), any array variable with no contents is
    assigned the evaluation of the other side.  The result is used only
    for the cache's verification check; the partial model itself is what
    gets served, faithfully replaying what the solver would return.
    """
    check = Model(int_values=dict(model.int_values),
                  class_values=dict(model.class_values),
                  arrays={t: dict(c) for t, c in model.arrays.items()},
                  app_table=dict(model.app_table))
    assigned = {t for t, contents in check.arrays.items() if contents}
    for f in formulas:
        for conj in _conjuncts(f):
            if conj.op != Op.EQ or not conj.args[0].sort.is_array:
                continue
            a, b = conj.args
            for var, other in ((a, b), (b, a)):
                if var.op == Op.VAR and var not in assigned:
                    try:
                        check.arrays[var] = dict(check.eval_array(other))
                    except TypeError:
                        continue
                    assigned.add(var)
                    break
    return check


def rebuild_model(witness: Optional[dict],
                  formulas: Sequence[Term]) -> Optional[Model]:
    """Reconstruct a :class:`Model` over the current query's variables."""
    if witness is None:
        return None
    ints = witness.get("ints", {})
    arrays = witness.get("arrays", {})
    model = Model()
    try:
        for encoded, value in witness.get("apps", ()):
            model.app_table[_decode_app_key(encoded)] = value
    except (KeyError, TypeError, ValueError):
        return None  # malformed/hand-edited disk entry
    seen = set()
    for f in formulas:
        for t in subterms(f):
            if t.id in seen or t.op != Op.VAR:
                continue
            seen.add(t.id)
            if t.sort.is_array:
                contents = arrays.get(t.payload)
                if contents is not None:
                    model.arrays[t] = {int(k): v for k, v in contents.items()}
            elif t.payload in ints:
                model.int_values[t] = ints[t.payload]
    return model


class QueryCache:
    """Two-tier sat/unsat memo; see the module docstring for the contract."""

    def __init__(self, path: Optional[str] = None,
                 max_memory_entries: int = 200_000):
        self.path = path
        self.max_memory_entries = max_memory_entries
        self._mem: "OrderedDict[str, Tuple[str, Optional[Model]]]" = OrderedDict()
        self._disk: Dict[str, dict] = {}
        self._fh = None
        self._pid: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0
        if path:
            self._load_disk()

    # -- lookup / store -----------------------------------------------------

    def lookup(self, key: str, formulas: Sequence[Term],
               need_model: bool = True
               ) -> Optional[Tuple[str, Optional[Model]]]:
        """The cached ``(status, model)`` for ``key``, or None on miss.

        ``need_model=False`` (status-only probes routed through warm
        incremental contexts) skips the sat-model re-verification: the
        key is a full structural sha1, the same guarantee ``unsat`` hits
        already rely on, and the model itself is never served unverified
        — the hit is ``(sat, None)``.  A status-only memory entry
        ``(sat, None)`` looked up with ``need_model=True`` is served
        as-is *after* the disk tier gets a chance to supply a witness;
        the solver upgrades it with an uncharged one-shot solve.
        """
        status_only: Optional[Tuple[str, Optional[Model]]] = None
        entry = self._mem.get(key)
        if entry is not None:
            status, model = entry
            if status == UNSAT:
                self.hits += 1
                return (status, model)
            if not need_model:
                self.hits += 1
                return (SAT, None)
            if model is not None:
                if self._verifies(model, formulas):
                    self.hits += 1
                    return (status, model)
                # Failed re-verification: a collision or an unreplayable
                # model.  Drop the entry so we stop paying the check.
                del self._mem[key]
            else:
                status_only = (SAT, None)
        disk_entry = self._disk.get(key)
        if disk_entry is not None:
            if disk_entry["status"] == UNSAT:
                self.hits += 1
                self._remember(key, UNSAT, None)
                return (UNSAT, None)
            if not need_model:
                self.hits += 1
                return (SAT, None)
            model = rebuild_model(disk_entry.get("witness"), formulas)
            if model is not None and self._verifies(model, formulas):
                self.hits += 1
                self._remember(key, SAT, model)
                return (SAT, model)
        if status_only is not None:
            self.hits += 1
            return status_only
        self.misses += 1
        return None

    @staticmethod
    def _verifies(model: Model, formulas: Sequence[Term]) -> bool:
        """Does ``model`` (possibly partial) witness ``formulas``?

        Checks a deterministic completion (see
        :func:`completed_check_model`) so that written-but-never-read
        array variables — which solver models leave unconstrained —
        don't force spurious misses.  The completion is a fresh copy;
        the cached model is served untouched.
        """
        return satisfies(completed_check_model(model, formulas), formulas)

    def store(self, key: str, status: str, model: Optional[Model],
              formulas: Sequence[Term]) -> None:
        """Record a definitive answer.  ``unknown`` is silently refused."""
        if status not in (SAT, UNSAT):
            return
        self.stores += 1
        self._remember(key, status, model)
        if self.path is None or key in self._disk:
            return
        entry: dict = {"key": key, "status": status}
        if status == SAT:
            witness = extract_witness(model)
            if witness is None:
                return  # not replayable across processes; memory tier only
            entry["witness"] = witness
        self._disk[key] = entry
        self._append(entry)

    def _remember(self, key: str, status: str, model: Optional[Model]) -> None:
        self._mem[key] = (status, model)
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_memory_entries:
            self._mem.popitem(last=False)
            self.evictions += 1

    # -- disk tier ----------------------------------------------------------

    def _shard_paths(self) -> List[str]:
        assert self.path is not None
        return sorted(p for p in glob.glob(self.path + ".shard-*")
                      if not p.endswith(".bad"))

    def _load_disk(self) -> None:
        """Read the base file plus every live shard into ``_disk``.

        A file that cannot be read cleanly is **quarantined** — renamed
        to ``<name>.bad`` so neither this load nor any future one trips
        over it again — and its entries are simply recomputed on demand
        (the cache is a memo; losing it costs time, never correctness).
        One exception: an undecodable *final* line is the signature of a
        writer that died mid-append, and everything before it is intact,
        so the file is kept and only that line is dropped.
        """
        assert self.path is not None
        if faults.should_fail("cache.corrupt_shard"):
            self._inject_corruption()
        candidates = [self.path] + self._shard_paths()
        for fname in candidates:
            if not os.path.exists(fname):
                continue
            entries = self._read_entries(fname)
            if entries is None:
                self._quarantine(fname)
                continue
            for entry in entries:
                self._disk[entry["key"]] = entry

    def _read_entries(self, fname: str) -> Optional[List[dict]]:
        """Entries of one JSONL file, or None when it must be quarantined."""
        try:
            with open(fname, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except (OSError, UnicodeDecodeError, ValueError):
            return None
        while lines and lines[-1] == "":
            lines.pop()
        entries: List[dict] = []
        for i, raw in enumerate(lines):
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                if i == len(lines) - 1:
                    continue  # torn final append from a crashed writer
                return None  # garbage mid-file: real corruption
            # A line that parses but has an unexpected shape (say, a
            # future format revision) is skipped, not fatal.
            if (isinstance(entry, dict)
                    and entry.get("status") in (SAT, UNSAT)
                    and isinstance(entry.get("key"), str)):
                entries.append(entry)
        return entries

    def _quarantine(self, fname: str) -> None:
        try:
            os.replace(fname, fname + ".bad")
        except OSError:
            try:
                os.remove(fname)
            except OSError:
                return  # can't move or remove it; leave it for the operator
        self.quarantined += 1
        obs.count("resil.cache.quarantined")

    def _inject_corruption(self) -> None:
        """Fault hook (``cache.corrupt_shard``): vandalize one cache file
        the way an interrupted writer or bad disk would — garbage bytes
        followed by more data, so the damage is *not* a torn final line
        and must go through the quarantine path."""
        assert self.path is not None
        for fname in self._shard_paths() + [self.path]:
            if os.path.exists(fname):
                with open(fname, "r+", encoding="utf-8") as fh:
                    body = fh.read()
                    fh.seek(0)
                    fh.write("\x00garbage{not json\n" + body + "{}\n")
                return

    def _append(self, entry: dict) -> None:
        pid = os.getpid()
        if self._fh is None or self._pid != pid:
            # After a fork the inherited handle belongs to the parent;
            # abandon it (no flush — its buffer is the parent's data) and
            # write to this process's own shard.  Line buffering keeps
            # the buffer empty so a later fork cannot duplicate lines.
            self._fh = open(f"{self.path}.shard-{pid}", "a",
                            encoding="utf-8", buffering=1)
            self._pid = pid
        self._fh.write(json.dumps(entry, separators=(",", ":"),
                                  sort_keys=True) + "\n")

    def refresh(self) -> None:
        """Merge entries other processes have appended since the last read.

        The per-iteration fork design in :mod:`repro.perf.pool` relies on
        this: worker stores land in shard files, the parent refreshes
        before the next fork, and the refreshed ``_disk`` dict is what
        the next generation of workers inherits.
        """
        if self.path is not None:
            self._load_disk()

    def close(self) -> None:
        if self._fh is not None and self._pid == os.getpid():
            self._fh.flush()
            self._fh.close()
        self._fh = None
        self._pid = None

    def compact(self) -> None:
        """Merge shard files into the base file with an atomic rename.

        Safe against concurrent *readers* (they see either the old or the
        new base file); run it when this process's writers are done.
        """
        if self.path is None:
            return
        self.close()
        self._load_disk()  # pick up shards written by other processes
        shards = self._shard_paths()
        tmp = f"{self.path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for key in sorted(self._disk):
                fh.write(json.dumps(self._disk[key], separators=(",", ":"),
                                    sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        for shard in shards:
            try:
                os.remove(shard)
            except OSError:
                pass

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "quarantined": self.quarantined,
                "memory_entries": len(self._mem),
                "disk_entries": len(self._disk)}


def resolve_cache_spec(config_value: Optional[str]) -> Optional[str]:
    """Effective cache spec: explicit config wins, else ``REPRO_QUERY_CACHE``."""
    spec = config_value
    if spec is None:
        spec = os.environ.get(ENV_QUERY_CACHE, "")
    spec = spec.strip()
    if not spec or spec == "0":
        return None
    return spec


def query_cache_for(config_value,
                    slug: str = "default") -> Optional[QueryCache]:
    """Build the run's :class:`QueryCache` from config/env, or None.

    ``"mem"``/``"1"`` selects the memory-only tier; a directory spec
    (trailing separator or an existing directory) shards the disk tier
    per task slug; anything else is used as the file path directly.

    A ready-made :class:`QueryCache` instance passes straight through —
    this is how a long-lived host (a ``repro.serve`` worker) keeps one
    warm cache object, memory tier and all, across many ``run_pins``
    calls.  The run still calls ``close()`` on it in its cleanup path;
    that only drops the shard file handle, which ``_append`` lazily
    reopens, so a shared instance survives any number of runs.
    """
    if isinstance(config_value, QueryCache):
        return config_value
    spec = resolve_cache_spec(config_value)
    if spec is None:
        return None
    if spec in MEMORY_SPECS:
        return QueryCache(None)
    path = spec
    if spec.endswith(os.sep) or os.path.isdir(spec):
        os.makedirs(spec, exist_ok=True)
        path = os.path.join(spec, f"{slug}.jsonl")
    else:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    return QueryCache(path)
