"""Performance subsystem: SMT query caching and parallel probe fan-out.

Two orthogonal accelerators for the PINS loop, both behaviour-preserving
(DESIGN.md §10):

* :mod:`repro.perf.cache` — a fingerprint-keyed sat/unsat memo with an
  in-memory tier and an optional on-disk JSONL tier for cross-run reuse
  (``PinsConfig.query_cache`` / ``REPRO_QUERY_CACHE``);
* :mod:`repro.perf.pool` — a fork-based worker pool that fans out
  independent solver probes (``PinsConfig.jobs`` / ``REPRO_JOBS``),
  folding results in submission order so parallel runs are bit-identical
  to serial ones.
"""

from .cache import (
    ENV_QUERY_CACHE,
    QueryCache,
    extract_witness,
    query_cache_for,
    rebuild_model,
    resolve_cache_spec,
)
from .pool import (
    ENV_JOBS,
    ENV_POOL_TIMEOUT,
    ENV_WORKERS,
    PerfContext,
    PersistentWorkerPool,
    WorkerPool,
    resolve_jobs,
    resolve_task_timeout,
    resolve_workers,
)

__all__ = [
    "ENV_JOBS",
    "ENV_POOL_TIMEOUT",
    "ENV_QUERY_CACHE",
    "ENV_WORKERS",
    "PerfContext",
    "PersistentWorkerPool",
    "QueryCache",
    "WorkerPool",
    "extract_witness",
    "query_cache_for",
    "rebuild_model",
    "resolve_cache_spec",
    "resolve_jobs",
    "resolve_task_timeout",
    "resolve_workers",
]
