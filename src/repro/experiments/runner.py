"""Command-line runner: regenerate the paper's tables.

Usage::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner table2 --names sumi vector_shift
    python -m repro.experiments.runner all --fast
"""

from __future__ import annotations

import argparse
import sys

from . import tables

FAST_NAMES = ["sumi", "vector_shift", "vector_scale", "vector_rotate",
              "vector_reverse", "delta_encode", "serialize", "permute_count"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("which", choices=["table1", "table2", "table3",
                                          "table4", "table5", "ablation", "all"])
    parser.add_argument("--names", nargs="*", default=None)
    parser.add_argument("--fast", action="store_true",
                        help="restrict to the quick benchmarks")
    args = parser.parse_args(argv)

    names = args.names
    if args.fast and names is None:
        names = FAST_NAMES

    def emit(title, headers, rows):
        print(f"\n== {title} ==")
        print(tables.render(headers, rows))

    if args.which in ("table1", "all"):
        emit("Table 1: template mining", tables.TABLE1_HEADERS, tables.table1(names))
    if args.which in ("table2", "all"):
        emit("Table 2: PINS performance", tables.TABLE2_HEADERS, tables.table2(names))
    if args.which in ("table3", "all"):
        emit("Table 3: validation", tables.TABLE3_HEADERS, tables.table3(names))
    if args.which in ("table4", "all"):
        emit("Table 4: time breakdown", tables.TABLE4_HEADERS, tables.table4(names))
    if args.which in ("table5", "all"):
        emit("Table 5: finitization", tables.TABLE5_HEADERS, tables.table5(names))
    if args.which in ("ablation", "all"):
        comparison = tables.ablation_pickone()
        print(f"\npickOne ablation (sumi): infeasible {comparison.infeasible_times}"
              f" vs random {comparison.random_times}"
              f" -> slowdown x{comparison.slowdown:.2f}")
        explosion = tables.ablation_path_explosion()
        print(f"path explosion ({explosion.benchmark}, unroll<={explosion.max_unroll}): "
              f"{explosion.paths} syntactic paths")
    return 0


if __name__ == "__main__":
    sys.exit(main())
