"""Regenerate every table and figure of the paper's evaluation.

Each ``table_N`` function runs the corresponding experiment over the
suite and returns rows mirroring the paper's columns, with the published
value alongside for shape comparison.  ``render`` pretty-prints any table
as aligned text (this is what EXPERIMENTS.md and the benchmark harness
print).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..baselines.randompath import compare_pickone, path_explosion
from ..baselines.sketchlite import run_sketchlite
from ..lang.transform import compose, desugar_program, loc_of
from ..mining.miner import mine
from ..pins.algorithm import PinsConfig, PinsResult, build_template, run_pins
from ..suite import BENCHMARK_MODULES, Benchmark, get_benchmark
from ..validate.bmc import BmcBounds, bounded_check
from ..validate.roundtrip import random_pool, validate_inverse

FAST_CONFIGS: Dict[str, PinsConfig] = {}
"""Per-benchmark PINS configs for table generation; tuned so the full
table run completes on a laptop.  Empty entries use the default."""


def pins_config_for(name: str, m: int = 10, max_iterations: int = 25,
                    seed: int = 1) -> PinsConfig:
    cfg = FAST_CONFIGS.get(name)
    if cfg is not None:
        return cfg
    return PinsConfig(m=m, max_iterations=max_iterations, seed=seed)


def render(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align a table as monospace text."""
    table = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 1 — template-mining characteristics
# ---------------------------------------------------------------------------


def table1_row(bench: Benchmark) -> List[Any]:
    mined = mine(bench.task.program)
    subset = len(bench.task.phi_e) + len(bench.task.phi_p)
    return [
        bench.name,
        bench.loc, bench.paper.loc,
        mined.size, bench.paper.mined,
        subset, bench.paper.subset,
        bench.inverse_loc, bench.paper.inverse_loc,
        len(bench.task.axioms), bench.paper.axioms,
    ]


TABLE1_HEADERS = ["benchmark", "LoC", "(paper)", "mined", "(paper)",
                  "subset", "(paper)", "inv LoC", "(paper)",
                  "axioms", "(paper)"]


def table1(names: Optional[Sequence[str]] = None) -> List[List[Any]]:
    return [table1_row(get_benchmark(n)) for n in (names or BENCHMARK_MODULES)]


# ---------------------------------------------------------------------------
# Table 2 — PINS performance
# ---------------------------------------------------------------------------


def table2_row(bench: Benchmark, result: PinsResult, elapsed: float) -> List[Any]:
    return [
        bench.name,
        f"2^{result.stats.search_space_log2:.0f}",
        f"2^{bench.paper.search_space_log2:.0f}",
        len(result.solutions), bench.paper.num_solutions,
        result.stats.iterations, bench.paper.iterations,
        f"{elapsed:.2f}", f"{bench.paper.time_seconds:.2f}",
        result.stats.sat_clauses, bench.paper.sat_size,
        result.status,
    ]


TABLE2_HEADERS = ["benchmark", "space", "(paper)", "sols", "(paper)",
                  "iters", "(paper)", "time s", "(paper)",
                  "|SAT|", "(paper)", "status"]


def run_benchmark(name: str, config: Optional[PinsConfig] = None
                  ) -> tuple[Benchmark, PinsResult, float]:
    bench = get_benchmark(name)
    cfg = config or pins_config_for(name)
    start = time.perf_counter()
    result = run_pins(bench.task, cfg)
    return bench, result, time.perf_counter() - start


def table2(names: Optional[Sequence[str]] = None,
            config: Optional[PinsConfig] = None) -> List[List[Any]]:
    rows = []
    for name in names or BENCHMARK_MODULES:
        bench, result, elapsed = run_benchmark(name, config)
        rows.append(table2_row(bench, result, elapsed))
    return rows


# ---------------------------------------------------------------------------
# Table 2 from recorded bench JSON (scripts/run_bench.py output)
# ---------------------------------------------------------------------------


BENCH_MATRIX_HEADERS = ["benchmark", "status", "paths", "iters", "SMT q",
                        "cache%", "wall s", "sols", "digest",
                        "paper iters", "paper s"]


def bench_matrix_rows(data: Dict[str, Any], label: str) -> List[List[Any]]:
    """Table-2-style rows from a recorded ``BENCH_pins.json`` label.

    Rows come out in registry order (recorded programs outside the
    registry are appended alphabetically) with the paper's published
    iteration/time figures alongside where the program has a row in
    Table 2.
    """
    labels = data.get("labels", {})
    if label not in labels:
        raise KeyError(
            f"label {label!r} not recorded; available labels: "
            + ", ".join(sorted(labels)))
    benchmarks = labels[label].get("benchmarks", {})
    ordered = [n for n in BENCHMARK_MODULES if n in benchmarks]
    ordered += sorted(set(benchmarks) - set(BENCHMARK_MODULES))
    rows = []
    for name in ordered:
        rec = benchmarks[name]
        try:
            bench = get_benchmark(name)
            in_paper = bench.in_paper
            paper_iters = bench.paper.iterations
            paper_time = f"{bench.paper.time_seconds:.2f}"
        except KeyError:
            in_paper = False
            paper_iters = paper_time = ""
        rows.append([
            name,
            rec.get("status", "?"),
            rec.get("paths", ""),
            rec.get("iterations", ""),
            rec.get("smt_queries", ""),
            f"{100 * rec.get('cache_hit_rate', 0.0):.0f}",
            f"{rec.get('wall_time_s', 0.0):.2f}",
            rec.get("solutions", ""),
            str(rec.get("inverse_digest", ""))[:12],
            paper_iters if in_paper else "-",
            paper_time if in_paper else "-",
        ])
    return rows


def render_bench_matrix(data: Dict[str, Any], label: str) -> str:
    """Render one recorded label as an aligned Table-2-style matrix."""
    return render(BENCH_MATRIX_HEADERS, bench_matrix_rows(data, label))


# ---------------------------------------------------------------------------
# Table 3 — validation
# ---------------------------------------------------------------------------


TABLE3_HEADERS = ["benchmark", "correct/returned", "(paper)", "tests",
                  "(paper)", "BMC s", "(paper CBMC)", "sketchlite s",
                  "(paper Sketch)"]


def table3_row(name: str, config: Optional[PinsConfig] = None,
               sketch_timeout: float = 60.0) -> List[Any]:
    bench, result, _elapsed = run_benchmark(name, config)
    task = bench.task
    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    pool = list(task.initial_inputs)
    if task.input_gen is not None:
        pool += random_pool(task.input_gen, 40, seed=11)
    correct = 0
    for inverse in result.inverse_programs():
        report = validate_inverse(task.program, inverse, spec, pool,
                                  task.externs, precondition=task.precondition)
        if report.ok:
            correct += 1
    bounds = BmcBounds(unroll=task.bmc_unroll, array_size=task.bmc_array_size,
                       value_range=task.bmc_value_range, max_cases=3000)
    bmc_time = ""
    if result.inverse_programs():
        bmc = bounded_check(task.program, result.inverse_programs()[0], spec,
                            bounds, task.externs, precondition=task.precondition)
        bmc_time = f"{bmc.elapsed:.2f}{'' if bmc.ok else '!'}"
    # Baselines emulate Sketch, which has no static-pruning pass: give
    # them the paper's full template space.
    template = build_template(task, static_pruning=False)
    sketch = run_sketchlite(task, template, bounds, timeout=sketch_timeout)
    sketch_time = (f"{sketch.elapsed:.2f}" if sketch.status == "sat"
                   else sketch.status)
    return [
        name,
        f"{correct}/{len(result.solutions)}", bench.paper.manual_ok,
        len(result.tests), bench.paper.tests,
        bmc_time, bench.paper.cbmc_seconds or "-",
        sketch_time, bench.paper.sketch_seconds or "-",
    ]


def table3(names: Optional[Sequence[str]] = None, **kwargs) -> List[List[Any]]:
    return [table3_row(name, **kwargs) for name in (names or BENCHMARK_MODULES)]


# ---------------------------------------------------------------------------
# Table 4 — running-time breakdown
# ---------------------------------------------------------------------------


TABLE4_HEADERS = ["benchmark", "symexec %", "SMT red. %", "SAT %",
                  "pickOne %", "total s"]


def table4_row(name: str, config: Optional[PinsConfig] = None) -> List[Any]:
    _bench, result, elapsed = run_benchmark(name, config)
    b = result.stats.breakdown()
    return [
        name,
        f"{100 * b['symexec']:.0f}", f"{100 * b['smt_reduction']:.0f}",
        f"{100 * b['sat']:.0f}", f"{100 * b['pickone']:.0f}",
        f"{elapsed:.2f}",
    ]


def table4(names: Optional[Sequence[str]] = None, **kwargs) -> List[List[Any]]:
    return [table4_row(name, **kwargs) for name in (names or BENCHMARK_MODULES)]


# ---------------------------------------------------------------------------
# Table 5 — finitization parameters for BMC / sketchlite
# ---------------------------------------------------------------------------


TABLE5_HEADERS = ["benchmark", "unroll", "array size", "value range",
                  "sketchlite |SAT|"]


def table5_row(name: str, sketch_timeout: float = 60.0) -> List[Any]:
    bench = get_benchmark(name)
    task = bench.task
    template = build_template(task, static_pruning=False)
    bounds = BmcBounds(unroll=task.bmc_unroll, array_size=task.bmc_array_size,
                       value_range=task.bmc_value_range, max_cases=2000)
    sketch = run_sketchlite(task, template, bounds, timeout=sketch_timeout)
    return [name, task.bmc_unroll, task.bmc_array_size,
            f"{task.bmc_value_range}",
            sketch.sat_clauses if sketch.status != "unsupported" else "n/a"]


def table5(names: Optional[Sequence[str]] = None, **kwargs) -> List[List[Any]]:
    return [table5_row(name, **kwargs) for name in (names or BENCHMARK_MODULES)]


# ---------------------------------------------------------------------------
# Section 2.3/2.4 ablations
# ---------------------------------------------------------------------------


def ablation_pickone(name: str = "sumi", seeds: Sequence[int] = (1, 2, 3),
                     config: Optional[PinsConfig] = None):
    bench = get_benchmark(name)
    return compare_pickone(bench.task, list(seeds), config)


def ablation_path_explosion(name: str = "inplace_rl", max_unroll: int = 3):
    bench = get_benchmark(name)
    return path_explosion(bench.task, max_unroll)
