"""Experiment drivers that regenerate every table/figure of the paper."""

from . import tables
from .tables import (
    BENCH_MATRIX_HEADERS,
    TABLE1_HEADERS,
    TABLE2_HEADERS,
    TABLE3_HEADERS,
    TABLE4_HEADERS,
    TABLE5_HEADERS,
    ablation_path_explosion,
    ablation_pickone,
    bench_matrix_rows,
    render,
    render_bench_matrix,
    run_benchmark,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [name for name in dir() if not name.startswith("_")]
