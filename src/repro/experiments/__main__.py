"""``python -m repro.experiments`` — the experiments CLI.

``table2`` renders the recorded Table-2-style matrix from a bench JSON
(the output of ``scripts/run_bench.py --bench-json``)::

    python -m repro.experiments table2
    python -m repro.experiments table2 --bench-json BENCH_pins.json --label full-suite

Pass ``--live`` to regenerate Table 2 by actually running the suite
(the historical ``python -m repro.experiments.runner table2`` behavior);
every other table name falls through to the runner unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import tables
from .runner import main as runner_main

DEFAULT_BENCH_JSON = "BENCH_pins.json"
DEFAULT_LABEL = "full-suite"


def _render_recorded(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments table2",
        description="Render a recorded bench matrix (Table-2 style).")
    ap.add_argument("--bench-json", default=DEFAULT_BENCH_JSON,
                    help=f"bench JSON path (default: {DEFAULT_BENCH_JSON})")
    ap.add_argument("--label", default=None,
                    help=f"recorded label to render (default: "
                         f"'{DEFAULT_LABEL}', else the sole label)")
    args = ap.parse_args(argv)
    try:
        with open(args.bench_json, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.bench_json}: {exc}", file=sys.stderr)
        return 1
    labels = data.get("labels", {}) if isinstance(data, dict) else {}
    label = args.label
    if label is None:
        if DEFAULT_LABEL in labels:
            label = DEFAULT_LABEL
        elif len(labels) == 1:
            label = next(iter(labels))
        else:
            print(f"pass --label; recorded labels: "
                  + ", ".join(sorted(labels)), file=sys.stderr)
            return 1
    try:
        print(f"== Table 2 (recorded): label '{label}' from {args.bench_json} ==")
        print(tables.render_bench_matrix(data, label))
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "table2" and "--live" not in argv:
        return _render_recorded(argv[1:])
    if "--live" in argv:
        argv.remove("--live")
    return runner_main(argv)


if __name__ == "__main__":
    sys.exit(main())
