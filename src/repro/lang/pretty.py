"""Pretty-printer for the template language.

Produces the concrete syntax accepted by :mod:`repro.lang.parser`, so
``parse(pretty(p))`` round-trips (tested property-style in the test suite).
"""

from __future__ import annotations

from typing import List, Union

from . import ast
from .ast import (
    And,
    Assign,
    Assume,
    BinOp,
    BoolLit,
    Cmp,
    Expr,
    Exit,
    FunApp,
    GIf,
    GWhile,
    HoleExpr,
    HolePred,
    If,
    In,
    IntLit,
    Not,
    Or,
    Out,
    Pred,
    Select,
    Seq,
    Skip,
    Stmt,
    Unknown,
    UnknownPred,
    Update,
    Var,
    While,
)

INDENT = "  "


def pretty_expr(e: Expr) -> str:
    """Render an expression."""
    if isinstance(e, Var):
        return e.name
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, BinOp):
        return f"({pretty_expr(e.left)} {e.op.value} {pretty_expr(e.right)})"
    if isinstance(e, Select):
        return f"sel({pretty_expr(e.array)}, {pretty_expr(e.index)})"
    if isinstance(e, Update):
        return (
            f"upd({pretty_expr(e.array)}, {pretty_expr(e.index)}, {pretty_expr(e.value)})"
        )
    if isinstance(e, FunApp):
        return f"{e.name}({', '.join(pretty_expr(a) for a in e.args)})"
    if isinstance(e, Unknown):
        return f"[{e.name}]"
    if isinstance(e, HoleExpr):
        vm = ", ".join(f"{n}:{ver}" for n, ver in e.vmap)
        return f"[{e.name}]^{{{vm}}}"
    raise TypeError(f"unexpected expression {e!r}")


def pretty_pred(p: Pred) -> str:
    """Render a predicate."""
    if isinstance(p, BoolLit):
        return "true" if p.value else "false"
    if isinstance(p, Cmp):
        return f"{pretty_expr(p.left)} {p.op.value} {pretty_expr(p.right)}"
    if isinstance(p, And):
        return "(" + " && ".join(pretty_pred(q) for q in p.parts) + ")"
    if isinstance(p, Or):
        return "(" + " || ".join(pretty_pred(q) for q in p.parts) + ")"
    if isinstance(p, Not):
        return f"!({pretty_pred(p.pred)})"
    if isinstance(p, UnknownPred):
        return f"[{p.name}]"
    if isinstance(p, HolePred):
        vm = ", ".join(f"{n}:{ver}" for n, ver in p.vmap)
        return f"[{p.name}]^{{{vm}}}"
    raise TypeError(f"unexpected predicate {p!r}")


def _render(stmt: Stmt, lines: List[str], depth: int) -> None:
    pad = INDENT * depth
    if isinstance(stmt, Seq):
        for s in stmt.stmts:
            _render(s, lines, depth)
    elif isinstance(stmt, Assign):
        lhs = ", ".join(stmt.targets)
        rhs = ", ".join(pretty_expr(e) for e in stmt.exprs)
        lines.append(f"{pad}{lhs} := {rhs};")
    elif isinstance(stmt, Assume):
        lines.append(f"{pad}assume({pretty_pred(stmt.pred)});")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if (*) {{")
        _render(stmt.then, lines, depth + 1)
        lines.append(f"{pad}}} else {{")
        _render(stmt.els, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, While):
        lines.append(f"{pad}while (*) {{")
        _render(stmt.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, GIf):
        lines.append(f"{pad}if ({pretty_pred(stmt.cond)}) {{")
        _render(stmt.then, lines, depth + 1)
        lines.append(f"{pad}}} else {{")
        _render(stmt.els, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, GWhile):
        lines.append(f"{pad}while ({pretty_pred(stmt.cond)}) {{")
        _render(stmt.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, In):
        lines.append(f"{pad}in({', '.join(stmt.names)});")
    elif isinstance(stmt, Out):
        lines.append(f"{pad}out({', '.join(stmt.names)});")
    elif isinstance(stmt, Exit):
        lines.append(f"{pad}exit;")
    elif isinstance(stmt, Skip):
        lines.append(f"{pad}skip;")
    else:
        raise TypeError(f"unexpected statement {stmt!r}")


def pretty_stmt(stmt: Stmt, depth: int = 0) -> str:
    """Render a statement tree as indented source text."""
    lines: List[str] = []
    _render(stmt, lines, depth)
    return "\n".join(lines)


def pretty_program(program: ast.Program) -> str:
    """Render a whole program, including its declarations header."""
    decls = "; ".join(f"{sort.value} {name}" for name, sort in sorted(program.decls.items()))
    header = f"program {program.name} [{decls}] {{"
    return "\n".join([header, pretty_stmt(program.body, 1), "}"])


def pretty(node: Union[ast.Program, Stmt, Expr, Pred]) -> str:
    """Render any AST node."""
    if isinstance(node, ast.Program):
        return pretty_program(node)
    if isinstance(node, Stmt):
        return pretty_stmt(node)
    if isinstance(node, Expr):
        return pretty_expr(node)
    if isinstance(node, Pred):
        return pretty_pred(node)
    raise TypeError(f"cannot pretty-print {node!r}")
