"""Program transformations: desugaring, substitution, renaming.

These are the workhorse passes used throughout the system:

* :func:`desugar` rewrites guarded conditionals and loops into the paper's
  nondeterministic normal form (``if(*)`` / ``while(*)`` + ``assume``).
* :func:`substitute_solution` replaces unknowns by their chosen candidates,
  turning a template into an executable program.
* :func:`rename_expr` / :func:`rename_pred` apply variable renamings, used
  by template mining (priming variables) and by solution application
  (versioning variables according to a version map).
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Optional, Sequence, Union

from . import ast
from .ast import (
    And,
    Assign,
    Assume,
    BinOp,
    BoolLit,
    Cmp,
    Expr,
    Exit,
    FunApp,
    GIf,
    GWhile,
    HoleExpr,
    HolePred,
    If,
    In,
    IntLit,
    Not,
    Or,
    Out,
    Pred,
    Select,
    Seq,
    Skip,
    Stmt,
    Unknown,
    UnknownPred,
    Update,
    Var,
    While,
    conj,
    negate,
    seq,
)

ExprMap = Callable[[Expr], Optional[Expr]]


def map_expr(e: Expr, fn: ExprMap) -> Expr:
    """Bottom-up rewrite of an expression; ``fn`` may return None to keep."""
    if isinstance(e, (Var, IntLit, Unknown, HoleExpr)):
        out: Expr = e
    elif isinstance(e, BinOp):
        out = BinOp(e.op, map_expr(e.left, fn), map_expr(e.right, fn))
    elif isinstance(e, Select):
        out = Select(map_expr(e.array, fn), map_expr(e.index, fn))
    elif isinstance(e, Update):
        out = Update(map_expr(e.array, fn), map_expr(e.index, fn), map_expr(e.value, fn))
    elif isinstance(e, FunApp):
        out = FunApp(e.name, tuple(map_expr(a, fn) for a in e.args))
    else:
        raise TypeError(f"unexpected expression node {e!r}")
    replaced = fn(out)
    return out if replaced is None else replaced


def map_pred(p: Pred, fn: ExprMap, pfn: Optional[Callable[[Pred], Optional[Pred]]] = None) -> Pred:
    """Bottom-up rewrite of a predicate, applying ``fn`` to leaf expressions."""
    if isinstance(p, (BoolLit, UnknownPred, HolePred)):
        out: Pred = p
    elif isinstance(p, Cmp):
        out = Cmp(p.op, map_expr(p.left, fn), map_expr(p.right, fn))
    elif isinstance(p, And):
        out = And(tuple(map_pred(q, fn, pfn) for q in p.parts))
    elif isinstance(p, Or):
        out = Or(tuple(map_pred(q, fn, pfn) for q in p.parts))
    elif isinstance(p, Not):
        out = Not(map_pred(p.pred, fn, pfn))
    else:
        raise TypeError(f"unexpected predicate node {p!r}")
    if pfn is not None:
        replaced = pfn(out)
        if replaced is not None:
            return replaced
    return out


def rename_expr(e: Expr, renaming: Mapping[str, str]) -> Expr:
    """Rename variables in an expression according to ``renaming``."""

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var) and node.name in renaming:
            return Var(renaming[node.name])
        return None

    return map_expr(e, fn)


def rename_pred(p: Pred, renaming: Mapping[str, str]) -> Pred:
    """Rename variables in a predicate according to ``renaming``."""

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var) and node.name in renaming:
            return Var(renaming[node.name])
        return None

    return map_pred(p, fn)


def map_stmt(stmt: Stmt, fn: Callable[[Stmt], Optional[Stmt]]) -> Stmt:
    """Bottom-up rewrite of a statement tree."""
    if isinstance(stmt, Seq):
        out: Stmt = seq(*(map_stmt(s, fn) for s in stmt.stmts))
    elif isinstance(stmt, If):
        out = If(map_stmt(stmt.then, fn), map_stmt(stmt.els, fn))
    elif isinstance(stmt, While):
        out = While(map_stmt(stmt.body, fn), stmt.loop_id)
    elif isinstance(stmt, GIf):
        out = GIf(stmt.cond, map_stmt(stmt.then, fn), map_stmt(stmt.els, fn))
    elif isinstance(stmt, GWhile):
        out = GWhile(stmt.cond, map_stmt(stmt.body, fn), stmt.loop_id)
    else:
        out = stmt
    replaced = fn(out)
    return out if replaced is None else replaced


def rename_stmt(stmt: Stmt, renaming: Mapping[str, str]) -> Stmt:
    """Rename variables (targets and uses) across a whole statement tree."""

    def fn(s: Stmt) -> Optional[Stmt]:
        if isinstance(s, Assign):
            return Assign(
                tuple(renaming.get(t, t) for t in s.targets),
                tuple(rename_expr(e, renaming) for e in s.exprs),
            )
        if isinstance(s, Assume):
            return Assume(rename_pred(s.pred, renaming))
        if isinstance(s, GIf):
            return GIf(rename_pred(s.cond, renaming), s.then, s.els)
        if isinstance(s, GWhile):
            return GWhile(rename_pred(s.cond, renaming), s.body, s.loop_id)
        if isinstance(s, In):
            return In(tuple(renaming.get(x, x) for x in s.names))
        if isinstance(s, Out):
            return Out(tuple(renaming.get(x, x) for x in s.names))
        return None

    return map_stmt(stmt, fn)


# ---------------------------------------------------------------------------
# Desugaring guarded statements to nondeterministic normal form
# ---------------------------------------------------------------------------


def desugar(stmt: Stmt, _counter: Optional[itertools.count] = None) -> Stmt:
    """Rewrite guarded conditionals/loops into ``if(*)``/``while(*)`` form.

    Per the paper: ``if(p) s1 else s2`` becomes
    ``if(*)(assume(p); s1) else (assume(!p); s2)`` and ``while(p) s``
    becomes ``while(*)(assume(p); s); assume(!p)``.  Loops that lack an id
    get a fresh one so termination constraints can refer to them.
    """
    if _counter is None:
        _counter = itertools.count()

    def fresh(loop_id: str) -> str:
        return loop_id if loop_id else f"loop{next(_counter)}"

    if isinstance(stmt, Seq):
        return seq(*(desugar(s, _counter) for s in stmt.stmts))
    if isinstance(stmt, GIf):
        return If(
            seq(Assume(stmt.cond), desugar(stmt.then, _counter)),
            seq(Assume(negate(stmt.cond)), desugar(stmt.els, _counter)),
        )
    if isinstance(stmt, GWhile):
        return seq(
            While(seq(Assume(stmt.cond), desugar(stmt.body, _counter)), fresh(stmt.loop_id)),
            Assume(negate(stmt.cond)),
        )
    if isinstance(stmt, If):
        return If(desugar(stmt.then, _counter), desugar(stmt.els, _counter))
    if isinstance(stmt, While):
        return While(desugar(stmt.body, _counter), fresh(stmt.loop_id))
    return stmt


def desugar_program(program: ast.Program) -> ast.Program:
    """Desugar a program's body, appending ``exit`` if absent."""
    body = desugar(program.body)
    if not any(isinstance(s, Exit) for s in ast.walk_stmts(body)):
        body = seq(body, ast.EXIT)
    return program.with_body(body)


# ---------------------------------------------------------------------------
# Solution substitution
# ---------------------------------------------------------------------------


def vmap_renaming(vmap: ast.VersionMap) -> dict:
    """Renaming from plain names to versioned names per a version map."""
    return {name: versioned_name(name, ver) for name, ver in vmap}


def versioned_name(name: str, version: int) -> str:
    """The SSA-style name of ``name`` at ``version`` (``x#3``)."""
    return f"{name}#{version}"


def unversioned_name(name: str) -> str:
    """Strip a version suffix, if present."""
    return name.split("#", 1)[0]


def substitute_expr(e: Expr, solution: Mapping[str, Expr]) -> Expr:
    """Replace :class:`Unknown` nodes by their solution candidates.

    Unknowns missing from ``solution`` are left in place (partial maps are
    allowed, mirroring ``S(p) = p`` for unmapped ``p`` in the paper).
    """

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Unknown) and node.name in solution:
            return solution[node.name]
        if isinstance(node, HoleExpr) and node.name in solution:
            return rename_expr(solution[node.name], vmap_renaming(node.vmap))
        return None

    return map_expr(e, fn)


def substitute_pred(
    e: Pred,
    solution: Mapping[str, Expr],
    pred_solution: Mapping[str, Sequence[Pred]],
) -> Pred:
    """Replace unknown predicates by conjunctions of their chosen candidates.

    Predicate unknowns map to a *tuple* of candidate predicates, denoting
    their conjunction (an empty tuple denotes ``true``), matching the
    paper's note that "each unknown predicate can be instantiated with a
    subset, denoting conjunction, from Phi_p".
    """

    def efn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Unknown) and node.name in solution:
            return solution[node.name]
        if isinstance(node, HoleExpr) and node.name in solution:
            return rename_expr(solution[node.name], vmap_renaming(node.vmap))
        return None

    def pfn(node: Pred) -> Optional[Pred]:
        if isinstance(node, UnknownPred) and node.name in pred_solution:
            return conj(pred_solution[node.name])
        if isinstance(node, HolePred) and node.name in pred_solution:
            renaming = vmap_renaming(node.vmap)
            return conj(rename_pred(q, renaming) for q in pred_solution[node.name])
        return None

    return map_pred(e, efn, pfn)


def substitute_stmt(
    stmt: Stmt,
    solution: Mapping[str, Expr],
    pred_solution: Mapping[str, Sequence[Pred]],
) -> Stmt:
    """Apply a solution across a statement tree."""

    def fn(s: Stmt) -> Optional[Stmt]:
        if isinstance(s, Assign):
            return Assign(s.targets, tuple(substitute_expr(e, solution) for e in s.exprs))
        if isinstance(s, Assume):
            return Assume(substitute_pred(s.pred, solution, pred_solution))
        if isinstance(s, GIf):
            return GIf(substitute_pred(s.cond, solution, pred_solution), s.then, s.els)
        if isinstance(s, GWhile):
            return GWhile(substitute_pred(s.cond, solution, pred_solution), s.body, s.loop_id)
        return None

    return map_stmt(stmt, fn)


def version_expr(e: Expr, vmap: Mapping[str, int]) -> Expr:
    """Rewrite plain variables into their versioned names.

    Unknowns become :class:`HoleExpr` nodes carrying the frozen version map
    (the ``e^V`` pairing of the paper's symbolic executor).
    """
    frozen = ast.freeze_vmap(vmap)

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var):
            return Var(versioned_name(node.name, dict(frozen).get(node.name, 0)))
        if isinstance(node, Unknown):
            return HoleExpr(node.name, frozen)
        return None

    return map_expr(e, fn)


def version_pred(p: Pred, vmap: Mapping[str, int]) -> Pred:
    """Rewrite plain variables in a predicate into versioned names."""
    frozen = ast.freeze_vmap(vmap)

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var):
            return Var(versioned_name(node.name, dict(frozen).get(node.name, 0)))
        if isinstance(node, Unknown):
            return HoleExpr(node.name, frozen)
        return None

    def pfn(node: Pred) -> Optional[Pred]:
        if isinstance(node, UnknownPred):
            return HolePred(node.name, frozen)
        return None

    return map_pred(p, fn, pfn)


# ---------------------------------------------------------------------------
# Composition (P ; T) for inversion
# ---------------------------------------------------------------------------


def compose(program: ast.Program, template: ast.Program, name: str = "") -> ast.Program:
    """Concatenate a program with its inverse template.

    The composed program keeps the original's ``in`` declaration and the
    template's ``out`` declaration; the original ``out`` and template ``in``
    are retained in the body (symbolic execution ignores them) so the
    specification generator can pair them up.
    """
    decls = dict(program.decls)
    for var, sort in template.decls.items():
        if var in decls and decls[var] is not sort:
            raise ValueError(
                f"variable {var!r} declared as {decls[var]} in {program.name!r} "
                f"but {sort} in {template.name!r}"
            )
        decls[var] = sort
    body = seq(program.body, template.body)
    if not any(isinstance(s, Exit) for s in ast.walk_stmts(body)):
        body = seq(body, ast.EXIT)
    return ast.Program(name or f"{program.name}+{template.name}", decls, body)


# ---------------------------------------------------------------------------
# Simple measurements used by the experiment tables
# ---------------------------------------------------------------------------


def loc_of(stmt: Stmt) -> int:
    """Count lines-of-code the way the paper does for Table 1.

    Loop guards count as their own line; a parallel assignment to k
    variables counts as k lines; structural nodes (Seq) are free.
    """
    if isinstance(stmt, Seq):
        return sum(loc_of(s) for s in stmt.stmts)
    if isinstance(stmt, Assign):
        return len(stmt.targets)
    if isinstance(stmt, (Assume, In, Out, Exit)):
        return 1
    if isinstance(stmt, If):
        return 1 + loc_of(stmt.then) + loc_of(stmt.els)
    if isinstance(stmt, While):
        return 1 + loc_of(stmt.body)
    if isinstance(stmt, GIf):
        return 1 + loc_of(stmt.then) + loc_of(stmt.els)
    if isinstance(stmt, GWhile):
        return 1 + loc_of(stmt.body)
    if isinstance(stmt, Skip):
        return 0
    return 1
