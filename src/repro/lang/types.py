"""Lightweight sort inference for expressions.

Used to filter candidate sets per hole (an array-sorted assignment target
only accepts array-sorted candidates) and to sanity-check templates.
"""

from __future__ import annotations

from typing import Mapping, Optional

from . import ast
from .ast import ArithOp, Expr, Sort


class SortError(Exception):
    """An expression is not well-sorted."""


def infer_expr_sort(e: Expr, decls: Mapping[str, Sort],
                    extern_sorts: Optional[Mapping[str, Sort]] = None,
                    ) -> Optional[Sort]:
    """The sort of ``e``, or None when it cannot be determined.

    Raises :class:`SortError` on definite ill-sortedness (e.g. arithmetic
    over an array).
    """
    if isinstance(e, ast.Var):
        return decls.get(e.name)
    if isinstance(e, ast.IntLit):
        return Sort.INT
    if isinstance(e, ast.BinOp):
        for side in (e.left, e.right):
            sort = infer_expr_sort(side, decls, extern_sorts)
            if sort is not None and sort is not Sort.INT:
                raise SortError(f"arithmetic over non-integer operand in {e}")
        return Sort.INT
    if isinstance(e, ast.Select):
        arr = infer_expr_sort(e.array, decls, extern_sorts)
        idx = infer_expr_sort(e.index, decls, extern_sorts)
        if idx is not None and idx is not Sort.INT:
            raise SortError(f"non-integer index in {e}")
        if arr is None:
            return None
        if not arr.is_array:
            raise SortError(f"select from non-array in {e}")
        return arr.element()
    if isinstance(e, ast.Update):
        arr = infer_expr_sort(e.array, decls, extern_sorts)
        idx = infer_expr_sort(e.index, decls, extern_sorts)
        if idx is not None and idx is not Sort.INT:
            raise SortError(f"non-integer index in {e}")
        if arr is not None and not arr.is_array:
            raise SortError(f"update of non-array in {e}")
        val = infer_expr_sort(e.value, decls, extern_sorts)
        if arr is not None and val is not None and val is not arr.element():
            raise SortError(f"element sort mismatch in {e}")
        return arr
    if isinstance(e, ast.FunApp):
        if extern_sorts is not None and e.name in extern_sorts:
            return extern_sorts[e.name]
        return None
    if isinstance(e, (ast.Unknown, ast.HoleExpr)):
        return None
    raise TypeError(f"unexpected expression {e!r}")


def candidate_fits(candidate: Expr, target_sort: Sort,
                   decls: Mapping[str, Sort],
                   extern_sorts: Optional[Mapping[str, Sort]] = None) -> bool:
    """True if a candidate expression may fill a slot of ``target_sort``."""
    try:
        sort = infer_expr_sort(candidate, decls, extern_sorts)
    except SortError:
        return False
    return sort is None or sort is target_sort
