"""Lightweight sort inference for expressions.

This module is a compatibility shim: the single sort-inference
implementation lives in :mod:`repro.analysis.sorts` (which also checks
extern-call argument sorts when full signatures are available).  The
historical entry points — ``infer_expr_sort(e, decls, extern_sorts)``
and ``candidate_fits(candidate, target_sort, decls, extern_sorts)`` —
keep their signatures; ``extern_sorts`` may be a result-sort-only
mapping, a ``{name: Signature}`` mapping, or an
:class:`repro.axioms.registry.ExternRegistry`.
"""

from __future__ import annotations

from ..analysis.sorts import (  # noqa: F401  (re-exports)
    Signature,
    SortContext,
    SortError,
    candidate_fits,
    infer_expr_sort,
)

__all__ = ["Signature", "SortContext", "SortError", "candidate_fits",
           "infer_expr_sort"]
