"""A small recursive-descent parser for the template language.

The accepted syntax is exactly what :mod:`repro.lang.pretty` prints, plus
conventional operator precedence so hand-written sources do not need full
parenthesization.  Guarded ``if (p)`` / ``while (p)`` forms parse to
:class:`~repro.lang.ast.GIf` / :class:`~repro.lang.ast.GWhile`; starred
forms parse to the nondeterministic nodes.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from . import ast
from .ast import (
    And,
    ArithOp,
    Assign,
    Assume,
    BinOp,
    BoolLit,
    Cmp,
    CmpOp,
    Expr,
    FunApp,
    GIf,
    GWhile,
    If,
    In,
    IntLit,
    Not,
    Or,
    Out,
    Pred,
    Program,
    Select,
    Sort,
    Unknown,
    UnknownPred,
    Update,
    Var,
    While,
    seq,
)


class ParseError(Exception):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, pos: int, text: str):
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__(f"{message} at line {line}, column {col}")
        self.pos = pos


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>\d+)
  | (?P<assign>:=)
  | (?P<op>&&|\|\||!=|<=|>=|[-+*/%<>=!,;(){}\[\]])
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_SORTS = {s.value: s for s in Sort}
_KEYWORDS = {"if", "else", "while", "assume", "in", "out", "exit", "skip",
             "sel", "upd", "true", "false", "program"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, m.group(), pos))
        pos = m.end()
    tokens.append(("eof", "", pos))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.idx = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.idx]

    def at(self, value: str) -> bool:
        return self.peek()[1] == value

    def accept(self, value: str) -> bool:
        if self.at(value):
            self.idx += 1
            return True
        return False

    def expect(self, value: str) -> None:
        if not self.accept(value):
            kind, got, pos = self.peek()
            raise ParseError(f"expected {value!r}, found {got!r}", pos, self.text)

    def expect_name(self) -> str:
        kind, value, pos = self.peek()
        if kind != "name":
            raise ParseError(f"expected identifier, found {value!r}", pos, self.text)
        self.idx += 1
        return value

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        e = self._multiplicative()
        while True:
            if self.accept("+"):
                e = BinOp(ArithOp.ADD, e, self._multiplicative())
            elif self.accept("-"):
                e = BinOp(ArithOp.SUB, e, self._multiplicative())
            else:
                return e

    def _multiplicative(self) -> Expr:
        e = self._unary()
        while True:
            if self.accept("*"):
                e = BinOp(ArithOp.MUL, e, self._unary())
            elif self.accept("/"):
                e = BinOp(ArithOp.DIV, e, self._unary())
            elif self.accept("%"):
                e = BinOp(ArithOp.MOD, e, self._unary())
            else:
                return e

    def _unary(self) -> Expr:
        if self.accept("-"):
            inner = self._unary()
            if isinstance(inner, IntLit):
                return IntLit(-inner.value)
            return BinOp(ArithOp.SUB, IntLit(0), inner)
        return self._primary()

    def _primary(self) -> Expr:
        kind, value, pos = self.peek()
        if kind == "num":
            self.idx += 1
            return IntLit(int(value))
        if self.accept("("):
            e = self.parse_expr()
            self.expect(")")
            return e
        if self.accept("["):
            name = self.expect_name()
            self.expect("]")
            return Unknown(name)
        if value == "sel":
            self.idx += 1
            self.expect("(")
            arr = self.parse_expr()
            self.expect(",")
            idx = self.parse_expr()
            self.expect(")")
            return Select(arr, idx)
        if value == "upd":
            self.idx += 1
            self.expect("(")
            arr = self.parse_expr()
            self.expect(",")
            idx = self.parse_expr()
            self.expect(",")
            val = self.parse_expr()
            self.expect(")")
            return Update(arr, idx, val)
        if kind == "name":
            self.idx += 1
            if self.at("("):
                self.expect("(")
                args: List[Expr] = []
                if not self.at(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return FunApp(value, tuple(args))
            return Var(value)
        raise ParseError(f"expected expression, found {value!r}", pos, self.text)

    # -- predicates ----------------------------------------------------------

    _CMP_OPS = {
        "=": CmpOp.EQ,
        "!=": CmpOp.NE,
        "<": CmpOp.LT,
        "<=": CmpOp.LE,
        ">": CmpOp.GT,
        ">=": CmpOp.GE,
    }

    def parse_pred(self) -> Pred:
        return self._or_pred()

    def _or_pred(self) -> Pred:
        parts = [self._and_pred()]
        while self.accept("||"):
            parts.append(self._and_pred())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _and_pred(self) -> Pred:
        parts = [self._atom_pred()]
        while self.accept("&&"):
            parts.append(self._atom_pred())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _atom_pred(self) -> Pred:
        kind, value, pos = self.peek()
        if self.accept("!"):
            self.expect("(")
            inner = self.parse_pred()
            self.expect(")")
            return Not(inner)
        if value == "true":
            self.idx += 1
            return ast.TRUE
        if value == "false":
            self.idx += 1
            return ast.FALSE
        if value == "[":
            # Could be an unknown predicate or an unknown expression in a
            # comparison; backtrack if a comparison operator follows.
            save = self.idx
            self.expect("[")
            name = self.expect_name()
            self.expect("]")
            if self.peek()[1] in self._CMP_OPS:
                self.idx = save
            else:
                return UnknownPred(name)
        if value == "(":
            # A parenthesis may open a nested predicate or a compound
            # expression; try the predicate reading first and fall back.
            save = self.idx
            try:
                self.expect("(")
                inner = self.parse_pred()
                self.expect(")")
                if self.peek()[1] not in self._CMP_OPS and not isinstance(inner, Cmp):
                    return inner
                if self.peek()[1] not in self._CMP_OPS:
                    return inner
            except ParseError:
                pass
            self.idx = save
        left = self.parse_expr()
        kind, value, pos = self.peek()
        if value not in self._CMP_OPS:
            raise ParseError(f"expected comparison operator, found {value!r}", pos, self.text)
        self.idx += 1
        right = self.parse_expr()
        return Cmp(self._CMP_OPS[value], left, right)

    # -- statements ----------------------------------------------------------

    def parse_stmts(self) -> ast.Stmt:
        stmts: List[ast.Stmt] = []
        while not self.at("}") and self.peek()[0] != "eof":
            stmts.append(self.parse_stmt())
        return seq(*stmts)

    def _block(self) -> ast.Stmt:
        self.expect("{")
        body = self.parse_stmts()
        self.expect("}")
        return body

    def parse_stmt(self) -> ast.Stmt:
        kind, value, pos = self.peek()
        if value == "assume":
            self.idx += 1
            self.expect("(")
            p = self.parse_pred()
            self.expect(")")
            self.expect(";")
            return Assume(p)
        if value == "if":
            self.idx += 1
            self.expect("(")
            star = self.accept("*")
            cond = None if star else self.parse_pred()
            self.expect(")")
            then = self._block()
            els: ast.Stmt = ast.SKIP
            if self.accept("else"):
                els = self._block()
            if star:
                return If(then, els)
            assert cond is not None
            return GIf(cond, then, els)
        if value == "while":
            self.idx += 1
            self.expect("(")
            star = self.accept("*")
            cond = None if star else self.parse_pred()
            self.expect(")")
            body = self._block()
            if star:
                return While(body)
            assert cond is not None
            return GWhile(cond, body)
        if value in ("in", "out"):
            self.idx += 1
            self.expect("(")
            names = [self.expect_name()]
            while self.accept(","):
                names.append(self.expect_name())
            self.expect(")")
            self.expect(";")
            return In(tuple(names)) if value == "in" else Out(tuple(names))
        if value == "exit":
            self.idx += 1
            self.expect(";")
            return ast.EXIT
        if value == "skip":
            self.idx += 1
            self.expect(";")
            return ast.SKIP
        # Otherwise: parallel assignment.
        targets = [self.expect_name()]
        while self.accept(","):
            targets.append(self.expect_name())
        self.expect(":=")
        exprs = [self.parse_expr()]
        while self.accept(","):
            exprs.append(self.parse_expr())
        self.expect(";")
        return Assign(tuple(targets), tuple(exprs))

    def parse_program(self) -> Program:
        self.expect("program")
        name = self.expect_name()
        decls = {}
        self.expect("[")
        if not self.at("]"):
            while True:
                sort_name = self.expect_name()
                if sort_name not in _SORTS:
                    raise ParseError(f"unknown sort {sort_name!r}", self.peek()[2], self.text)
                var = self.expect_name()
                decls[var] = _SORTS[sort_name]
                if not self.accept(";"):
                    break
        self.expect("]")
        body = self._block()
        return Program(name, decls, body)


def parse_program(text: str) -> Program:
    """Parse a complete ``program name [decls] { ... }`` unit."""
    parser = _Parser(text)
    prog = parser.parse_program()
    if parser.peek()[0] != "eof":
        raise ParseError("trailing input", parser.peek()[2], text)
    return prog


def parse_stmt(text: str) -> ast.Stmt:
    """Parse a statement sequence."""
    parser = _Parser(text)
    stmt = parser.parse_stmts()
    if parser.peek()[0] != "eof":
        raise ParseError("trailing input", parser.peek()[2], text)
    return stmt


def parse_expr(text: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(text)
    e = parser.parse_expr()
    if parser.peek()[0] != "eof":
        raise ParseError("trailing input", parser.peek()[2], text)
    return e


def parse_pred(text: str) -> Pred:
    """Parse a single predicate."""
    parser = _Parser(text)
    p = parser.parse_pred()
    if parser.peek()[0] != "eof":
        raise ParseError("trailing input", parser.peek()[2], text)
    return p
