"""The ``pickOne`` heuristic (Section 2.3, "Picking one solution").

PINS prefers to symbolically execute under the solution most likely to be
*incorrect*, because exploring a path feasible in a bad solution generates
constraints that eliminate it (and its neighbours).  The heuristic scores
each solution by ``infeasible(S) = |{f in F : S(f) = false}|`` — solutions
that survived only because the explored paths are infeasible under them
are prime suspects — and picks a maximum, breaking ties randomly.

``pick_random`` is the ablation baseline the paper reports as ~20% slower.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .. import obs
from ..symexec.paths import Path, substitute_items
from .checker import ConstraintChecker
from .template import Solution


def infeasible_score(solution: Solution, explored: Sequence[Path],
                     checker: ConstraintChecker) -> int:
    """``infeasible(S)``: explored paths that are infeasible under S.

    A solution picking a candidate the forward-backward unknowns
    analysis statically refuted is known-incorrect and gets the maximal
    score outright — it is exactly the kind of suspect pickOne wants to
    execute next, and no SMT probe is needed to say so.  (Such solutions
    only reach here through direct API use: when the analysis runs, its
    unit clauses keep CDCL from ever proposing them.)
    """
    report = getattr(checker, "fwdbwd_report", None)
    if report is not None and not report.allows(solution):
        return len(explored)
    return sum(1 for path in explored if checker.path_infeasible(path, solution))


def _prefetch_scores(solutions: Sequence[Solution], explored: Sequence[Path],
                     checker: ConstraintChecker, pool) -> None:
    """Warm the checker's sat cache for every (solution, path) probe.

    Pure cache warming: each probe's answer is a deterministic function
    of its ground predicates, so the subsequent serial scoring loop reads
    the same values it would have computed itself — only faster.
    """
    tasks = []
    keys = []
    seen = set()
    for solution in solutions:
        for pidx, path in enumerate(explored):
            ground = tuple(substitute_items(path.items, solution.expr_map,
                                            solution.pred_map))
            if ground in seen or checker.has_cached(ground):
                continue
            seen.add(ground)
            keys.append(ground)
            tasks.append(("path_sat", pidx, solution))
    if len(tasks) < 2:
        return
    obs.count("pickone.prefetch", len(tasks))
    results = pool.map_ordered(tasks)
    for key, result in zip(keys, results):
        checker.prime(key, result)


def pick_one(solutions: Sequence[Solution], explored: Sequence[Path],
             checker: ConstraintChecker, rng: random.Random,
             pool=None) -> Solution:
    """The paper's heuristic: maximize infeasible(S), ties random."""
    if not solutions:
        raise ValueError("pick_one needs at least one solution")
    if not explored or len(solutions) == 1:
        return rng.choice(list(solutions))
    if pool is not None and pool.parallel:
        _prefetch_scores(solutions, explored, checker, pool)
    scored: List[tuple] = []
    best = -1
    for solution in solutions:
        score = infeasible_score(solution, explored, checker)
        scored.append((score, solution))
        best = max(best, score)
    top = [s for score, s in scored if score == best]
    return rng.choice(top)


def pick_random(solutions: Sequence[Solution], explored: Sequence[Path],
                checker: ConstraintChecker, rng: random.Random,
                pool=None) -> Solution:
    """Ablation baseline: uniform random selection."""
    if not solutions:
        raise ValueError("pick_random needs at least one solution")
    return rng.choice(list(solutions))
