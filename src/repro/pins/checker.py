"""Checking constraints against candidate solutions.

The verification question per constraint is ``forall X. sigma(condition)
=> sigma(goal)``, decided by refutation: the constraint is *violated* iff
``sigma(condition) /\\ not-goal-disjunct`` is satisfiable for some
disjunct.  A satisfying model doubles as a concrete counterexample input
(Section 2.5), which ``solve`` adds to its test pool.

Three tiers:

* :meth:`ConstraintChecker.screen` — microsecond-scale concrete replay of
  a path on a test input (sound refutation, no solver);
* :meth:`ConstraintChecker.absint_screen` — abstract interpretation of
  the ground path condition through the reduced-product numeric domains;
  a ⊥ saturation proves the constraint holds, and a concretely-replayed
  witness sampled from a refined state proves it violated — both without
  the solver;
* :meth:`ConstraintChecker.check` — the full SMT check, answering
  ``holds`` / ``violated`` / ``unknown`` (unknown is treated optimistically
  by ``solve``; PINS output is validated post-hoc regardless).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs, smt
from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..concrete.interp import InterpError, run_path
from ..concrete.testgen import input_from_model
from ..lang import ast
from ..lang.ast import Pred, Sort
from ..symexec.paths import Path, substitute_items
from ..symexec.translate import TranslationError, Translator
from .constraints import Constraint
from .spec import SPEC_INDEX_VAR
from .template import Solution

HOLDS = "holds"
VIOLATED = "violated"
UNKNOWN = "unknown"

REPLAY_CONFIRMED = "confirmed"
REPLAY_SPURIOUS = "spurious"
REPLAY_FAILED = "failed"


@dataclass
class CheckOutcome:
    status: str
    counterexample: Optional[Dict[str, Any]] = None
    vacuous: bool = False
    via: str = "smt"
    """Which tier decided the outcome: "smt", "absint", or "fwdbwd"."""
    spurious_cex: bool = False
    """UNKNOWN downgraded from a VIOLATED whose counterexample the
    candidate *passes* concretely (axiom-incomplete model).  Positive
    replay evidence: solve() must not count it toward unknown-demotion."""
    downgraded: bool = False
    """UNKNOWN downgraded from a VIOLATED whose counterexample failed
    replay outright (extern model tables diverge from the concrete
    semantics).  Neither positive nor negative evidence about the
    candidate: solve() exempts it from unknown-demotion but routes the
    candidate through the concrete round-trip refuter before accepting
    it (:meth:`ConstraintChecker.concrete_roundtrip`)."""


@dataclass
class CheckerStats:
    smt_checks: int = 0
    smt_time: float = 0.0
    screens: int = 0
    sat_clauses_peak: int = 0
    absint_screens: int = 0
    absint_holds: int = 0
    absint_refutes: int = 0
    absint_infeasible: int = 0
    fwdbwd_screens: int = 0
    fwdbwd_holds: int = 0
    spurious_cex: int = 0
    replay_failed: int = 0
    """VIOLATED answers returned with a counterexample that could not be
    replayed concretely (the model may be axiom-incomplete).  With the
    region analysis on this must stay 0: unreplayable extern-bearing
    counterexamples are downgraded instead of returned."""
    replay_downgraded: int = 0
    """VIOLATED answers downgraded to UNKNOWN because their model's
    extern function tables diverge from the concrete semantics (replay
    fails) — solver incompleteness, not a refutation."""
    roundtrip_refuted: int = 0
    """Candidates refuted by the whole-program concrete round trip at
    acceptance time (a downgrade-riding candidate failed ``P ; P⁻¹``
    on a real test input)."""


class ConstraintChecker:
    """Checks constraints under candidate solutions for one benchmark."""

    def __init__(self, sorts: Mapping[str, Sort],
                 externs: ExternRegistry = EMPTY_REGISTRY,
                 axioms: Sequence[smt.Axiom] = (),
                 input_vars: Mapping[str, Sort] = (),
                 length_hints: Mapping[str, str] = (),
                 conflict_budget: int = 100_000,
                 lia_branch_limit: int = 120,
                 query_cache: Optional[object] = None,
                 absint: Optional[bool] = None,
                 budget: Optional[object] = None,
                 fwdbwd: Optional[bool] = None,
                 incremental: Optional[bool] = None,
                 regions: Optional[bool] = None,
                 inc_pool: Optional[object] = None):
        from ..analysis.absint import absint_enabled
        from ..analysis.fwdbwd import fwdbwd_enabled
        from ..analysis.regions import regions_enabled
        from ..smt.incremental import ContextPool, incremental_enabled

        self.sorts = dict(sorts)
        self.sorts.setdefault(SPEC_INDEX_VAR, Sort.INT)
        self.externs = externs
        self.axioms = tuple(axioms)
        self.input_vars = dict(input_vars or {})
        self.length_hints = dict(length_hints or {})
        self.conflict_budget = conflict_budget
        self.lia_branch_limit = lia_branch_limit
        self.query_cache = query_cache
        self.budget = budget
        """Optional :class:`repro.resil.Budget` handed to every solver
        this checker creates; exhausted queries answer ``unknown``."""
        self.absint = absint_enabled(absint)
        self.fwdbwd = fwdbwd_enabled(fwdbwd, self.absint)
        self.incremental = incremental_enabled(incremental)
        # An externally-owned ContextPool (a repro.serve worker sharing
        # warm contexts across jobs) wins over a fresh per-run pool; the
        # incremental switch still gates it so --no-incremental runs
        # stay one-shot even under a warm host.
        if not self.incremental:
            self._inc_pool = None
        elif inc_pool is not None:
            self._inc_pool = inc_pool
        else:
            self._inc_pool = ContextPool()
        self._inc_bases: Dict[int, Tuple[object, Tuple]] = {}
        """``id(constraint_or_path) -> (pinned source, base terms)``.  The
        source object is pinned so its id can never be recycled."""
        self.fwdbwd_report = None
        """Optional :class:`repro.analysis.fwdbwd.FwdBwdReport` attached
        by the PINS driver; consulted by pickOne's infeasibility score."""
        self.regions = regions_enabled(regions, self.fwdbwd)
        self.region_report = None
        """Optional :class:`repro.analysis.regions.RegionReport` attached
        by the PINS driver via :meth:`attach_region_report`."""
        self.guided_indices: Dict[str, Tuple[int, ...]] = {}
        """Finite reachable index sets per array (from the region
        report); handed to every solver for guided axiom instantiation.
        Empty whenever regions are off or every region is symbolic."""
        self.stats = CheckerStats()
        self._sat_cache: Dict[tuple, Tuple[str, Optional[smt.Model]]] = {}

        self._roundtrip: Optional[Tuple] = None

    def attach_region_report(self, report: object) -> None:
        """Attach a region report and derive the guided index sets."""
        self.region_report = report
        self.guided_indices = dict(report.guided_indices())

    def attach_roundtrip(self, program, template, spec,
                         precondition=None) -> None:
        """Arm the acceptance-time concrete round-trip refuter."""
        self._roundtrip = (program, template, spec, precondition)

    def concrete_roundtrip(self, solution: Solution,
                           tests: Sequence[Mapping[str, Any]]
                           ) -> Optional[Dict[str, Any]]:
        """First test input on which the candidate fails ``P ; P⁻¹``.

        Whole-program concrete execution with the *real* extern
        semantics — the path-based screen is vacuous on inputs that miss
        the explored paths, so a candidate riding on replay-downgrades
        (see :class:`CheckOutcome`) gets this path-independent check
        before acceptance.  A spec violation or an interpreter error on
        a precondition-satisfying input definitively refutes the
        candidate; inputs rejected by ``P``'s own assumes owe nothing.
        Returns the refuting input, or None when every test passes (or
        no refuter is armed).
        """
        if self._roundtrip is None:
            return None
        from ..concrete.interp import AssumeFailed, OutOfFuel
        from ..validate.roundtrip import round_trip_once

        program, template, spec, precondition = self._roundtrip
        try:
            inverse = template.instantiate(solution)
        except ValueError:
            return None
        for inputs in tests:
            if precondition is not None and not precondition(dict(inputs)):
                continue
            try:
                ok = round_trip_once(program, inverse, spec, inputs,
                                     self.externs)
            except AssumeFailed:
                continue
            except (OutOfFuel, InterpError):
                ok = False
            if not ok:
                self.stats.roundtrip_refuted += 1
                obs.count("analysis.regions.roundtrip_refuted")
                return dict(inputs)
        return None

    # -- SMT plumbing -------------------------------------------------------

    def _check_sat(self, preds: Sequence[Pred], want_model: bool,
                   inc_src: Optional[object] = None
                   ) -> Tuple[str, Optional[smt.Model]]:
        key = tuple(preds)
        cached = self._sat_cache.get(key)
        if cached is not None and (not want_model or cached[1] is not None
                                   or cached[0] != smt.SAT):
            return cached
        self.stats.smt_checks += 1
        start = time.perf_counter()
        translator = Translator(self.sorts, self.externs)
        guided = self.guided_indices if self.regions else None
        solver = smt.Solver(axioms=self.axioms,
                            sat_conflict_budget=self.conflict_budget,
                            lia_branch_limit=self.lia_branch_limit,
                            query_cache=self.query_cache,
                            budget=self.budget,
                            guided_indices=guided or None)
        incremental = False
        if self._inc_pool is not None and inc_src is not None:
            base = self._inc_base_terms(inc_src)
            if base and not guided:
                # Warm incremental contexts were built without the guided
                # instances; routing a guided query through one could
                # answer from a weaker formula set.
                solver.attach_incremental(self._inc_pool, base)
            incremental = True
        try:
            for pred in preds:
                solver.add(translator.pred(pred))
            # With incremental contexts off, call check() exactly as the
            # historical code did; status-only answers exist only behind
            # the REPRO_INCREMENTAL gate.
            status = (solver.check(want_model=want_model) if incremental
                      else solver.check())
        except TranslationError:
            raise
        except Exception:
            status = smt.UNKNOWN
        model = solver.model_if_available() if status == smt.SAT else None
        self.stats.smt_time += time.perf_counter() - start
        self.stats.sat_clauses_peak = max(self.stats.sat_clauses_peak,
                                          solver.stats.sat_clauses)
        result = (status, model)
        self._sat_cache[key] = result
        return result

    def _inc_base_terms(self, src: object) -> Tuple:
        """SMT terms of ``src.items``'s hole-free conjuncts (memoized).

        These conjuncts are identical across every candidate solution
        checked against ``src`` (substitution only rewrites hole items),
        and terms are hash-consed, so the tuple keys a warm incremental
        context shared by the whole query family.
        """
        entry = self._inc_bases.get(id(src))
        if entry is not None and entry[0] is src:
            return entry[1]
        from ..lang.ast import expr_unknowns
        from ..symexec.paths import Def, Guard

        def has_holes(item: object) -> bool:
            target = item.expr if isinstance(item, Def) else item.pred
            return bool(expr_unknowns(target))

        terms: Tuple = ()
        try:
            fixed = [it for it in src.items
                     if isinstance(it, (Def, Guard)) and not has_holes(it)]
            if fixed:
                ground = substitute_items(fixed, {}, {})
                translator = Translator(self.sorts, self.externs)
                terms = tuple(translator.pred(p) for p in ground)
        except Exception:
            terms = ()
        self._inc_bases[id(src)] = (src, terms)
        return terms

    def has_cached(self, preds: Sequence[Pred]) -> bool:
        """True when ``_check_sat`` on these preds would be a cache hit."""
        return tuple(preds) in self._sat_cache

    def prime(self, preds: Sequence[Pred],
              result: Tuple[str, Optional[smt.Model]]) -> None:
        """Seed the sat cache with a result computed elsewhere (a worker).

        ``setdefault`` keeps any entry the parent computed in the
        meantime — worker results never *replace* local ones, so priming
        cannot change what a serial run would have seen.
        """
        self._sat_cache.setdefault(tuple(preds), result)

    def _ground(self, constraint: Constraint, solution: Solution) -> List[Pred]:
        return substitute_items(constraint.items, solution.expr_map,
                                solution.pred_map)

    # -- full checks ------------------------------------------------------------

    def check(self, constraint: Constraint, solution: Solution) -> CheckOutcome:
        ground = self._ground(constraint, solution)
        if self.absint:
            screened = self.absint_screen(constraint, solution, ground)
            if screened is not None:
                return screened
        if self.fwdbwd:
            screened = self.fwdbwd_screen(constraint, solution, ground)
            if screened is not None:
                return screened
        if constraint.kind == "safepath":
            return self._check_safepath(constraint, solution, ground)
        return self._check_goal(constraint, solution, ground)

    # -- abstract screening (between concrete replay and full SMT) -------------

    def absint_screen(self, constraint: Constraint, solution: Solution,
                      ground: Optional[List[Pred]] = None
                      ) -> Optional[CheckOutcome]:
        """Decide a (constraint, solution) pair abstractly when possible.

        Saturates the ground path condition through the reduced-product
        domains (iterated forward–backward refinement).  Three sound
        answers, or None when the domains cannot decide and the full SMT
        check must run:

        * path condition refines to ⊥ — the constraint holds vacuously;
        * every negated goal disjunct refines the saturated state to ⊥ —
          the constraint holds;
        * a concrete witness sampled from a refined state *replays* to a
          spec violation — the constraint is violated, and the witness is
          a genuine counterexample input.
        """
        from ..analysis.absint import saturate
        from ..lang.transform import substitute_pred

        self.stats.absint_screens += 1
        if ground is None:
            ground = self._ground(constraint, solution)
        env = saturate(ground, self.sorts)
        if env is None:
            self.stats.absint_holds += 1
            return CheckOutcome(HOLDS, vacuous=True, via="absint")
        if constraint.kind == "safepath":
            assert constraint.spec is not None
            disjuncts = list(constraint.spec.negated_disjuncts(
                constraint.final_vmap))
        else:
            assert constraint.neg_goal is not None
            disjuncts = [substitute_pred(constraint.neg_goal,
                                         solution.expr_map,
                                         solution.pred_map)]
        open_envs = []
        for disjunct in disjuncts:
            # Seed from the already-saturated path state: env over-approximates
            # the models of ``ground``, so meeting the disjunct into it (then
            # re-sweeping the path facts) stays sound and skips re-deriving
            # the whole SSA chain from TOP for every disjunct.
            denv = saturate(list(ground) + [disjunct], self.sorts,
                            env=env, rounds=2)
            if denv is not None:
                open_envs.append(denv)
        if not open_envs:
            self.stats.absint_holds += 1
            return CheckOutcome(HOLDS, via="absint")
        if constraint.kind == "safepath":
            for denv in open_envs[:3]:
                witness = self._abstract_witness(constraint, solution, denv)
                if witness is not None:
                    self.stats.absint_refutes += 1
                    return CheckOutcome(VIOLATED, counterexample=witness,
                                        via="absint")
        return None

    def _default_cell(self, array: str) -> int:
        """Default cell value for completing an array witness."""
        if self.region_report is not None:
            return self.region_report.default_cell(array)
        return 0

    def _abstract_witness(self, constraint: Constraint, solution: Solution,
                          denv) -> Optional[Dict[str, Any]]:
        """Try to turn a refined abstract state into a concrete refutation.

        Samples one representative version-0 value per integer variable
        from ``denv``, replays the path concretely, and checks the spec.
        Deterministic, solver-free; None when the sample does not witness
        a violation.
        """
        from ..concrete.values import ConcreteArray

        inputs: Dict[str, Any] = {}
        for name, sort in sorted(self.sorts.items()):
            if name == SPEC_INDEX_VAR:
                continue
            if sort is not Sort.INT:
                # Non-relational domains say nothing about array contents,
                # but the witness must be a *complete* input (preconditions
                # and test replay expect every variable).  The region
                # analysis picks the default cell: the low end of the
                # array's axiom-derived value range, so the completion
                # satisfies range preconditions instead of assuming zero
                # is always in range.
                inputs[name] = ConcreteArray(default=self._default_cell(name))
                continue
            val = denv.get(f"{name}#0")
            pick = val.as_const()
            if pick is None:
                iv = val.interval
                if iv.contains(0):
                    pick = 0
                elif iv.lo is not None:
                    pick = iv.lo
                elif iv.hi is not None:
                    pick = iv.hi
                else:
                    pick = 0
                # Snap onto the congruence class if one is known.
                if not val.contains(pick):
                    cong = val.congruence
                    if cong.modulus > 0:
                        pick += (cong.rem - pick) % cong.modulus
                    if not val.contains(pick):
                        return None
            inputs[name] = pick
        assert constraint.spec is not None
        try:
            env = run_path(constraint.items, inputs, self.sorts, self.externs,
                           solution.expr_map, solution.pred_map)
        except InterpError:
            return None
        if env is None:
            return None  # sample does not follow the path
        if constraint.spec.check_env(env, constraint.final_vmap):
            return None  # spec satisfied on this sample
        return inputs

    # -- linear screening (backward goal folding + Fourier–Motzkin) ------------

    def _is_int_var(self, name: str) -> bool:
        return self.sorts.get(name.rsplit("#", 1)[0]) is Sort.INT

    def fwdbwd_screen(self, constraint: Constraint, solution: Solution,
                      ground: Optional[List[Pred]] = None
                      ) -> Optional[CheckOutcome]:
        """Decide a (constraint, solution) pair by linear reasoning.

        Two sound HOLDS-only deciders, or None for the full SMT check:

        * *backward goal folding* — the path's SSA definitions compose
          into affine forms and the negated goal folds to ``False`` for
          every input (ranking deltas like ``rank^V - rank^0 = -1``);
        * *linear refutation* — bounded Fourier–Motzkin over the ground
          path condition (plus the negated goal, for termination and
          invariant constraints) proves it has no model; for a safepath
          constraint that is exactly the vacuous-HOLDS answer SMT would
          give.

        Only HOLDS is ever answered, never VIOLATED or UNKNOWN: a HOLDS
        carries no counterexample and learns no clause, so screening here
        is *trajectory-safe* — the synthesis run visits the same
        candidates in the same order and stabilises on bit-identical
        inverses with the screen on or off.  (A cheaper-than-SMT witness
        refutation would change which counterexample generalises into
        learned clauses and shift the whole trajectory.)  Proven-UNSAT
        queries are primed into the SAT-result cache with exactly the
        entry the solver would have stored, so later feasibility probes
        on the same ground still hit.
        """
        from ..analysis.fwdbwd import fold_goal
        from ..analysis.linear import linear_unsat
        from ..lang.transform import substitute_pred

        self.stats.fwdbwd_screens += 1
        if ground is None:
            ground = self._ground(constraint, solution)
        if constraint.kind == "safepath":
            if linear_unsat(ground, self._is_int_var):
                self.stats.fwdbwd_holds += 1
                self.prime(ground, (smt.UNSAT, None))
                return CheckOutcome(HOLDS, vacuous=True, via="fwdbwd")
            return None
        if constraint.neg_goal is None:
            return None
        neg_goal = substitute_pred(constraint.neg_goal, solution.expr_map,
                                   solution.pred_map)
        if fold_goal(constraint.items, neg_goal, solution.expr_map) is False:
            self.stats.fwdbwd_holds += 1
            return CheckOutcome(HOLDS, via="fwdbwd")
        query = list(ground) + [neg_goal]
        if linear_unsat(query, self._is_int_var):
            self.stats.fwdbwd_holds += 1
            self.prime(query, (smt.UNSAT, None))
            return CheckOutcome(HOLDS, via="fwdbwd")
        return None

    def _check_safepath(self, constraint: Constraint, solution: Solution,
                        ground: List[Pred]) -> CheckOutcome:
        assert constraint.spec is not None
        status, _ = self._check_sat(ground, want_model=False,
                                    inc_src=constraint)
        if status == smt.UNSAT:
            return CheckOutcome(HOLDS, vacuous=True)
        saw_unknown = status == smt.UNKNOWN
        saw_spurious = False
        saw_downgraded = False
        for disjunct in constraint.spec.negated_disjuncts(constraint.final_vmap):
            d_status, model = self._check_sat(ground + [disjunct],
                                              want_model=True,
                                              inc_src=constraint)
            if d_status == smt.SAT:
                counterexample = None
                if model is not None:
                    # Full version-0 environment: includes the junk values
                    # of uninitialized template variables the violation may
                    # depend on (the spec quantifies over all of X).
                    from ..concrete.testgen import env_inputs_from_model

                    counterexample = env_inputs_from_model(model)
                replay = (self._replay_counterexample(constraint, solution,
                                                      counterexample)
                          if counterexample is not None else REPLAY_CONFIRMED)
                if replay == REPLAY_SPURIOUS:
                    # The model satisfies the query only because a needed
                    # axiom instance was never generated (e.g. the
                    # Pythagorean identity on a term shape outside the
                    # instantiation rounds): under the *real* extern
                    # semantics the same input follows the path and meets
                    # the spec.  That is solver incompleteness, not a
                    # refutation — fall through to the optimistic UNKNOWN.
                    self.stats.spurious_cex += 1
                    obs.count("checker.spurious_cex")
                    saw_spurious = True
                    continue
                if replay == REPLAY_FAILED:
                    if self.regions and self._has_extern_app(ground):
                        # The model's uninterpreted extern tables diverge
                        # from the concrete semantics badly enough that
                        # the witness does not even follow its own path.
                        # Nothing about the candidate has been refuted;
                        # keeping the VIOLATED would block it on garbage
                        # and poison the test pool (this is exactly how
                        # lzw used to end in no_solution).
                        self.stats.replay_downgraded += 1
                        obs.count("analysis.regions.downgraded")
                        saw_downgraded = True
                        continue
                    # Regions off (or no externs to blame): historical
                    # behaviour — the model may still witness a genuine
                    # bug the partial input extraction cannot reproduce.
                    self.stats.replay_failed += 1
                    obs.count("analysis.regions.replay_failed")
                return CheckOutcome(VIOLATED, counterexample=counterexample)
            if d_status == smt.UNKNOWN:
                saw_unknown = True
        if saw_unknown or saw_spurious or saw_downgraded:
            return CheckOutcome(UNKNOWN, spurious_cex=saw_spurious
                                and not saw_unknown and not saw_downgraded,
                                downgraded=saw_downgraded)
        return CheckOutcome(HOLDS)

    def _has_extern_app(self, preds: Sequence[Pred]) -> bool:
        """True when any pred applies a registered extern function."""
        names = set(self.externs.names())
        if not names:
            return False
        for pred in preds:
            for sub in ast.walk_exprs(pred):
                if isinstance(sub, ast.FunApp) and sub.name in names:
                    return True
        return False

    def _replay_counterexample(self, constraint: Constraint,
                               solution: Solution,
                               inputs: Mapping[str, Any]) -> str:
        """Classify an SMT counterexample by concrete replay.

        Replays the path on the model's inputs with the concrete extern
        implementations:

        * :data:`REPLAY_SPURIOUS` — the input follows the path *and*
          satisfies the spec: the model is provably axiom-incomplete;
        * :data:`REPLAY_FAILED` — the input cannot be replayed
          (abstract values) or diverges from the path: the model's
          function tables disagree with the concrete semantics;
        * :data:`REPLAY_CONFIRMED` — the replay reproduces the spec
          violation: a genuine counterexample.
        """
        assert constraint.spec is not None
        try:
            env = run_path(constraint.items, inputs, self.sorts, self.externs,
                           solution.expr_map, solution.pred_map)
        except InterpError:
            return REPLAY_FAILED
        if env is None:
            return REPLAY_FAILED
        if constraint.spec.check_env(env, constraint.final_vmap):
            return REPLAY_SPURIOUS
        return REPLAY_CONFIRMED

    def _check_goal(self, constraint: Constraint, solution: Solution,
                    ground: List[Pred]) -> CheckOutcome:
        assert constraint.neg_goal is not None
        from ..concrete.testgen import env_inputs_from_model
        from ..lang.transform import substitute_pred

        neg_goal = substitute_pred(constraint.neg_goal, solution.expr_map,
                                   solution.pred_map)
        status, model = self._check_sat(ground + [neg_goal], want_model=True,
                                        inc_src=constraint)
        if status == smt.SAT:
            env = env_inputs_from_model(model) if model is not None else None
            return CheckOutcome(VIOLATED, counterexample=env)
        if status == smt.UNKNOWN:
            return CheckOutcome(UNKNOWN)
        return CheckOutcome(HOLDS)

    # -- fast concrete screening ---------------------------------------------------

    def screen(self, constraint: Constraint, solution: Solution,
               inputs: Mapping[str, Any]) -> bool:
        """True if the solution survives this test input (or is vacuous)."""
        if constraint.kind != "safepath":
            return True
        assert constraint.spec is not None
        self.stats.screens += 1
        try:
            env = run_path(constraint.items, inputs, self.sorts, self.externs,
                           solution.expr_map, solution.pred_map)
        except InterpError:
            return True  # cannot replay (e.g. abstract values); not a refutation
        if env is None:
            return True  # input does not follow this path: vacuous
        return constraint.spec.check_env(env, constraint.final_vmap)

    # -- path feasibility (pickOne's infeasible(S)) ------------------------------

    def path_infeasible(self, path: Path, solution: Solution) -> bool:
        ground = substitute_items(path.items, solution.expr_map, solution.pred_map)
        if self.absint:
            from ..analysis.absint import preds_unsat

            if preds_unsat(ground, self.sorts):
                self.stats.absint_infeasible += 1
                obs.count("checker.absint_infeasible")
                return True
        status, _ = self._check_sat(ground, want_model=False, inc_src=path)
        return status == smt.UNSAT

    def concrete_input_for_path(self, path: Path, solution: Solution
                                ) -> Optional[Dict[str, Any]]:
        """A concrete input driving execution down ``path`` (Section 2.5)."""
        ground = substitute_items(path.items, solution.expr_map, solution.pred_map)
        status, model = self._check_sat(ground, want_model=True, inc_src=path)
        if status != smt.SAT or model is None or not self.input_vars:
            return None
        return input_from_model(model, self.input_vars, self.length_hints)
