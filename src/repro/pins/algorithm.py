"""Algorithm 1: the PINS main loop.

::

    F := {};  C := terminate(P)
    while true:
        sols := solve(C, Phi_p, Phi_e, m)
        if sols = {}:            return NoSolution
        if stabilized(sols, m):  return sols
        S := pickOne(sols)
        (f, V') := symbolically execute P guided by S, avoiding F
        F := F + {f};  C := C + safepath(f, V', spec)

Instrumentation mirrors the paper's Tables 2 and 4: iteration counts,
search-space size, wall-clock split across symbolic execution / SMT
reduction / SAT solving / pickOne, and the size of the SAT formulas.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..concrete.testgen import freeze_input
from ..lang import ast
from ..lang.transform import compose, desugar_program
from ..resil import BudgetExhausted, resolve_budget
from ..resil.faults import install_plan, resolve_fault_plan
from ..symexec.executor import ExecConfig, SymbolicExecutor
from ..symexec.paths import Path
from .checker import ConstraintChecker
from .constraints import Constraint, safepath
from .pickone import pick_one, pick_random
from .solve import RANK_PREFIX, SolveSession, SolveStats, solve
from .spec import InversionSpec
from .task import SynthesisTask
from .template import HoleSpace, Solution, SynthesisTemplate
from .termination import (
    derive_ranking_candidates,
    init_constraints,
    invariant_hole_name,
    rank_hole_name,
    template_loops,
    terminate,
)

NO_SOLUTION = "no_solution"
STABILIZED = "stabilized"
PATHS_EXHAUSTED = "paths_exhausted"
MAX_ITERATIONS = "max_iterations"
BUDGET_EXHAUSTED = "budget_exhausted"


@dataclass
class PinsConfig:
    """Tunables for a PINS run; defaults follow the paper (m = 10)."""

    m: int = 10
    max_iterations: int = 30
    seed: int = 0
    initial_tests: int = 6
    use_infeasible_heuristic: bool = True
    max_unroll: Optional[int] = None  # None: take the task's setting
    max_backtracks: int = 20000
    solver_conflict_budget: int = 100_000
    max_candidates_per_solve: int = 50_000
    static_pruning: Optional[bool] = None
    """Use the dataflow analyses to shrink hole candidate sets and skip
    statically-infeasible symexec branches.  ``None`` defers to the
    ``REPRO_STATIC_PRUNING`` env var (default: enabled)."""
    absint: Optional[bool] = None
    """Use the abstract-interpretation layer: ⊥-guard pruning in the
    symbolic executor, the abstract constraint screen in the checker, and
    abstract path-infeasibility in pickOne.  ``None`` defers to the
    ``REPRO_ABSINT`` env var, which itself defaults to the static-pruning
    setting (so fully-unpruned baselines stay unpruned)."""
    fwdbwd: Optional[bool] = None
    """Use the forward-backward unknowns analysis: statically refute
    hole candidates (and candidate pairs) as SAT unit clauses before
    CDCL ever runs, screen constraint checks with the linear
    fold / Fourier–Motzkin engine (HOLDS-only, so the synthesis
    trajectory is bit-identical), and let pickOne consult the per-hole
    feasible sets.  ``None`` defers to the ``REPRO_FWDBWD`` env var,
    which itself follows the absint switch (so fully-unpruned baselines
    stay unpruned)."""
    regions: Optional[bool] = None
    """Use the array-region / loop-bound analysis: guided axiom
    instantiation over finite index regions, downgrading of VIOLATED
    answers whose counterexample cannot be replayed concretely
    (axiom-incomplete extern models), region-derived default cells for
    abstract witnesses, and out-of-region candidate refutation seeded as
    SAT unit clauses.  ``None`` defers to the ``REPRO_REGIONS`` env var,
    which itself follows the fwdbwd switch (so fully-unpruned baselines
    stay unpruned)."""
    trace: Optional[str] = None
    """Write a JSONL observability trace of this run to the given path
    (appending).  ``None`` defers to the ``REPRO_TRACE`` env var; when
    neither is set the no-op recorder is used and tracing costs nothing.
    See :mod:`repro.obs`."""
    jobs: Optional[int] = None
    """Worker processes for independent SMT probes (constraint checks,
    pickOne scoring, avoid-set feasibility).  ``None`` defers to the
    ``REPRO_JOBS`` env var; 1 (the default) runs fully serial.  Parallel
    runs are bit-identical to serial ones — results are folded in
    submission order (DESIGN.md §10)."""
    workers: Optional[str] = None
    """Worker strategy when ``jobs > 1``: ``"persistent"`` forks one
    long-lived fleet per run (workers keep their interned term graph,
    warm incremental SMT contexts, and query-cache memory tier across
    iterations), ``"fork"`` forks a fresh pool per iteration (the
    historical behaviour), ``"serial"`` disables the pool regardless of
    ``jobs``.  ``None`` defers to the ``REPRO_WORKERS`` env var
    (default: ``"fork"``).  All strategies produce bit-identical
    results; only wall time differs."""
    incremental: Optional[bool] = None
    """Use assumption-based incremental SMT contexts: the checker keeps
    a warm solver per query family (shared hole-free base) and answers
    each candidate query by asserting only the delta under a fresh
    assumption literal, retaining learned clauses and theory lemmas
    across queries.  Status-only: any query needing a model still runs
    the one-shot path, so counterexamples — and hence the synthesis
    trajectory and inverse digests — are bit-identical with the feature
    on or off.  ``None`` defers to the ``REPRO_INCREMENTAL`` env var
    (default: enabled)."""
    query_cache: Optional[str] = None
    """SMT query-result cache spec: ``"mem"`` for the in-memory tier
    only, a file/directory path to add the on-disk JSONL tier for
    cross-run reuse, ``"0"`` to disable.  ``None`` defers to the
    ``REPRO_QUERY_CACHE`` env var (default: disabled).  Cached ``sat``
    answers re-verify their model against the live query before being
    served; ``unknown`` is never cached.  See :mod:`repro.perf.cache`."""
    budget: Optional[object] = None
    """Resource budget for the whole run: a :class:`repro.resil.Budget`,
    a spec string like ``"wall=2.5;smt=500;sat=100000;paths=50"``, or
    ``None`` to defer to the ``REPRO_BUDGET`` env var (default:
    unbudgeted).  On exhaustion the run degrades to the best solution
    set seen so far with status ``budget_exhausted`` — it never raises
    out of :func:`run_pins`.  See :mod:`repro.resil.budget`."""
    faults: Optional[object] = None
    """Deterministic fault-injection plan: a
    :class:`repro.resil.faults.FaultPlan`, a spec string like
    ``"smt.timeout@3;pool.worker_crash@1"``, or ``None`` to defer to the
    ``REPRO_FAULTS`` env var (default: no injection).  Installed for the
    run's duration with per-site hit counters starting at zero, then
    the previously active plan (if any) is restored."""
    pool_task_timeout: Optional[float] = None
    """Seconds a parallel probe may run before the worker pool declares
    its worker wedged and degrades the whole batch to serial
    re-execution.  ``None`` defers to the ``REPRO_POOL_TIMEOUT`` env
    var (default: no timeout — matching pre-resilience behaviour)."""
    demote_unknowns: Optional[int] = 3
    """Demote (non-persistently block) a candidate after this many
    UNKNOWN constraint checks, so repeated SMT timeouts on a single
    candidate cannot wedge ``solve()`` forever.  ``None`` disables
    demotion."""
    inc_context_pool: Optional[object] = None
    """An externally-owned :class:`repro.smt.incremental.ContextPool`
    for the run's checker to draw warm incremental contexts from.  A
    long-lived host (a ``repro.serve`` worker) passes the same pool to
    every run so contexts — and the lemmas they retain — survive across
    jobs; ``None`` (the default) gives each run a fresh pool.  Ignored
    when ``incremental`` resolves to off."""


@dataclass
class PinsStats:
    iterations: int = 0
    paths_explored: int = 0
    search_space_log2: float = 0.0
    num_solutions: int = 0
    tests_generated: int = 0
    time_symexec: float = 0.0
    time_smt_reduction: float = 0.0
    time_sat: float = 0.0
    time_pickone: float = 0.0
    time_total: float = 0.0
    sat_vars: int = 0
    sat_clauses: int = 0
    candidates_tried: int = 0
    blocked_by_screen: int = 0
    blocked_by_check: int = 0
    indicators_pruned: int = 0
    symexec_smt_calls: int = 0
    symexec_const_prunes: int = 0
    symexec_absint_prunes: int = 0
    absint_screen_holds: int = 0
    absint_screen_refutes: int = 0
    fwdbwd_screen_holds: int = 0
    fwdbwd_units_refuted: int = 0
    fwdbwd_pairs_refuted: int = 0
    regions_units_refuted: int = 0
    regions_loops_bounded: int = 0
    checker_smt_checks: int = 0
    smt_cache_hits: int = 0
    smt_cache_misses: int = 0
    candidates_demoted: int = 0
    budget_exhausted: str = ""
    """Reason the run's budget tripped (e.g. ``"wall"``, ``"smt"``);
    empty when the run completed within budget (or had none)."""

    def breakdown(self) -> Dict[str, float]:
        """Fractions of total time per phase (Table 4)."""
        total = max(self.time_total, 1e-9)
        return {
            "symexec": self.time_symexec / total,
            "smt_reduction": self.time_smt_reduction / total,
            "sat": self.time_sat / total,
            "pickone": self.time_pickone / total,
        }


class StatsInconsistency(AssertionError):
    """A :class:`PinsStats` field disagrees with the obs counter it is
    supposed to mirror (the two are updated at distinct call sites)."""


STATS_COUNTER_MAP = (
    ("iterations", "pins.iteration"),
    ("paths_explored", "pins.path"),
    ("candidates_tried", "solve.candidate"),
    ("blocked_by_screen", "solve.blocked_screen"),
    ("blocked_by_check", "solve.blocked_check"),
    ("symexec_smt_calls", "symexec.smt_query"),
    ("symexec_const_prunes", "symexec.const_prune"),
    ("symexec_absint_prunes", "symexec.absint_prune"),
    ("absint_screen_holds", "solve.absint_hold"),
    ("absint_screen_refutes", "solve.absint_refute"),
    ("fwdbwd_screen_holds", "solve.fwdbwd_hold"),
    ("fwdbwd_units_refuted", "analysis.fwdbwd.units_refuted"),
    ("fwdbwd_pairs_refuted", "analysis.fwdbwd.pairs_refuted"),
    ("regions_units_refuted", "analysis.regions.units_refuted"),
    ("regions_loops_bounded", "analysis.regions.loops_bounded"),
    ("candidates_demoted", "solve.demoted"),
)
"""(PinsStats attribute, obs counter name) pairs that must agree at the
end of a run: the left side is accumulated by the legacy stats plumbing,
the right side by the obs instrumentation."""


def check_stats_invariants(stats: PinsStats, metrics: obs.Metrics) -> None:
    """Assert that ``stats`` is consistent with the run's obs counters.

    Runs automatically at the end of :func:`run_pins` whenever tracing is
    enabled (``REPRO_TRACE`` / ``PinsConfig.trace``), so any counter drift
    between the two accounting paths fails loudly instead of silently
    skewing the experiment tables.  Raises :class:`StatsInconsistency`.
    """
    for attr, counter in STATS_COUNTER_MAP:
        expected = metrics.counter(counter)
        actual = getattr(stats, attr)
        if actual != expected:
            raise StatsInconsistency(
                f"PinsStats.{attr} = {actual} but obs counter "
                f"{counter!r} = {expected}")
    blocked = stats.blocked_by_screen + stats.blocked_by_check
    if stats.candidates_tried < blocked:
        raise StatsInconsistency(
            f"candidates_tried = {stats.candidates_tried} < blocked "
            f"candidates {blocked}")
    phase_sum = (stats.time_symexec + stats.time_smt_reduction
                 + stats.time_sat + stats.time_pickone)
    if phase_sum > stats.time_total * 1.01 + 1e-6:
        raise StatsInconsistency(
            f"phase times sum to {phase_sum:.6f}s, exceeding total "
            f"{stats.time_total:.6f}s")


@dataclass
class PinsResult:
    status: str
    task: SynthesisTask
    template: SynthesisTemplate
    solutions: List[Solution]
    explored: List[Path]
    tests: List[Dict[str, Any]]
    stats: PinsStats
    metrics: Optional[obs.Metrics] = None
    """The run's raw observability aggregate (always present for runs
    made through :func:`run_pins`); ``stats`` is derived from it."""

    def inverse_programs(self) -> List[ast.Program]:
        return [self.template.instantiate(s) for s in self.solutions]

    def inverse_digest(self) -> str:
        """sha256 over the pretty-printed inverse programs (sorted).

        Sorted so the digest identifies the *set* of synthesized
        inverses; two runs agree iff they stabilized to identical
        programs.  This is the digest the bench harness records and the
        golden-baseline tests pin.
        """
        import hashlib

        from ..lang.pretty import pretty_program

        texts = sorted(pretty_program(p) for p in self.inverse_programs())
        return hashlib.sha256("\n===\n".join(texts).encode()).hexdigest()

    @property
    def succeeded(self) -> bool:
        return bool(self.solutions)


def build_template(task: SynthesisTask,
                   static_pruning: Optional[bool] = None) -> SynthesisTemplate:
    """Assemble the hole space (including ranking holes) for a task.

    With static pruning enabled (the default; see
    :func:`repro.analysis.prune.static_pruning_enabled`), the dataflow
    analyses drop per-hole candidates that read undefined scalars or
    cannot be well-sorted at any of the hole's sites, shrinking the SAT
    indicator space before ``solve()`` ever runs.
    """
    from ..analysis.prune import prune_hole_space, static_pruning_enabled

    composed = compose(task.program, task.inverse)
    desugared = desugar_program(composed)
    extern_sorts = {name: task.externs.get(name).result_sort
                    for name in task.externs.names()}
    space = HoleSpace.build(
        task.inverse.body, task.phi_e, task.phi_p,
        expr_overrides=task.expr_overrides,
        pred_overrides=task.pred_overrides,
        max_pred_conj=task.max_pred_conj,
        decls=desugared.decls,
        extern_sorts=extern_sorts,
    )
    prune_report = None
    if static_pruning_enabled(static_pruning):
        entry_defined = (frozenset(task.program.inputs)
                         | ast.assigned_vars(task.program.body))
        space, prune_report = prune_hole_space(
            space, task.inverse.body, desugared.decls,
            extern_sorts=task.externs, entry_defined=entry_defined)
    ranks = derive_ranking_candidates(task.phi_p)
    rank_holes = {}
    inv_holes = {}
    for loop_id, _guard, _body in template_loops(desugared.body):
        rname = rank_hole_name(loop_id)
        cands = tuple(task.rank_overrides.get(rname, ranks))
        if not cands:
            cands = (ast.n(0),)
        rank_holes[rname] = cands
        iname = invariant_hole_name(loop_id)
        inv_holes[iname] = tuple(task.pred_overrides.get(iname, task.phi_p))
    return SynthesisTemplate(task.program, task.inverse,
                             space.with_rank_holes(rank_holes, inv_holes),
                             prune_report=prune_report)


def run_pins(task: SynthesisTask, config: Optional[PinsConfig] = None) -> PinsResult:
    """Run PINS on a synthesis task.

    Each run is wrapped in a ``pins.run`` observability span; a JSONL
    trace recorder is installed for the run's duration when
    ``config.trace`` is set (or ``REPRO_TRACE``, unless a recorder is
    already active — e.g. one installed by the benchmark harness).
    """
    config = config or PinsConfig()
    restore: Optional[obs.Recorder] = None
    run_recorder: Optional[obs.JsonlRecorder] = None
    if config.trace:
        run_recorder = obs.JsonlRecorder(config.trace)
        restore = obs.set_recorder(run_recorder)
    elif not obs.tracing_enabled():
        run_recorder = obs.recorder_from_env()
        if run_recorder is not None:
            restore = obs.set_recorder(run_recorder)
    # Each run gets a fresh fault plan (hit counters at zero) so the
    # same spec injects at the same sites on every run; a plan someone
    # installed directly (e.g. a test) is left alone when no spec is
    # configured, and restored afterwards when one is.
    fault_plan = resolve_fault_plan(config.faults)
    prev_plan = install_plan(fault_plan) if fault_plan is not None else None
    metrics = obs.Metrics()
    try:
        with obs.use_metrics(metrics), obs.span("pins.run"):
            return _run_pins(task, config, metrics)
    finally:
        if fault_plan is not None:
            install_plan(prev_plan)
        if restore is not None:
            obs.set_recorder(restore)
            assert run_recorder is not None
            run_recorder.close()


def _run_pins(task: SynthesisTask, config: PinsConfig,
              metrics: obs.Metrics) -> PinsResult:
    from ..perf import (PerfContext, PersistentWorkerPool, WorkerPool,
                        query_cache_for, resolve_jobs, resolve_workers)

    rng = random.Random(config.seed)
    started = time.perf_counter()
    budget = resolve_budget(config.budget)
    if budget is not None:
        budget.start()

    with obs.span("pins.setup"):
        composed = compose(task.program, task.inverse)
        desugared = desugar_program(composed)
        template = build_template(task, static_pruning=config.static_pruning)
        spec = task.derived_spec(desugared.decls)

        query_cache = query_cache_for(config.query_cache, task.cache_slug())
        input_vars = {v: desugared.decls[v] for v in task.program.inputs}
        length_hints = {arr: ln for arr, _out, ln in spec.array_pairs}
        absint_on = config.absint
        if absint_on is None and config.static_pruning is not None:
            # An explicit static-pruning override cascades to absint so
            # `static_pruning=False` yields a fully-unpruned baseline.
            absint_on = config.static_pruning
        checker = ConstraintChecker(
            desugared.decls, task.externs, task.axioms + task.input_axioms,
            input_vars=input_vars, length_hints=length_hints,
            conflict_budget=config.solver_conflict_budget,
            query_cache=query_cache,
            absint=absint_on,
            fwdbwd=config.fwdbwd,
            budget=budget,
            incremental=config.incremental,
            regions=config.regions,
            inc_pool=config.inc_context_pool,
        )
        constraints: List[Constraint] = terminate(desugared.body, desugared.decls)
        session = SolveSession(template.space, prune_report=template.prune_report)
        stats = PinsStats(search_space_log2=template.space.log2_size())
        solve_stats = SolveStats()
        if template.prune_report is not None:
            solve_stats.indicators_pruned = template.prune_report.indicators_removed

        if checker.fwdbwd:
            from ..analysis.fwdbwd import analyze_unknowns

            with obs.span("analysis.fwdbwd"):
                fb_report = analyze_unknowns(task.program, task.inverse,
                                             template.space, spec,
                                             desugared.decls)
            template.fwdbwd_report = fb_report
            checker.fwdbwd_report = fb_report
            # Statically refuted candidates/pairs become unit/binary
            # clauses the CDCL loop can never revisit.
            enum = session.enumerator
            units = fb_report.refuted_units()
            pair_refs = fb_report.refuted_pairs()
            for hole, idx in units:
                session.persistent_clauses.append([-enum.var_of[(hole, idx)]])
            for (hole_a, idx_a), (hole_b, idx_b) in pair_refs:
                session.persistent_clauses.append(
                    [-enum.var_of[(hole_a, idx_a)],
                     -enum.var_of[(hole_b, idx_b)]])
            obs.count("analysis.fwdbwd.units_refuted", len(units))
            obs.count("analysis.fwdbwd.pairs_refuted", len(pair_refs))
            stats.fwdbwd_units_refuted = len(units)
            stats.fwdbwd_pairs_refuted = len(pair_refs)

        if checker.regions:
            from ..analysis.regions import analyze_task, refute_out_of_region

            with obs.span("analysis.regions"):
                region_report = analyze_task(task)
            checker.attach_region_report(region_report)
            # Candidates whose constant select index provably exits every
            # allocated region become unit blocking clauses, exactly like
            # the fwdbwd refutations above.
            enum = session.enumerator
            region_units = refute_out_of_region(template.space, region_report)
            for hole, idx in region_units:
                session.persistent_clauses.append([-enum.var_of[(hole, idx)]])
            obs.count("analysis.regions.units_refuted", len(region_units))
            obs.count("analysis.regions.loops_bounded",
                      region_report.bounded_loops())
            stats.regions_units_refuted = len(region_units)
            stats.regions_loops_bounded = region_report.bounded_loops()
            # Arm the acceptance-time concrete round-trip refuter for
            # candidates that ride on replay-failure downgrades (only
            # reachable when a downgrade actually happened, so the
            # trajectory elsewhere is untouched).
            checker.attach_roundtrip(task.program, template, spec,
                                     task.precondition)

        tests: List[Dict[str, Any]] = []
        seen = set()
        for candidate in task.initial_inputs:
            key = freeze_input(candidate)
            if key not in seen:
                seen.add(key)
                tests.append(dict(candidate))
        if task.input_gen is not None:
            for _ in range(config.initial_tests * 3):
                if len(tests) >= config.initial_tests + len(task.initial_inputs):
                    break
                candidate = task.input_gen(rng)
                key = freeze_input(candidate)
                if key not in seen:
                    seen.add(key)
                    tests.append(candidate)

        exec_config = ExecConfig(
            max_unroll=config.max_unroll if config.max_unroll is not None else task.max_unroll,
            max_backtracks=config.max_backtracks,
            solver_conflict_budget=config.solver_conflict_budget,
            const_pruning=config.static_pruning,
            absint=absint_on,
            budget=budget,
        )
        # The executor co-simulates the (growing) test pool for fast
        # feasibility checks; `tests` is shared by reference on purpose.
        executor = SymbolicExecutor(desugared, task.externs,
                                    task.axioms + task.input_axioms, exec_config,
                                    seed_inputs=tests,
                                    query_cache=query_cache)

    explored: List[Path] = []
    chooser = pick_one if config.use_infeasible_heuristic else pick_random
    last_size: Optional[int] = None
    status = MAX_ITERATIONS
    solutions: List[Solution] = []
    best_solutions: List[Solution] = []
    jobs = resolve_jobs(config.jobs)
    workers = resolve_workers(config.workers)
    if workers == "serial":
        jobs = 1
    pool = None
    persistent: Optional[PersistentWorkerPool] = None
    if workers == "persistent" and jobs > 1:
        # One warm fleet for the whole run: forked here (inheriting the
        # caches built during setup), fed snapshot deltas via sync()
        # before each iteration's batches.  If warm-up degrades the
        # fleet, the run stays serial — no mid-run refork.
        persistent = PersistentWorkerPool(jobs, PerfContext(
            checker=checker, oracle=executor.oracle,
            constraints=constraints, explored=explored),
            task_timeout=config.pool_task_timeout)

    try:
        for _ in range(config.max_iterations):
            if budget is not None:
                budget.check()  # wall deadline; handled as best-so-far below
            if persistent is not None:
                if query_cache is not None:
                    query_cache.refresh()
                persistent.sync(constraints, explored)
                pool = persistent if persistent.parallel else None
                executor.attach_pool(pool)
            elif jobs > 1:
                # A fresh pool per iteration: workers inherit the current
                # constraints/explored lists and every cache the parent
                # has accumulated (checker sat cache, oracle cache, query
                # cache — refreshed first so earlier workers' disk-tier
                # stores are visible) by copy-on-write.  Tasks then ship
                # only indices and candidate solutions.
                if query_cache is not None:
                    query_cache.refresh()
                pool = WorkerPool(jobs, PerfContext(
                    checker=checker, oracle=executor.oracle,
                    constraints=constraints, explored=explored),
                    task_timeout=config.pool_task_timeout)
                executor.attach_pool(pool)
            with obs.span("pins.iteration"):
                stats.iterations += 1
                obs.count("pins.iteration")
                with obs.span("pins.solve"):
                    solutions = solve(session, constraints, checker, tests,
                                      config.m, solve_stats,
                                      max_candidates=config.max_candidates_per_solve,
                                      precondition=task.precondition,
                                      pool=pool, budget=budget,
                                      demote_unknowns=config.demote_unknowns)
                obs.observe("pins.solutions", len(solutions))
                if solutions:
                    best_solutions = list(solutions)
                if budget is not None and budget.exhausted:
                    # solve() returned a partial (possibly empty) set
                    # because the budget tripped mid-loop: degrade to the
                    # best set seen, not NO_SOLUTION.
                    status = BUDGET_EXHAUSTED
                    solutions = list(best_solutions)
                    break
                if not solutions:
                    status = NO_SOLUTION
                    break
                if last_size is not None and len(solutions) == last_size \
                        and len(solutions) < config.m:
                    status = STABILIZED
                    break
                last_size = len(solutions)

                with obs.span("pins.pickone"):
                    chosen = chooser(solutions, explored, checker, rng,
                                     pool=pool)

                with obs.span("pins.symexec"):
                    path = executor.find_path(chosen.expr_map, chosen.pred_map,
                                              set(explored), rng)
                    if path is None:
                        # The chosen solution admits no fresh path within
                        # budget; try the other candidates (and fresh
                        # randomization) before giving up — any fresh feasible
                        # path still refines the space.
                        for other in solutions:
                            if other is chosen:
                                continue
                            path = executor.find_path(other.expr_map, other.pred_map,
                                                      set(explored), rng)
                            if path is not None:
                                break
                if path is None:
                    status = PATHS_EXHAUSTED
                    break
                explored.append(path)
                obs.count("pins.path")
                obs.observe("pins.frontier", len(explored))
                constraints.append(safepath(path, spec, label=f"path{len(explored)}"))
                constraints.extend(init_constraints(path, desugared.body,
                                                    label_prefix=f"path{len(explored)}"))
            if pool is not None and pool is not persistent:
                pool.close()
                pool = None
                executor.attach_pool(None)
    except BudgetExhausted:
        # Raised by a layer with nothing useful to return partially
        # (symbolic execution, or the wall check at the loop head).
        # Degrade to the best stabilizing-candidate set seen so far.
        status = BUDGET_EXHAUSTED
        solutions = list(best_solutions)
    finally:
        if pool is not None and pool is not persistent:
            pool.close()
        if persistent is not None:
            persistent.close()
        if query_cache is not None:
            query_cache.close()

    # PinsStats is *derived* from the run's obs metrics (timers) and the
    # solve/executor accumulators (counters); check_stats_invariants
    # asserts the two bookkeeping paths agree whenever tracing is on.
    stats.paths_explored = len(explored)
    stats.num_solutions = len(solutions)
    stats.tests_generated = len(tests)
    stats.time_pickone = metrics.timer("pins.pickone")
    stats.time_symexec = metrics.timer("pins.symexec")
    stats.time_sat = metrics.timer("solve.sat")
    stats.time_smt_reduction = (metrics.timer("solve.screen")
                                + metrics.timer("solve.check")
                                + metrics.timer("solve.eager"))
    stats.sat_vars = solve_stats.sat_vars
    stats.sat_clauses = solve_stats.sat_clauses
    stats.candidates_tried = solve_stats.candidates_tried
    stats.blocked_by_screen = solve_stats.blocked_by_screen
    stats.blocked_by_check = solve_stats.blocked_by_check
    stats.indicators_pruned = solve_stats.indicators_pruned
    stats.symexec_smt_calls = executor.oracle.queries
    stats.symexec_const_prunes = executor.const_prunes
    stats.symexec_absint_prunes = executor.absint_prunes
    stats.absint_screen_holds = solve_stats.absint_holds
    stats.absint_screen_refutes = solve_stats.absint_refutes
    stats.fwdbwd_screen_holds = solve_stats.fwdbwd_holds
    stats.checker_smt_checks = checker.stats.smt_checks
    stats.smt_cache_hits = metrics.counter("smt.cache.hit")
    stats.smt_cache_misses = metrics.counter("smt.cache.miss")
    stats.candidates_demoted = solve_stats.demoted
    if budget is not None and budget.exhausted:
        stats.budget_exhausted = budget.reason or "exhausted"
    stats.time_total = time.perf_counter() - started
    if obs.tracing_enabled():
        check_stats_invariants(stats, metrics)
    return PinsResult(status, task, template, solutions, explored, tests,
                      stats, metrics=metrics)
