"""Algorithm 1: the PINS main loop.

::

    F := {};  C := terminate(P)
    while true:
        sols := solve(C, Phi_p, Phi_e, m)
        if sols = {}:            return NoSolution
        if stabilized(sols, m):  return sols
        S := pickOne(sols)
        (f, V') := symbolically execute P guided by S, avoiding F
        F := F + {f};  C := C + safepath(f, V', spec)

Instrumentation mirrors the paper's Tables 2 and 4: iteration counts,
search-space size, wall-clock split across symbolic execution / SMT
reduction / SAT solving / pickOne, and the size of the SAT formulas.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..concrete.testgen import freeze_input
from ..lang import ast
from ..lang.transform import compose, desugar_program
from ..symexec.executor import ExecConfig, SymbolicExecutor
from ..symexec.paths import Path
from .checker import ConstraintChecker
from .constraints import Constraint, safepath
from .pickone import pick_one, pick_random
from .solve import RANK_PREFIX, SolveSession, SolveStats, solve
from .spec import InversionSpec
from .task import SynthesisTask
from .template import HoleSpace, Solution, SynthesisTemplate
from .termination import (
    derive_ranking_candidates,
    init_constraints,
    invariant_hole_name,
    rank_hole_name,
    template_loops,
    terminate,
)

NO_SOLUTION = "no_solution"
STABILIZED = "stabilized"
PATHS_EXHAUSTED = "paths_exhausted"
MAX_ITERATIONS = "max_iterations"


@dataclass
class PinsConfig:
    """Tunables for a PINS run; defaults follow the paper (m = 10)."""

    m: int = 10
    max_iterations: int = 30
    seed: int = 0
    initial_tests: int = 6
    use_infeasible_heuristic: bool = True
    max_unroll: Optional[int] = None  # None: take the task's setting
    max_backtracks: int = 20000
    solver_conflict_budget: int = 100_000
    max_candidates_per_solve: int = 50_000
    static_pruning: Optional[bool] = None
    """Use the dataflow analyses to shrink hole candidate sets and skip
    statically-infeasible symexec branches.  ``None`` defers to the
    ``REPRO_STATIC_PRUNING`` env var (default: enabled)."""


@dataclass
class PinsStats:
    iterations: int = 0
    paths_explored: int = 0
    search_space_log2: float = 0.0
    num_solutions: int = 0
    tests_generated: int = 0
    time_symexec: float = 0.0
    time_smt_reduction: float = 0.0
    time_sat: float = 0.0
    time_pickone: float = 0.0
    time_total: float = 0.0
    sat_vars: int = 0
    sat_clauses: int = 0
    candidates_tried: int = 0
    blocked_by_screen: int = 0
    blocked_by_check: int = 0
    indicators_pruned: int = 0
    symexec_smt_calls: int = 0
    symexec_const_prunes: int = 0

    def breakdown(self) -> Dict[str, float]:
        """Fractions of total time per phase (Table 4)."""
        total = max(self.time_total, 1e-9)
        return {
            "symexec": self.time_symexec / total,
            "smt_reduction": self.time_smt_reduction / total,
            "sat": self.time_sat / total,
            "pickone": self.time_pickone / total,
        }


@dataclass
class PinsResult:
    status: str
    task: SynthesisTask
    template: SynthesisTemplate
    solutions: List[Solution]
    explored: List[Path]
    tests: List[Dict[str, Any]]
    stats: PinsStats

    def inverse_programs(self) -> List[ast.Program]:
        return [self.template.instantiate(s) for s in self.solutions]

    @property
    def succeeded(self) -> bool:
        return bool(self.solutions)


def build_template(task: SynthesisTask,
                   static_pruning: Optional[bool] = None) -> SynthesisTemplate:
    """Assemble the hole space (including ranking holes) for a task.

    With static pruning enabled (the default; see
    :func:`repro.analysis.prune.static_pruning_enabled`), the dataflow
    analyses drop per-hole candidates that read undefined scalars or
    cannot be well-sorted at any of the hole's sites, shrinking the SAT
    indicator space before ``solve()`` ever runs.
    """
    from ..analysis.prune import prune_hole_space, static_pruning_enabled

    composed = compose(task.program, task.inverse)
    desugared = desugar_program(composed)
    extern_sorts = {name: task.externs.get(name).result_sort
                    for name in task.externs.names()}
    space = HoleSpace.build(
        task.inverse.body, task.phi_e, task.phi_p,
        expr_overrides=task.expr_overrides,
        pred_overrides=task.pred_overrides,
        max_pred_conj=task.max_pred_conj,
        decls=desugared.decls,
        extern_sorts=extern_sorts,
    )
    prune_report = None
    if static_pruning_enabled(static_pruning):
        entry_defined = (frozenset(task.program.inputs)
                         | ast.assigned_vars(task.program.body))
        space, prune_report = prune_hole_space(
            space, task.inverse.body, desugared.decls,
            extern_sorts=task.externs, entry_defined=entry_defined)
    ranks = derive_ranking_candidates(task.phi_p)
    rank_holes = {}
    inv_holes = {}
    for loop_id, _guard, _body in template_loops(desugared.body):
        rname = rank_hole_name(loop_id)
        cands = tuple(task.rank_overrides.get(rname, ranks))
        if not cands:
            cands = (ast.n(0),)
        rank_holes[rname] = cands
        iname = invariant_hole_name(loop_id)
        inv_holes[iname] = tuple(task.pred_overrides.get(iname, task.phi_p))
    return SynthesisTemplate(task.program, task.inverse,
                             space.with_rank_holes(rank_holes, inv_holes),
                             prune_report=prune_report)


def run_pins(task: SynthesisTask, config: Optional[PinsConfig] = None) -> PinsResult:
    """Run PINS on a synthesis task."""
    config = config or PinsConfig()
    rng = random.Random(config.seed)
    started = time.perf_counter()

    composed = compose(task.program, task.inverse)
    desugared = desugar_program(composed)
    template = build_template(task, static_pruning=config.static_pruning)
    spec = task.derived_spec(desugared.decls)

    input_vars = {v: desugared.decls[v] for v in task.program.inputs}
    length_hints = {arr: ln for arr, _out, ln in spec.array_pairs}
    checker = ConstraintChecker(
        desugared.decls, task.externs, task.axioms + task.input_axioms,
        input_vars=input_vars, length_hints=length_hints,
        conflict_budget=config.solver_conflict_budget,
    )
    constraints: List[Constraint] = terminate(desugared.body, desugared.decls)
    session = SolveSession(template.space, prune_report=template.prune_report)
    stats = PinsStats(search_space_log2=template.space.log2_size())
    solve_stats = SolveStats()
    if template.prune_report is not None:
        solve_stats.indicators_pruned = template.prune_report.indicators_removed

    tests: List[Dict[str, Any]] = []
    seen = set()
    for candidate in task.initial_inputs:
        key = freeze_input(candidate)
        if key not in seen:
            seen.add(key)
            tests.append(dict(candidate))
    if task.input_gen is not None:
        for _ in range(config.initial_tests * 3):
            if len(tests) >= config.initial_tests + len(task.initial_inputs):
                break
            candidate = task.input_gen(rng)
            key = freeze_input(candidate)
            if key not in seen:
                seen.add(key)
                tests.append(candidate)

    exec_config = ExecConfig(
        max_unroll=config.max_unroll if config.max_unroll is not None else task.max_unroll,
        max_backtracks=config.max_backtracks,
        solver_conflict_budget=config.solver_conflict_budget,
        const_pruning=config.static_pruning,
    )
    # The executor co-simulates the (growing) test pool for fast
    # feasibility checks; `tests` is shared by reference on purpose.
    executor = SymbolicExecutor(desugared, task.externs,
                                task.axioms + task.input_axioms, exec_config,
                                seed_inputs=tests)

    explored: List[Path] = []
    chooser = pick_one if config.use_infeasible_heuristic else pick_random
    last_size: Optional[int] = None
    status = MAX_ITERATIONS
    solutions: List[Solution] = []

    for _ in range(config.max_iterations):
        stats.iterations += 1
        solutions = solve(session, constraints, checker, tests,
                          config.m, solve_stats,
                          max_candidates=config.max_candidates_per_solve,
                          precondition=task.precondition)
        if not solutions:
            status = NO_SOLUTION
            break
        if last_size is not None and len(solutions) == last_size \
                and len(solutions) < config.m:
            status = STABILIZED
            break
        last_size = len(solutions)

        start = time.perf_counter()
        chosen = chooser(solutions, explored, checker, rng)
        stats.time_pickone += time.perf_counter() - start

        start = time.perf_counter()
        path = executor.find_path(chosen.expr_map, chosen.pred_map,
                                  set(explored), rng)
        if path is None:
            # The chosen solution admits no fresh path within budget; try
            # the other candidates (and fresh randomization) before giving
            # up — any fresh feasible path still refines the space.
            for other in solutions:
                if other is chosen:
                    continue
                path = executor.find_path(other.expr_map, other.pred_map,
                                          set(explored), rng)
                if path is not None:
                    break
        stats.time_symexec += time.perf_counter() - start
        if path is None:
            status = PATHS_EXHAUSTED
            break
        explored.append(path)
        constraints.append(safepath(path, spec, label=f"path{len(explored)}"))
        constraints.extend(init_constraints(path, desugared.body,
                                            label_prefix=f"path{len(explored)}"))

    stats.paths_explored = len(explored)
    stats.num_solutions = len(solutions)
    stats.tests_generated = len(tests)
    stats.time_sat = solve_stats.sat_time
    stats.time_smt_reduction = solve_stats.check_time + solve_stats.screen_time
    stats.sat_vars = solve_stats.sat_vars
    stats.sat_clauses = solve_stats.sat_clauses
    stats.candidates_tried = solve_stats.candidates_tried
    stats.blocked_by_screen = solve_stats.blocked_by_screen
    stats.blocked_by_check = solve_stats.blocked_by_check
    stats.indicators_pruned = solve_stats.indicators_pruned
    stats.symexec_smt_calls = executor.oracle.queries
    stats.symexec_const_prunes = executor.const_prunes
    stats.time_total = time.perf_counter() - started
    return PinsResult(status, task, template, solutions, explored, tests, stats)
