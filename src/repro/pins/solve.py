"""The ``solve`` procedure: SAT over indicator variables + lazy learning.

The paper reduces the constraints ``C`` to a SAT formula over boolean
indicator variables — one per (hole, candidate) pair — by querying the SMT
solver per constraint (the VS3 reduction [36]).  We keep the encoding but
learn the SAT clauses lazily:

1. CDCL proposes a full assignment sigma of candidates to holes;
2. sigma is *screened* against the pool of concrete test inputs by
   replaying each safepath constraint (microseconds per test);
3. survivors get the full SMT check per constraint; a refuting model
   yields a fresh counterexample input for the pool;
4. every failure adds a *blocking clause*.  Clauses are generalized by
   observational equivalence: candidates indistinguishable on the failing
   test (same value at every occurrence along the path) are blocked
   together, which prunes exponentially more than blocking one assignment.

Learned clauses are persisted across PINS iterations (they are
consequences of C, which only grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .. import obs
from ..concrete.interp import Interpreter, InterpError
from ..concrete.testgen import freeze_input
from ..concrete.values import coerce_input, default_value
from ..lang import ast
from ..lang.ast import Expr, Pred
from ..lang.transform import rename_expr, rename_pred, vmap_renaming
from ..resil import BudgetExhausted
from ..smt.sat import SatSolver
from ..symexec.paths import Def, Guard
from .checker import HOLDS, UNKNOWN, VIOLATED, ConstraintChecker
from .constraints import Constraint
from .template import HoleSpace, Solution

RANK_PREFIX = "rank!"
INV_PREFIX = "inv!"

# Cache sentinel for an UNKNOWN that came from a replay-passing
# (spurious) counterexample: treated as UNKNOWN for optimism, but never
# counted toward unknown-demotion — the concrete replay is evidence
# *for* the candidate, not a solver stall.
UNKNOWN_REPLAYED = "unknown-replay-pass"

# Cache sentinel for an UNKNOWN downgraded from a VIOLATED whose
# counterexample failed concrete replay (extern model-table garbage):
# exempt from unknown-demotion like UNKNOWN_REPLAYED — but it is *no*
# evidence for the candidate either, so acceptance routes the candidate
# through the whole-program concrete round-trip refuter first.
UNKNOWN_DOWNGRADED = "unknown-replay-fail"


def is_auxiliary_hole(name: str) -> bool:
    """Ranking/invariant holes: part of the search, not of the program."""
    return name.startswith(RANK_PREFIX) or name.startswith(INV_PREFIX)


@dataclass
class SolveStats:
    candidates_tried: int = 0
    blocked_by_screen: int = 0
    blocked_by_check: int = 0
    indicators_pruned: int = 0
    """Indicator variables removed by static analysis before encoding."""
    absint_holds: int = 0
    """Constraints proved to hold by the abstract screen (SMT skipped)."""
    absint_refutes: int = 0
    """Candidates refuted by an abstractly-sampled concrete witness."""
    fwdbwd_holds: int = 0
    """Constraints proved to hold by the linear fold/Fourier–Motzkin
    screen (SMT skipped, trajectory unchanged)."""
    demoted: int = 0
    """Candidates demoted after repeated ``unknown`` SMT outcomes (the
    resilience cascade for a solver that keeps timing out on one
    candidate: block it non-persistently instead of accepting it on
    optimism or aborting the solve)."""
    roundtrip_refuted: int = 0
    """Downgrade-riding candidates refuted at acceptance by the
    whole-program concrete round trip (real extern semantics)."""
    sat_time: float = 0.0
    screen_time: float = 0.0
    check_time: float = 0.0
    sat_vars: int = 0
    sat_clauses: int = 0


class Enumerator:
    """SAT encoding of a hole space with stable variable numbering."""

    def __init__(self, space: HoleSpace):
        self.space = space
        self.var_of: Dict[Tuple[str, int], int] = {}
        next_var = 1
        self._expr_holes = list(space.expr_holes) + list(space.rank_holes)
        self._pred_holes = list(space.pred_holes)
        for name, cands in self._expr_holes:
            if not cands:
                raise ValueError(f"expression hole {name!r} has no candidates")
            for i in range(len(cands)):
                self.var_of[(name, i)] = next_var
                next_var += 1
        for name, cands in self._pred_holes:
            for i in range(len(cands)):
                self.var_of[(name, i)] = next_var
                next_var += 1
        self.num_vars = next_var - 1

    def structural_clauses(self) -> List[List[int]]:
        clauses: List[List[int]] = []
        for name, cands in self._expr_holes:
            lits = [self.var_of[(name, i)] for i in range(len(cands))]
            clauses.append(lits)  # at least one
            for i in range(len(lits)):
                for j in range(i + 1, len(lits)):
                    clauses.append([-lits[i], -lits[j]])  # at most one
        limit = self.space.max_pred_conj
        if limit is not None:
            import itertools

            for name, cands in self._pred_holes:
                if len(cands) > limit:
                    for combo in itertools.combinations(range(len(cands)), limit + 1):
                        clauses.append([-self.var_of[(name, i)] for i in combo])
        return clauses

    def fresh_solver(self, extra_clauses: Sequence[Sequence[int]] = ()) -> SatSolver:
        sat = SatSolver()
        while sat.num_vars < self.num_vars:
            sat.new_var()
        ok = True
        for clause in self.structural_clauses():
            ok = sat.add_clause(clause) and ok
        for clause in extra_clauses:
            ok = sat.add_clause(clause) and ok
        return sat

    def decode(self, model: Mapping[int, bool]) -> Solution:
        exprs: List[Tuple[str, Expr]] = []
        preds: List[Tuple[str, Tuple[Pred, ...]]] = []
        for name, cands in self._expr_holes:
            chosen = [i for i in range(len(cands)) if model.get(self.var_of[(name, i)])]
            if len(chosen) != 1:
                raise RuntimeError(f"one-hot violation for hole {name!r}")
            exprs.append((name, cands[chosen[0]]))
        for name, cands in self._pred_holes:
            chosen = tuple(cands[i] for i in range(len(cands))
                           if model.get(self.var_of[(name, i)]))
            preds.append((name, chosen))
        return Solution(exprs=tuple(exprs), preds=tuple(preds))

    # -- blocking clauses ---------------------------------------------------------

    def exact_block(self, solution: Solution,
                    relevant: Optional[Set[str]] = None) -> List[int]:
        """Block assignments agreeing with ``solution`` on relevant holes."""
        clause: List[int] = []
        chosen_expr = solution.expr_map
        for name, cands in self._expr_holes:
            if relevant is not None and name not in relevant:
                continue
            idx = _index_of(cands, chosen_expr[name])
            clause.append(-self.var_of[(name, idx)])
        chosen_pred = solution.pred_map
        for name, cands in self._pred_holes:
            if relevant is not None and name not in relevant:
                continue
            chosen = set(chosen_pred[name])
            for i, cand in enumerate(cands):
                var = self.var_of[(name, i)]
                clause.append(var if cand not in chosen else -var)
        return clause

    def observational_block(self, solution: Solution,
                            expr_equiv: Mapping[str, Set[int]],
                            pred_true_sets: Mapping[str, Set[int]],
                            exact_pred_holes: Set[str]) -> List[int]:
        """Block every assignment observationally equal to ``solution``.

        ``expr_equiv[h]`` is the set of candidate indices for hole ``h``
        producing the same values as sigma(h) at every occurrence on the
        failing path; ``pred_true_sets[h]`` lists candidate predicates that
        evaluate true (for guard holes whose sigma-value was true — any
        subset of these also evaluates true); holes in
        ``exact_pred_holes`` fall back to exact bit-flips.
        """
        clause: List[int] = []
        for name, cands in self._expr_holes:
            if name in expr_equiv:
                for i in range(len(cands)):
                    if i not in expr_equiv[name]:
                        clause.append(self.var_of[(name, i)])
        chosen_pred = solution.pred_map
        for name, cands in self._pred_holes:
            if name in pred_true_sets:
                true_set = pred_true_sets[name]
                for i in range(len(cands)):
                    if i not in true_set:
                        clause.append(self.var_of[(name, i)])
            elif name in exact_pred_holes:
                chosen = set(chosen_pred[name])
                for i, cand in enumerate(cands):
                    var = self.var_of[(name, i)]
                    clause.append(var if cand not in chosen else -var)
        if not clause:
            # Nothing distinguishes any assignment: fall back to blocking
            # the exact assignment over all holes.
            return self.exact_block(solution)
        return clause


def _index_of(cands: Sequence, value) -> int:
    for i, c in enumerate(cands):
        if c == value:
            return i
    raise ValueError(f"candidate {value!r} not in set")


# ---------------------------------------------------------------------------
# Observational analysis of a failing (constraint, solution, test) triple
# ---------------------------------------------------------------------------


def observational_analysis(constraint: Constraint, solution: Solution,
                           inputs: Mapping[str, Any], space: HoleSpace,
                           sorts, externs) -> Optional[Tuple[Dict[str, Set[int]],
                                                             Dict[str, Set[int]],
                                                             Set[str]]]:
    """Per-hole candidate equivalence sets along a failing path replay.

    Replays the constraint's items under ``solution`` on ``inputs``; at
    every hole occurrence, evaluates *all* candidates in the hole's set
    and records which produce the same value as the chosen one.  Returns
    (expr_equiv, pred_true_sets, exact_pred_holes) for
    :meth:`Enumerator.observational_block`, or None if replay fails.
    """
    interp = Interpreter(externs)
    expr_cands = dict(space.expr_holes) | dict(space.rank_holes)
    pred_cands = dict(space.pred_holes)
    expr_map = solution.expr_map
    pred_map = solution.pred_map

    env: Dict[str, Any] = {}
    for var, value in inputs.items():
        env[f"{var}#0"] = coerce_input(value, sorts.get(var, ast.Sort.INT))

    expr_equiv: Dict[str, Set[int]] = {}
    pred_true: Dict[str, Set[int]] = {}
    exact_preds: Set[str] = set()

    def eval_expr(e: ast.Expr):
        return interp.eval_expr(e, env, sorts)

    def note_expr_hole(name: str, vmap) -> None:
        renaming = vmap_renaming(vmap)
        chosen_val = eval_expr(rename_expr(expr_map[name], renaming))
        same: Set[int] = set()
        for i, cand in enumerate(expr_cands[name]):
            try:
                if eval_expr(rename_expr(cand, renaming)) == chosen_val:
                    same.add(i)
            except InterpError:
                pass
        expr_equiv[name] = expr_equiv.get(name, same) & same

    def note_holes_in_expr(e: ast.Expr) -> None:
        for node in ast.walk_exprs(e):
            if isinstance(node, ast.HoleExpr):
                note_expr_hole(node.name, node.vmap)

    def note_holes_in_pred(p: ast.Pred) -> None:
        for node in ast.walk_exprs(p):
            if isinstance(node, ast.HoleExpr):
                note_expr_hole(node.name, node.vmap)
            elif isinstance(node, ast.HolePred):
                renaming = vmap_renaming(node.vmap)
                chosen = pred_map[node.name]
                value = all(
                    interp.eval_pred(rename_pred(q, renaming), env, sorts)
                    for q in chosen
                )
                if value:
                    trues: Set[int] = set()
                    for i, cand in enumerate(pred_cands[node.name]):
                        try:
                            if interp.eval_pred(rename_pred(cand, renaming), env, sorts):
                                trues.add(i)
                        except InterpError:
                            pass
                    if node.name in pred_true:
                        pred_true[node.name] &= trues
                    elif node.name in exact_preds:
                        pass
                    else:
                        pred_true[node.name] = trues
                else:
                    exact_preds.add(node.name)
                    pred_true.pop(node.name, None)

    try:
        from ..lang.transform import substitute_expr, substitute_pred

        for item in constraint.items:
            if isinstance(item, Def):
                note_holes_in_expr(item.expr)
                ground = substitute_expr(item.expr, expr_map)
                env[item.versioned_var] = eval_expr(ground)
            elif isinstance(item, Guard):
                note_holes_in_pred(item.pred)
                ground = substitute_pred(item.pred, expr_map, pred_map)
                if not interp.eval_pred(ground, env, sorts):
                    # The input does not follow this path under the
                    # solution, so it does not witness a violation; the
                    # block would be unsound.  Give up on generalizing.
                    return None
        # The block is only sound if this very replay witnesses the
        # violation: observationally equal solutions then fail identically.
        if constraint.kind == "safepath":
            assert constraint.spec is not None
            if constraint.spec.check_env(env, constraint.final_vmap):
                return None  # spec satisfied here: no witnessed violation
        elif constraint.neg_goal is not None:
            # Holes appearing only in the goal (e.g. ranking functions)
            # must participate in the equivalence analysis, otherwise the
            # block would unsoundly cover assignments that differ there.
            note_holes_in_pred(constraint.neg_goal)
            ground_goal = substitute_pred(constraint.neg_goal, expr_map, pred_map)
            if not interp.eval_pred(ground_goal, env, sorts):
                return None  # goal not violated here
    except InterpError:
        return None
    return expr_equiv, pred_true, exact_preds


# ---------------------------------------------------------------------------
# The solve() procedure
# ---------------------------------------------------------------------------


@dataclass
class SolveSession:
    """State persisted across PINS iterations (learned clauses, caches)."""

    space: HoleSpace
    enumerator: Enumerator = field(init=False)
    persistent_clauses: List[List[int]] = field(default_factory=list)
    check_cache: Dict[Tuple[tuple, str], str] = field(default_factory=dict)
    screen_cache: Dict[tuple, bool] = field(default_factory=dict)
    eager_done: Set[str] = field(default_factory=set)
    prune_report: Optional[Any] = None
    """The :class:`repro.analysis.prune.PruneReport` describing how the
    space was shrunk before encoding (None when pruning was disabled)."""
    replay_downgraded: bool = False
    """True once any check this run downgraded a VIOLATED on replay
    failure.  From that point the SMT layer is known unreliable on this
    task's externs, so *every* later acceptance (not just candidates
    with their own downgrade) must pass the concrete round-trip refuter
    — optimism-riding candidates are otherwise indistinguishable from
    real solutions.  Extern-clean programs never set this, keeping
    their trajectories byte-identical."""

    def __post_init__(self) -> None:
        self.enumerator = Enumerator(self.space)


def _subsets_upto(count: int, limit: Optional[int]):
    """Index subsets of size <= limit, in deterministic order."""
    import itertools

    cap = count if limit is None else min(limit, count)
    for size in range(cap + 1):
        yield from itertools.combinations(range(count), size)


def _combo_count(space: HoleSpace, holes: Set[str]) -> int:
    total = 1
    for name, cands in list(space.expr_holes) + list(space.rank_holes):
        if name in holes:
            total *= max(1, len(cands))
    for name, cands in space.pred_holes:
        if name in holes:
            total *= space.pred_subset_count(len(cands))
    return total


def _combos_over(space: HoleSpace, holes: Set[str]):
    """All partial solutions over the given holes (deterministic order)."""
    import itertools

    expr_axes = [(name, list(cands))
                 for name, cands in list(space.expr_holes) + list(space.rank_holes)
                 if name in holes]
    pred_axes = [(name, [tuple(cands[i] for i in idxs)
                         for idxs in _subsets_upto(len(cands), space.max_pred_conj)])
                 for name, cands in space.pred_holes if name in holes]
    axes = [opts for _, opts in expr_axes] + [opts for _, opts in pred_axes]
    names_e = [name for name, _ in expr_axes]
    names_p = [name for name, _ in pred_axes]
    for combo in itertools.product(*axes):
        exprs = tuple(zip(names_e, combo[:len(names_e)]))
        preds = tuple(zip(names_p, combo[len(names_e):]))
        yield Solution(exprs=exprs, preds=preds)


def solve(session: SolveSession, constraints: Sequence[Constraint],
          checker: ConstraintChecker, tests: List[Dict[str, Any]],
          m: int, stats: SolveStats,
          max_candidates: int = 200_000,
          eager_limit: int = 600,
          precondition=None,
          pool=None,
          budget=None,
          demote_unknowns: Optional[int] = 3) -> List[Solution]:
    """Find up to ``m`` solutions satisfying every constraint.

    Mutates ``tests`` (new counterexamples are appended) and the session
    (learned clauses, check cache).

    When ``pool`` (a :class:`repro.perf.pool.WorkerPool`) is parallel,
    the independent per-constraint SMT checks fan out to workers; results
    are folded in submission order with the serial control flow (first
    violation wins, later speculative results discarded), so the learned
    clauses, caches, and returned solutions are identical to a serial run.

    ``budget`` (a :class:`repro.resil.Budget`) makes the candidate loop
    cooperative: SAT conflicts and checker queries charge against it, and
    on exhaustion the loop stops and returns the solutions found so far
    (best-so-far, never an exception).

    A candidate whose tier-2 checks answer ``unknown`` at least
    ``demote_unknowns`` times (cached unknowns from earlier iterations
    included) is *demoted* — blocked for this solve call without being
    accepted — instead of riding through on unknown-optimism while a
    wedged solver times out on it forever.  ``None`` disables demotion.
    """
    enum = session.enumerator
    solutions: List[Solution] = []
    seen_programs: Set[tuple] = set()
    safepaths = [c for c in constraints if c.kind == "safepath"]
    test_keys = {freeze_input(t) for t in tests}
    parallel = pool is not None and pool.parallel

    # -- eager semantic encoding (the paper's VS3-style SMT->SAT reduction):
    # constraints over few holes (termination, invariant-init) are compiled
    # into SAT clauses up front by checking every relevant combination.
    with obs.span("solve.eager") as eager_span:
        eager_pairs: List[Tuple[int, Constraint, Solution, Set[str]]] = []
        for cidx, constraint in enumerate(constraints):
            if constraint.label in session.eager_done or constraint.kind == "safepath":
                continue
            holes = set(constraint.relevant)
            if _combo_count(session.space, holes) > eager_limit:
                continue
            for partial in _combos_over(session.space, holes):
                eager_pairs.append((cidx, constraint, partial, holes))
            session.eager_done.add(constraint.label)
        if parallel and len(eager_pairs) > 1:
            outcomes = pool.map_ordered(
                [("constraint", cidx, partial)
                 for cidx, _, partial, _ in eager_pairs])
        else:
            outcomes = [checker.check(c, partial)
                        for _, c, partial, _ in eager_pairs]
        for (_, constraint, partial, holes), outcome in zip(eager_pairs, outcomes):
            _note_absint(stats, outcome)
            if outcome.status == VIOLATED:
                session.persistent_clauses.append(enum.exact_block(partial, holes))
    stats.check_time += eager_span.duration

    sat = enum.fresh_solver(session.persistent_clauses)
    sat.budget = budget

    def learn(clause: List[int], persist: bool = True) -> None:
        if persist:
            session.persistent_clauses.append(clause)
        obs.observe("solve.block_len", len(clause))
        sat.add_clause(clause)

    def block_with_observation(constraint: Constraint, solution: Solution,
                               failing_input: Mapping[str, Any]) -> None:
        analysis = observational_analysis(
            constraint, solution, failing_input, session.space,
            checker.sorts, checker.externs)
        if analysis is None:
            learn(enum.exact_block(solution, set(constraint.relevant)))
            return
        expr_equiv, pred_true, exact_preds = analysis
        learn(enum.observational_block(solution, expr_equiv, pred_true, exact_preds))

    candidates = 0
    while len(solutions) < m and candidates < max_candidates:
        if budget is not None and budget.exhausted:
            break  # a checker charge tripped it mid-candidate: best-so-far
        try:
            with obs.span("solve.sat") as sat_span:
                sat_result = sat.solve()
        except BudgetExhausted:
            obs.count("resil.budget.solve_interrupted")
            break  # return the solutions found so far
        stats.sat_time += sat_span.duration
        stats.sat_vars = sat.num_vars
        stats.sat_clauses = sat.num_clauses()
        if not sat_result:
            break
        solution = enum.decode(sat.model())
        candidates += 1
        stats.candidates_tried += 1
        obs.count("solve.candidate")

        # -- tier 1: concrete screening -----------------------------------
        with obs.span("solve.screen") as screen_span:
            screen_failure: Optional[Tuple[Constraint, Dict[str, Any]]] = None
            for constraint in safepaths:
                restricted = _restricted_key(solution, constraint.relevant)
                for t_idx, test in enumerate(tests):
                    skey = (constraint.label, restricted, t_idx)
                    passed = session.screen_cache.get(skey)
                    if passed is None:
                        passed = checker.screen(constraint, solution, test)
                        session.screen_cache[skey] = passed
                    if not passed:
                        screen_failure = (constraint, test)
                        break
                if screen_failure:
                    break
        stats.screen_time += screen_span.duration
        if screen_failure:
            stats.blocked_by_screen += 1
            obs.count("solve.blocked_screen")
            block_with_observation(screen_failure[0], solution, screen_failure[1])
            continue

        # -- tier 2: full SMT checks ---------------------------------------
        with obs.span("solve.check") as check_span:
            failed = False
            unknown_hits = 0
            saw_downgraded = False
            pending: List[Tuple[int, Constraint, Tuple[tuple, str]]] = []
            for cidx, constraint in enumerate(constraints):
                if constraint.label in session.eager_done:
                    continue  # compiled into SAT clauses already
                cache_key = (_restricted_key(solution, constraint.relevant),
                             constraint.label)
                cached = session.check_cache.get(cache_key)
                if cached in (HOLDS, UNKNOWN, UNKNOWN_REPLAYED,
                              UNKNOWN_DOWNGRADED):
                    if cached == UNKNOWN:
                        unknown_hits += 1
                    if cached == UNKNOWN_DOWNGRADED:
                        saw_downgraded = True
                    continue
                pending.append((cidx, constraint, cache_key))
            if demote_unknowns is not None and unknown_hits >= demote_unknowns:
                # A previously-demoted candidate re-proposed by this solve
                # call's fresh SAT solver: demote again without re-running
                # any checks (the cached unknowns already tell the story).
                failed = True
                _demote(stats, learn, enum, solution)
                pending = []
            if parallel and len(pending) > 1:
                # Speculative fan-out: all pending checks run concurrently,
                # but results are folded below in submission order and
                # everything after the first violation is discarded (not
                # cached, not learned) — exactly what a serial run sees.
                outcomes = pool.map_ordered(
                    [("constraint", cidx, solution) for cidx, _, _ in pending])
                obs.count("solve.parallel_checks", len(pending))
            else:
                outcomes = None
            for i, (_, constraint, cache_key) in enumerate(pending):
                outcome = (outcomes[i] if outcomes is not None
                           else checker.check(constraint, solution))
                _note_absint(stats, outcome)
                if outcome.status == VIOLATED:
                    failed = True
                    stats.blocked_by_check += 1
                    obs.count("solve.blocked_check")
                    if outcome.counterexample is not None:
                        if constraint.kind == "safepath" and (
                                precondition is None
                                or precondition(outcome.counterexample)):
                            key = freeze_input(outcome.counterexample)
                            if key not in test_keys:
                                test_keys.add(key)
                                tests.append(outcome.counterexample)
                                obs.count("solve.counterexample")
                        block_with_observation(constraint, solution,
                                               outcome.counterexample)
                    else:
                        learn(enum.exact_block(solution, set(constraint.relevant)))
                    break
                if outcome.status == UNKNOWN and outcome.spurious_cex:
                    session.check_cache[cache_key] = UNKNOWN_REPLAYED
                    continue
                if outcome.status == UNKNOWN and outcome.downgraded:
                    # Replay-failure downgrade: no evidence either way.
                    # Exempt from demotion (a solver artifact, not a
                    # stall) but remember it — acceptance must pass the
                    # concrete round-trip refuter below.
                    session.check_cache[cache_key] = UNKNOWN_DOWNGRADED
                    saw_downgraded = True
                    session.replay_downgraded = True
                    continue
                session.check_cache[cache_key] = outcome.status
                if outcome.status == UNKNOWN:
                    unknown_hits += 1
                    if (demote_unknowns is not None
                            and unknown_hits >= demote_unknowns):
                        failed = True
                        _demote(stats, learn, enum, solution)
                        break
        stats.check_time += check_span.duration
        if failed:
            continue

        if saw_downgraded or session.replay_downgraded:
            # Either this candidate rode a downgrade, or some earlier
            # check this run did — meaning the SMT layer's extern models
            # are unreliable here and the path-based screen is vacuous
            # on inputs that miss the explored paths.  Run the whole
            # program concretely before accepting.  A refuting input
            # blocks the exact assignment permanently — it is real
            # evidence under the real semantics.
            refuting = checker.concrete_roundtrip(solution, tests)
            if refuting is not None:
                stats.roundtrip_refuted += 1
                obs.count("solve.blocked_roundtrip")
                learn(enum.exact_block(solution))
                continue

        # -- accepted -------------------------------------------------------
        program_key = _program_key(solution)
        if program_key not in seen_programs:
            seen_programs.add(program_key)
            solutions.append(solution)
            obs.count("solve.accepted")
        # Block this program (not persisted: it is a valid solution).
        learn(_program_block(enum, solution), persist=False)
    return solutions


def _demote(stats: SolveStats, learn, enum: Enumerator, solution) -> None:
    """Retire a candidate whose constraints keep coming back UNKNOWN.

    Repeated solver timeouts on one candidate would otherwise pin the
    whole loop: the candidate never violates anything, so it is never
    blocked, and solve() re-checks it forever. Demotion blocks it
    non-persistently (this solve call only) so the enumerator moves on;
    a later call with a fresh budget may revisit it.
    """
    stats.demoted += 1
    obs.count("solve.demoted")
    learn(enum.exact_block(solution), persist=False)


def _note_absint(stats: SolveStats, outcome) -> None:
    """Account an outcome decided by a solver-free screen (the abstract
    interpreter or the linear fold/Fourier–Motzkin engine).

    Counted here — in the parent's deterministic fold — rather than
    inside the checker, so parallel runs aggregate identically to serial
    ones (worker-side obs counters never reach the parent registry).
    """
    via = getattr(outcome, "via", "smt")
    if via == "fwdbwd":
        stats.fwdbwd_holds += 1
        obs.count("solve.fwdbwd_hold")
        return
    if via != "absint":
        return
    if outcome.status == VIOLATED:
        stats.absint_refutes += 1
        obs.count("solve.absint_refute")
    else:
        stats.absint_holds += 1
        obs.count("solve.absint_hold")


def _restricted_key(solution: Solution, relevant) -> tuple:
    """Canonical key of a solution restricted to the given holes."""
    exprs = tuple((n, e) for n, e in solution.exprs if n in relevant)
    preds = tuple((n, p) for n, p in solution.preds if n in relevant)
    return (exprs, preds)


def _program_key(solution: Solution) -> tuple:
    exprs = tuple((n, e) for n, e in solution.exprs if not is_auxiliary_hole(n))
    preds = tuple((n, p) for n, p in solution.preds if not is_auxiliary_hole(n))
    return (exprs, preds)


def _program_block(enum: Enumerator, solution: Solution) -> List[int]:
    relevant = {n for n, _ in solution.exprs if not is_auxiliary_hole(n)}
    relevant |= {n for n, _ in solution.preds if not is_auxiliary_hole(n)}
    return enum.exact_block(solution, relevant)
