"""Synthesis task bundles: everything PINS needs for one inversion job."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..axioms.registry import EMPTY_REGISTRY, ExternRegistry
from ..lang.ast import Expr, Pred, Program
from ..smt.quant import Axiom
from .spec import InversionSpec

InputGenerator = Callable[[Any], Dict[str, Any]]
"""Maps a ``random.Random`` to a concrete input assignment."""


@dataclass
class SynthesisTask:
    """A program to invert plus its synthesis template and environment.

    ``program`` and ``inverse`` are *guarded* programs (the inverse
    containing ``Unknown``/``UnknownPred`` holes); ``phi_e``/``phi_p`` are
    the candidate sets (the paper's chosen subsets from Table 1);
    ``input_gen`` draws random concrete inputs for the screening pool and
    the bounded validator.
    """

    name: str
    program: Program
    inverse: Program
    phi_e: Tuple[Expr, ...]
    phi_p: Tuple[Pred, ...]
    spec: Optional[InversionSpec] = None
    externs: ExternRegistry = EMPTY_REGISTRY
    axioms: Tuple[Axiom, ...] = ()
    input_gen: Optional[InputGenerator] = None
    initial_inputs: Tuple[Dict[str, Any], ...] = ()
    """Deterministic seed inputs for the screening pool (small exhaustive
    cases); ``input_gen`` tops the pool up with random draws."""
    input_axioms: Tuple[Axiom, ...] = ()
    """Quantified facts about version-0 inputs (e.g. "A#0 is a
    permutation") assumed by every solver query — the symbolic analogue of
    a precondition the template language cannot express directly."""
    precondition: Optional[Callable[[Dict[str, Any]], bool]] = None
    """Concrete input filter matching ``input_axioms``; counterexamples
    violating it are used for pruning but never enter the test pool, and
    bounded validation skips such cases."""
    expr_overrides: Mapping[str, Sequence[Expr]] = field(default_factory=dict)
    pred_overrides: Mapping[str, Sequence[Pred]] = field(default_factory=dict)
    rank_overrides: Mapping[str, Sequence[Expr]] = field(default_factory=dict)
    max_pred_conj: int = 2
    max_unroll: int = 4
    # Bounds for the CBMC-substitute / sketchlite baselines (Table 5).
    bmc_unroll: int = 10
    bmc_array_size: int = 4
    bmc_value_range: Tuple[int, int] = (0, 2)
    notes: str = ""

    def cache_slug(self) -> str:
        """A filesystem-safe name for this task's on-disk query-cache file."""
        import re

        slug = re.sub(r"[^A-Za-z0-9._-]+", "-", self.name).strip("-")
        return slug or "task"

    def derived_spec(self, decls: Mapping[str, Any]) -> InversionSpec:
        if self.spec is not None:
            return self.spec
        return InversionSpec.derive(self.program.inputs, self.inverse.outputs, decls)

    def validate(self, strict: bool = False):
        """Lint the task's program and template; the failing diagnostics.

        Returns the list of :class:`repro.analysis.Diagnostic` findings
        that should block a run (errors; warnings too under ``strict``).
        ``ensure_valid`` raises instead.
        """
        from ..analysis.diagnostics import failing
        from ..analysis.lint import lint_program, lint_template

        diags = list(lint_program(self.program, externs=self.externs))
        diags.extend(lint_template(self.program, self.inverse,
                                   externs=self.externs))
        return failing(diags, strict=strict)

    def ensure_valid(self, strict: bool = False) -> None:
        """Raise :class:`repro.analysis.AnalysisError` on a malformed task."""
        from ..analysis.diagnostics import AnalysisError

        bad = self.validate(strict=strict)
        if bad:
            raise AnalysisError(bad)
