"""The constraint store C of Algorithm 1.

Three constraint kinds, all of shape ``forall X. condition => goal``:

* ``safepath`` — from line 13: a symbolically executed path must satisfy
  the inversion spec (Section 2.3, "Safety constraints");
* ``bounded``  — the loop guard implies the ranking function is
  non-negative (Section 2.3, "Termination constraints");
* ``decrease`` — each loop-body path decreases the ranking function.

Constraints carry holes (paired with version maps); they are *checked*
against a candidate solution by :mod:`repro.pins.checker`.  ``relevant``
lists the holes a constraint actually mentions — the granularity at which
``solve`` generalizes blocking clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..lang import ast
from ..lang.ast import Pred, VersionMap
from ..symexec.paths import Def, Guard, Path
from .spec import InversionSpec


@dataclass(frozen=True)
class Constraint:
    kind: str  # 'safepath' | 'bounded' | 'decrease'
    label: str
    items: Tuple[object, ...]
    final_vmap: VersionMap = ()
    spec: Optional[InversionSpec] = None  # safepath only
    neg_goal: Optional[Pred] = None  # bounded/decrease only

    @property
    def relevant(self) -> FrozenSet[str]:
        names = set()
        for item in self.items:
            if isinstance(item, Def):
                names |= ast.expr_unknowns(item.expr)
            elif isinstance(item, Guard):
                names |= ast.expr_unknowns(item.pred)
        if self.neg_goal is not None:
            names |= ast.expr_unknowns(self.neg_goal)
        return frozenset(names)

    def __str__(self) -> str:
        return f"<{self.kind} {self.label}: {len(self.items)} items>"


def safepath(path: Path, spec: InversionSpec, label: str = "") -> Constraint:
    """The paper's ``safepath(f, V', spec)``."""
    return Constraint(
        kind="safepath",
        label=label or f"path{len(path.items)}",
        items=path.items,
        final_vmap=path.final_vmap,
        spec=spec,
    )
