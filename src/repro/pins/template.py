"""Synthesis templates, hole spaces, and solutions.

A synthesis template is the paper's triple ``(P, Phi_e, Phi_p)``: a
program with unknowns plus the candidate sets the unknowns range over.
Expression holes take exactly one candidate from ``Phi_e``; predicate
holes take a *subset* of ``Phi_p``, denoting conjunction (the paper notes
the search space is counted this way, e.g. ``117 * 2^30`` for run-length).

A :class:`Solution` is a total assignment of candidates to holes; its
``key`` is canonical, so solutions are hashable and comparable across
iterations (stabilization check).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.ast import Expr, Pred, Program
from ..lang.transform import substitute_stmt


@dataclass(frozen=True)
class HoleSpace:
    """The finite candidate space for every hole in a template."""

    expr_holes: Tuple[Tuple[str, Tuple[Expr, ...]], ...]
    pred_holes: Tuple[Tuple[str, Tuple[Pred, ...]], ...]
    rank_holes: Tuple[Tuple[str, Tuple[Expr, ...]], ...] = ()
    max_pred_conj: int = 2

    @staticmethod
    def build(template_body: ast.Stmt,
              phi_e: Sequence[Expr], phi_p: Sequence[Pred],
              rank_holes: Mapping[str, Sequence[Expr]] = (),
              expr_overrides: Mapping[str, Sequence[Expr]] = (),
              pred_overrides: Mapping[str, Sequence[Pred]] = (),
              max_pred_conj: int = 2,
              decls: Optional[Mapping[str, ast.Sort]] = None,
              extern_sorts: Optional[Mapping[str, ast.Sort]] = None,
              ) -> "HoleSpace":
        """Discover holes in a template body and attach candidate sets.

        When ``decls`` is given, each expression hole standing for an
        assignment to variable ``x`` only receives candidates whose sort
        matches ``x`` (the paper's templates are implicitly well-sorted;
        filtering also shrinks the search space honestly).
        """
        from ..analysis.sorts import candidate_fits

        expr_overrides = dict(expr_overrides or {})
        pred_overrides = dict(pred_overrides or {})
        expr_names: list = []
        target_sort: Dict[str, ast.Sort] = {}
        pred_names: list = []
        for stmt in ast.walk_stmts(template_body):
            if isinstance(stmt, ast.Assign):
                for target, e in zip(stmt.targets, stmt.exprs):
                    for node in ast.walk_exprs(e):
                        if isinstance(node, ast.Unknown) and node.name not in expr_names:
                            expr_names.append(node.name)
                            if e is node and decls is not None and target in decls:
                                target_sort[node.name] = decls[target]
            preds = []
            if isinstance(stmt, ast.Assume):
                preds.append(stmt.pred)
            elif isinstance(stmt, (ast.GIf, ast.GWhile)):
                preds.append(stmt.cond)
            for p in preds:
                for node in ast.walk_exprs(p):
                    if isinstance(node, ast.UnknownPred) and node.name not in pred_names:
                        pred_names.append(node.name)
                    if isinstance(node, ast.Unknown) and node.name not in expr_names:
                        expr_names.append(node.name)

        def fits(name: str, cand: Expr) -> bool:
            if decls is None or name not in target_sort:
                return True
            return candidate_fits(cand, target_sort[name], decls, extern_sorts)

        expr_holes = []
        for name in expr_names:
            cands = tuple(c for c in expr_overrides.get(name, phi_e) if fits(name, c))
            expr_holes.append((name, cands))
        return HoleSpace(
            expr_holes=tuple(expr_holes),
            pred_holes=tuple(
                (name, tuple(pred_overrides.get(name, phi_p))) for name in pred_names
            ),
            rank_holes=tuple((name, tuple(cands)) for name, cands in dict(rank_holes or {}).items()),
            max_pred_conj=max_pred_conj,
        )

    def with_rank_holes(self, rank_holes: Mapping[str, Sequence[Expr]],
                        invariant_holes: Mapping[str, Sequence[Pred]] = (),
                        ) -> "HoleSpace":
        """Attach ranking-function and loop-invariant holes."""
        extra_preds = tuple(
            (name, tuple(cands)) for name, cands in dict(invariant_holes or {}).items()
        )
        return HoleSpace(
            self.expr_holes,
            self.pred_holes + extra_preds,
            tuple((name, tuple(cands)) for name, cands in rank_holes.items()),
            self.max_pred_conj,
        )

    # -- size accounting (Table 2's "search space" column) ---------------------

    def pred_subset_count(self, n: int) -> int:
        if self.max_pred_conj is None or self.max_pred_conj >= n:
            return 2 ** n
        return sum(math.comb(n, k) for k in range(self.max_pred_conj + 1))

    def size(self, include_auxiliary: bool = False) -> int:
        """Template-instantiation count (Table 2's search-space column).

        Auxiliary holes (ranking functions ``rank!*`` and invariants
        ``inv!*``) are excluded by default: they do not appear in the
        synthesized program.
        """
        total = 1
        for _, cands in self.expr_holes:
            total *= max(1, len(cands))
        for name, cands in self.pred_holes:
            if not include_auxiliary and name.startswith("inv!"):
                continue
            total *= self.pred_subset_count(len(cands))
        if include_auxiliary:
            for _, cands in self.rank_holes:
                total *= max(1, len(cands))
        return total

    def log2_size(self) -> float:
        return math.log2(max(1, self.size()))


@dataclass(frozen=True)
class Solution:
    """A total assignment of candidates to holes."""

    exprs: Tuple[Tuple[str, Expr], ...]
    preds: Tuple[Tuple[str, Tuple[Pred, ...]], ...]

    @property
    def expr_map(self) -> Dict[str, Expr]:
        return dict(self.exprs)

    @property
    def pred_map(self) -> Dict[str, Tuple[Pred, ...]]:
        return dict(self.preds)

    @property
    def key(self) -> tuple:
        return (self.exprs, self.preds)

    def describe(self) -> str:
        parts = [f"{name} -> {expr}" for name, expr in self.exprs]
        for name, conj in self.preds:
            rhs = " && ".join(str(p) for p in conj) if conj else "true"
            parts.append(f"{name} -> {rhs}")
        return "; ".join(parts)


@dataclass
class SynthesisTemplate:
    """The paper's template triple, with the inverse program attached.

    Construction fails fast (:class:`repro.analysis.AnalysisError`) when
    the template provably cannot write an output variable the identity
    spec requires: no assignment targets it, the forward program never
    produces it, and it is not an input."""

    program: Program
    inverse: Program
    space: HoleSpace
    prune_report: Optional[object] = None
    """Static-pruning accounting from ``build_template`` (None when
    pruning was disabled)."""
    fwdbwd_report: Optional[object] = None
    """Forward-backward unknowns-analysis report
    (:class:`repro.analysis.fwdbwd.FwdBwdReport`), attached by the PINS
    driver after the spec is derived; None when the pass is disabled."""

    def __post_init__(self) -> None:
        from ..analysis.diagnostics import AnalysisError
        from ..analysis.lint import check_writable_outputs

        entry_defined = (frozenset(self.program.inputs)
                         | ast.assigned_vars(self.program.body))
        diags = check_writable_outputs(self.inverse, entry_defined)
        if diags:
            raise AnalysisError(diags)

    def instantiate(self, solution: Solution) -> Program:
        """Apply a solution to the inverse template (guarded form intact)."""
        body = substitute_stmt(self.inverse.body, solution.expr_map, solution.pred_map)
        residual = ast.stmt_unknowns(body)
        if residual:
            raise ValueError(f"solution leaves holes unfilled: {sorted(residual)}")
        return self.inverse.with_body(body)
