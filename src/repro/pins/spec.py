"""Inversion specifications (the identity spec of Section 2.3).

For program inversion the specification says: after running ``P ; T`` the
template's outputs equal the program's inputs — scalars exactly, arrays
pointwise on ``[0, len)`` where ``len`` is the input length variable::

    spec  =  n^0 = i'^V'  /\\  forall k in [0, n^0): A^0[k] = A'^V'[k]

The checker refutes ``forall X. f => spec`` by testing each *negated
disjunct* for satisfiability together with ``f``; the universal over ``k``
contributes the disjunct ``0 <= k < n^0 /\\ A^0[k] != A'^V'[k]`` with a
fresh symbolic ``k`` — exactly how one encodes it for an SMT solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..concrete.values import ConcreteArray
from ..lang import ast
from ..lang.ast import Pred, Sort, Var, VersionMap
from ..lang.transform import versioned_name

SPEC_INDEX_VAR = "specK"
"""Base name of the fresh universal index used in array disjuncts."""


@dataclass(frozen=True)
class InversionSpec:
    """Identity specification relating inputs of P to outputs of T.

    Variable references on the *input* side (first element of a scalar
    pair, or the length bound of an array pair) are version-0 input
    variables by default; a ``"@"`` prefix (``"@b"``) refers to the
    variable's *final* value instead — used when the meaningful extent of
    an input array is computed by the program (e.g. total payload bytes).
    """

    scalar_pairs: Tuple[Tuple[str, str], ...] = ()
    array_pairs: Tuple[Tuple[str, str, str], ...] = ()  # (in_arr, out_arr, len_var)
    concrete_pairs: Tuple[Tuple[str, str], ...] = ()
    """Scalar pairs checked only by concrete execution (e.g. equality of
    abstract objects, which first-order refutation would spuriously refute
    for lack of extensionality axioms)."""
    extra_out_preds: Tuple[Pred, ...] = ()
    """Optional extra conditions over version-0 inputs / final outputs;
    written with variables named ``x@in`` / ``x@out`` which are rewritten
    to ``x#0`` / ``x#final`` at check time."""

    @staticmethod
    def derive(in_vars: Sequence[str], out_vars: Sequence[str],
               sorts: Mapping[str, Sort]) -> "InversionSpec":
        """Pair inputs with outputs positionally within sort groups.

        Mirrors the paper's syntactic derivation from ``in(A, n)`` and
        ``out(A', i')``: arrays pair with arrays, scalars with scalars;
        every array pair is bounded by the first scalar input.
        """
        in_scalars = [v for v in in_vars if not sorts[v].is_array]
        out_scalars = [v for v in out_vars if not sorts[v].is_array]
        in_arrays = [v for v in in_vars if sorts[v].is_array]
        out_arrays = [v for v in out_vars if sorts[v].is_array]
        if len(in_scalars) != len(out_scalars) or len(in_arrays) != len(out_arrays):
            raise ValueError(
                f"cannot pair inputs {in_vars} with outputs {out_vars}: "
                "sort groups have different sizes"
            )
        if in_arrays and not in_scalars:
            raise ValueError("array inputs need a scalar length variable")
        length = in_scalars[0] if in_scalars else ""
        return InversionSpec(
            scalar_pairs=tuple(zip(in_scalars, out_scalars)),
            array_pairs=tuple((a, b, length) for a, b in zip(in_arrays, out_arrays)),
        )

    # -- symbolic form ---------------------------------------------------------

    def negated_disjuncts(self, final_vmap: VersionMap) -> List[Pred]:
        """The disjuncts of ``not spec``, versioned for a concrete path.

        Each disjunct, conjoined with a path condition, forms one
        satisfiability query; any SAT answer refutes the implication.
        """
        final = dict(final_vmap)

        def in_side(name: str) -> Var:
            if name.startswith("@"):
                base = name[1:]
                return Var(versioned_name(base, final.get(base, 0)))
            return Var(versioned_name(name, 0))

        disjuncts: List[Pred] = []
        for in_var, out_var in self.scalar_pairs:
            disjuncts.append(ast.ne(
                in_side(in_var),
                Var(versioned_name(out_var, final.get(out_var, 0))),
            ))
        k = Var(versioned_name(SPEC_INDEX_VAR, 0))
        for in_arr, out_arr, len_var in self.array_pairs:
            inside = ast.conj([
                ast.le(ast.n(0), k),
                ast.lt(k, in_side(len_var)),
                ast.ne(
                    ast.sel(in_side(in_arr), k),
                    ast.sel(Var(versioned_name(out_arr, final.get(out_arr, 0))), k),
                ),
            ])
            disjuncts.append(inside)
        for pred in self.extra_out_preds:
            disjuncts.append(ast.negate(_version_extra(pred, final)))
        return disjuncts

    # -- concrete form ------------------------------------------------------------

    def check_env(self, env: Mapping[str, Any], final_vmap: VersionMap) -> bool:
        """Evaluate the spec on a final versioned environment."""
        final = dict(final_vmap)

        def val(name: str, version: int) -> Any:
            return env.get(versioned_name(name, version), 0)

        def in_val(name: str) -> Any:
            if name.startswith("@"):
                base = name[1:]
                return val(base, final.get(base, 0))
            return val(name, 0)

        for in_var, out_var in self.scalar_pairs + self.concrete_pairs:
            if in_val(in_var) != val(out_var, final.get(out_var, 0)):
                return False
        for in_arr, out_arr, len_var in self.array_pairs:
            length = in_val(len_var)
            left = in_val(in_arr)
            right = val(out_arr, final.get(out_arr, 0))
            if not isinstance(left, ConcreteArray):
                left = ConcreteArray(default=0)
            if not isinstance(right, ConcreteArray):
                right = ConcreteArray(default=0)
            if not isinstance(length, int) or length < 0:
                return False
            if not left.equal_prefix(right, length):
                return False
        if self.extra_out_preds:
            raise NotImplementedError("extra_out_preds concrete checking")
        return True

    def check_states(self, inputs: Mapping[str, Any], final_env: Mapping[str, Any]) -> bool:
        """Spec over plain (unversioned) states, for round-trip validation."""

        def in_val(name: str) -> Any:
            if name.startswith("@"):
                return final_env.get(name[1:], 0)
            return inputs.get(name, 0)

        for in_var, out_var in self.scalar_pairs + self.concrete_pairs:
            if in_val(in_var) != final_env.get(out_var, 0):
                return False
        for in_arr, out_arr, len_var in self.array_pairs:
            length = in_val(len_var)
            left = in_val(in_arr)
            right = final_env.get(out_arr)
            if not isinstance(left, ConcreteArray) or not isinstance(right, ConcreteArray):
                return False
            if not left.equal_prefix(right, length):
                return False
        return True


def _version_extra(pred: Pred, final: Dict[str, int]) -> Pred:
    from ..lang.transform import rename_pred

    renaming = {}
    for name in ast.expr_vars(pred):
        if name.endswith("@in"):
            renaming[name] = versioned_name(name[:-3], 0)
        elif name.endswith("@out"):
            base = name[:-4]
            renaming[name] = versioned_name(base, final.get(base, 0))
    return rename_pred(pred, renaming)
