"""Termination constraints (Section 2.3, "Termination constraints").

For every template loop ``l = while(*){assume(phi_l); B_l}`` whose guard
is an unknown, we introduce an unknown ranking function ``rho_l`` (ranging
over ``Phi_r``, derived from ``Phi_p``) and an unknown loop invariant
``iota_l`` (a conjunction over ``Phi_p``, defaulting to ``true``), and
generate:

* ``bounded(l)``:  ``forall X. phi_l => rho_l >= 0``;
* ``decrease(l)``: for each loop-body path ``(f, V)`` (inner loops take
  their exit branch), ``iota_l /\\ phi_l /\\ f => rho_l^V < rho_l^0``;
* ``preserve(l)``: for each body path, ``iota_l /\\ phi_l /\\ f => iota_l^V``;
* ``init(l)``: for each prefix of an explored path up to an entry of
  ``l``, the invariant holds at entry (added incrementally by the main
  loop as paths are explored, mirroring the paper's treatment).

``Phi_r`` derivation follows the paper: each inequality in ``Phi_p`` is
rewritten to ``e >= 0`` form and ``e`` is collected (``n > s`` contributes
``n - s - 1``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..lang import ast
from ..lang.ast import (
    Cmp,
    CmpOp,
    Expr,
    HoleExpr,
    HolePred,
    Not,
    Pred,
    Sort,
    VersionMap,
    freeze_vmap,
)
from ..symexec.executor import enumerate_paths, loop_guard_and_body, loops_of
from ..symexec.paths import Guard, Path
from .constraints import Constraint


def derive_ranking_candidates(phi_p: Sequence[Pred]) -> Tuple[Expr, ...]:
    """Convert each inequality in Phi_p into a candidate ranking function."""
    out: List[Expr] = []
    seen = set()

    def push(e: Expr) -> None:
        if e not in seen:
            seen.add(e)
            out.append(e)

    for pred in phi_p:
        if not isinstance(pred, Cmp):
            continue
        a, b = pred.left, pred.right
        if pred.op is CmpOp.LT:  # a < b  ->  b - a - 1 >= 0
            push(ast.sub(ast.sub(b, a), ast.n(1)))
        elif pred.op is CmpOp.LE:  # a <= b  ->  b - a >= 0
            push(ast.sub(b, a))
        elif pred.op is CmpOp.GT:  # a > b  ->  a - b - 1 >= 0
            push(ast.sub(ast.sub(a, b), ast.n(1)))
        elif pred.op is CmpOp.GE:  # a >= b  ->  a - b >= 0
            push(ast.sub(a, b))
    return tuple(out)


def rank_hole_name(loop_id: str) -> str:
    return f"rank!{loop_id}"


def invariant_hole_name(loop_id: str) -> str:
    return f"inv!{loop_id}"


def template_loops(desugared_body: ast.Stmt) -> List[Tuple[str, Pred, ast.Stmt]]:
    """Loops with unknown guards: (loop_id, guard, body-after-guard)."""
    found = []
    for loop in loops_of(desugared_body):
        try:
            guard, body = loop_guard_and_body(loop)
        except ValueError:
            continue
        if ast.expr_unknowns(guard):
            found.append((loop.loop_id, guard, body))
    return found


def terminate(desugared_body: ast.Stmt, decls: Mapping[str, Sort],
              max_body_paths: int = 64, body_unroll: int = 1) -> List[Constraint]:
    """The paper's ``terminate(P)``: bounded + decrease + preserve.

    ``body_unroll`` bounds inner-loop iterations inside loop-body paths.
    The paper always takes the inner exit branch (``body_unroll = 0``);
    allowing one inner iteration keeps the set finite while catching
    outer-loop candidates whose divergence only shows once the inner loop
    actually runs (e.g. an outer counter reset to a constant).
    """
    constraints: List[Constraint] = []
    zero_vmap = freeze_vmap({v: 0 for v in decls})
    initial = {v: 0 for v in decls}
    for loop_id, guard, body in template_loops(desugared_body):
        rank = rank_hole_name(loop_id)
        inv = invariant_hole_name(loop_id)
        guard_at_zero = _version_guard(guard, zero_vmap)
        rank_at_zero = HoleExpr(rank, zero_vmap)
        inv_at_zero = HolePred(inv, zero_vmap)
        # bounded(l):  phi_l  =>  rho_l >= 0    (negated goal: rho_l < 0)
        constraints.append(Constraint(
            kind="bounded",
            label=f"bounded!{loop_id}",
            items=(Guard(guard_at_zero),),
            neg_goal=Cmp(CmpOp.LT, rank_at_zero, ast.n(0)),
        ))
        body_paths = list(enumerate_paths(body, max_unroll=body_unroll,
                                          initial_vmap=initial))[:max_body_paths]
        for idx, path in enumerate(body_paths):
            head = (Guard(inv_at_zero), Guard(guard_at_zero))
            # decrease(l): iota /\\ phi_l /\\ f  =>  rho_l^V < rho_l^0
            constraints.append(Constraint(
                kind="decrease",
                label=f"decrease!{loop_id}!{idx}",
                items=head + path.items,
                final_vmap=path.final_vmap,
                neg_goal=Cmp(CmpOp.GE, HoleExpr(rank, path.final_vmap), rank_at_zero),
            ))
            # preserve(l): iota /\\ phi_l /\\ f  =>  iota^V
            constraints.append(Constraint(
                kind="preserve",
                label=f"preserve!{loop_id}!{idx}",
                items=head + path.items,
                final_vmap=path.final_vmap,
                neg_goal=Not(HolePred(inv, path.final_vmap)),
            ))
    return constraints


def init_constraints(path: Path, desugared_body: ast.Stmt,
                     label_prefix: str) -> List[Constraint]:
    """Invariant-initiation constraints for a freshly explored path.

    For each loop entry recorded on the path, the prefix of the path up
    to that entry must establish the loop's invariant.
    """
    loop_ids = {loop_id for loop_id, _g, _b in template_loops(desugared_body)}
    constraints: List[Constraint] = []
    for idx, (loop_id, prefix_len, vmap_entry) in enumerate(path.loop_entries):
        if loop_id not in loop_ids:
            continue
        inv = invariant_hole_name(loop_id)
        constraints.append(Constraint(
            kind="init",
            label=f"{label_prefix}!init!{loop_id}!{idx}",
            items=tuple(path.items[:prefix_len]),
            final_vmap=vmap_entry,
            neg_goal=Not(HolePred(inv, vmap_entry)),
        ))
    return constraints


def _version_guard(guard: Pred, zero_vmap: VersionMap) -> Pred:
    """Version an unknown loop guard at the all-zero version map."""
    from ..lang.transform import version_pred

    return version_pred(guard, dict(zero_vmap))
