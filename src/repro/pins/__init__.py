"""PINS: the Path-based Inductive Synthesis algorithm (Section 2)."""

from .algorithm import (
    BUDGET_EXHAUSTED,
    MAX_ITERATIONS,
    NO_SOLUTION,
    PATHS_EXHAUSTED,
    STABILIZED,
    STATS_COUNTER_MAP,
    PinsConfig,
    PinsResult,
    PinsStats,
    StatsInconsistency,
    build_template,
    check_stats_invariants,
    run_pins,
)
from .checker import HOLDS, UNKNOWN, VIOLATED, CheckOutcome, ConstraintChecker
from .constraints import Constraint, safepath
from .pickone import infeasible_score, pick_one, pick_random
from .solve import Enumerator, SolveSession, SolveStats, solve
from .spec import InversionSpec
from .task import SynthesisTask
from .template import HoleSpace, Solution, SynthesisTemplate
from .termination import (
    derive_ranking_candidates,
    init_constraints,
    invariant_hole_name,
    rank_hole_name,
    terminate,
)

__all__ = [name for name in dir() if not name.startswith("_")]
