"""Executable models for the axiom libraries (strings, trig, arith)."""

from fractions import Fraction

import pytest

from repro.axioms.arith import DIV, MUL, mul_div_axioms
from repro.axioms.registry import EMPTY_REGISTRY, Extern, ExternRegistry
from repro.axioms.strings import STRING_EXTERNS, string_axioms
from repro.axioms.trig import COS, SIN, trig_axioms
from repro.lang.ast import Sort


def test_registry_lookup_and_duplicates():
    reg = ExternRegistry((MUL,))
    assert "mul" in reg
    assert reg.get("mul")(3, 4) == 12
    with pytest.raises(ValueError):
        reg.register(MUL)
    with pytest.raises(KeyError):
        reg.get("nope")


def test_registry_merge():
    merged = ExternRegistry((MUL,)).merged_with(ExternRegistry((DIV,)))
    assert "mul" in merged and "div" in merged


def test_mul_div_cancel_model():
    for a in range(-4, 5):
        for b in (1, 2, 3, -2):
            assert DIV(MUL(a, b), b) == a


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        DIV(1, 0)


def test_trig_model_on_unit_circle():
    for t in range(6):
        assert COS(t) ** 2 + SIN(t) ** 2 == 1


def test_string_model_satisfies_axioms():
    single = STRING_EXTERNS.get("single")
    append = STRING_EXTERNS.get("append")
    strlen = STRING_EXTERNS.get("strlen")
    first = STRING_EXTERNS.get("first")
    char_at = STRING_EXTERNS.get("char_at")
    s = append(append(single(1), 0), 1)
    assert strlen(s) == 3
    assert first(s) == 1
    assert [char_at(s, j) for j in range(3)] == [1, 0, 1]
    assert strlen(append(s, 1)) == strlen(s) + 1


def test_findidx_model():
    from repro.concrete.values import ConcreteArray

    findidx = STRING_EXTERNS.get("findidx")
    d = ConcreteArray({0: (0,), 1: (1,), 2: (0, 1)}, default=())
    assert findidx(d, 3, (0, 1)) == 2
    assert findidx(d, 2, (0, 1)) == -1  # beyond the live prefix
    assert findidx(d, 3, (1, 1)) == -1


def test_axiom_sets_well_formed():
    for axioms in (mul_div_axioms(), trig_axioms(), string_axioms()):
        for axiom in axioms:
            assert axiom.name
            assert axiom.normalized_patterns()


def test_extern_without_impl_raises():
    ghost = Extern("ghost", (Sort.INT,), Sort.INT, None)
    with pytest.raises(RuntimeError):
        ghost(1)
