"""ConcreteArray and input-coercion tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.concrete.values import ConcreteArray, coerce_input, default_value
from repro.lang.ast import Sort


def test_from_list_and_get():
    a = ConcreteArray.from_list([5, 6, 7])
    assert a.get(0) == 5 and a.get(2) == 7
    assert a.get(99) == 0  # default


def test_set_is_persistent():
    a = ConcreteArray.from_list([1])
    b = a.set(0, 9)
    assert a.get(0) == 1 and b.get(0) == 9


def test_equality_ignores_representation():
    a = ConcreteArray({0: 1, 5: 0})
    b = ConcreteArray({0: 1})
    assert a == b  # explicit default entries don't matter


def test_prefix_and_equal_prefix():
    a = ConcreteArray.from_list([1, 2, 3])
    b = ConcreteArray.from_list([1, 2, 9])
    assert a.prefix(2) == [1, 2]
    assert a.equal_prefix(b, 2)
    assert not a.equal_prefix(b, 3)


def test_not_hashable():
    with pytest.raises(TypeError):
        hash(ConcreteArray())


def test_defaults_per_sort():
    assert default_value(Sort.INT) == 0
    assert isinstance(default_value(Sort.ARRAY), ConcreteArray)
    assert default_value(Sort.STR) == ""
    assert default_value(Sort.OBJ) is None


def test_coerce_input_lists():
    arr = coerce_input([1, 2], Sort.ARRAY)
    assert isinstance(arr, ConcreteArray) and arr.get(1) == 2
    assert coerce_input(5, Sort.INT) == 5


@given(st.lists(st.integers(-5, 5), max_size=8), st.integers(0, 8))
@settings(max_examples=60, deadline=None)
def test_prefix_matches_list_semantics(values, length):
    a = ConcreteArray.from_list(values)
    expected = (values + [0] * length)[:length]
    assert a.prefix(length) == expected


@given(st.lists(st.integers(-3, 3), max_size=6),
       st.integers(0, 5), st.integers(-3, 3))
@settings(max_examples=60, deadline=None)
def test_set_get_roundtrip(values, idx, val):
    a = ConcreteArray.from_list(values).set(idx, val)
    assert a.get(idx) == val
