"""Concrete interpreter tests."""

from fractions import Fraction

import pytest

from repro.axioms.arith import arith_registry
from repro.concrete.interp import (
    AssumeFailed,
    InterpError,
    Interpreter,
    OutOfFuel,
    run_path,
)
from repro.concrete.values import ConcreteArray
from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program, parse_stmt
from repro.symexec.paths import Def, Guard


def run(src, inputs):
    program = parse_program(src)
    return Interpreter().run(program, inputs)


def test_simple_loop():
    env = run("""
    program t [int n; int s; int i] {
      in(n);
      s, i := 0, 0;
      while (i < n) { i := i + 1; s := s + i; }
      out(s);
    }
    """, {"n": 4})
    assert env["s"] == 10


def test_parallel_assignment_uses_old_values():
    env = run("program t [int x; int y] { x, y := 1, 2; x, y := y, x; }", {})
    assert env["x"] == 2 and env["y"] == 1


def test_array_update_is_functional():
    program = parse_program("""
    program t [array A; array B] {
      B := upd(A, 0, 9);
    }
    """)
    a = ConcreteArray.from_list([1, 2])
    env = Interpreter().run(program, {"A": a})
    assert env["B"].get(0) == 9
    assert env["A"].get(0) == 1  # original untouched


def test_assume_failure_raises():
    with pytest.raises(AssumeFailed):
        run("program t [int x] { in(x); assume(x > 0); }", {"x": 0})


def test_division_semantics_floor():
    env = run("program t [int a; int b] { a := 0 - 7; b := a / 2; }", {})
    assert env["b"] == -4
    env = run("program t [int a; int b] { a := 0 - 7; b := a % 2; }", {})
    assert env["b"] == 1


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        run("program t [int a] { a := 1 / 0; }", {})


def test_fuel_exhaustion():
    interp = Interpreter(fuel=100)
    program = parse_program("program t [int x] { while (0 < 1) { x := x + 1; } }")
    with pytest.raises(OutOfFuel):
        interp.run(program, {})


def test_nondeterministic_forms_rejected():
    program = parse_program("program t [int x] { while (*) { x := 1; } }")
    with pytest.raises(InterpError):
        Interpreter().run(program, {})


def test_extern_call():
    env_prog = parse_program("program t [int a; int b] { b := mul(a, 3); }")
    env = Interpreter(arith_registry()).run(env_prog, {"a": 5})
    assert env["b"] == 15


def test_extern_failure_becomes_interp_error():
    program = parse_program("program t [int a] { a := div(1, 0); }")
    with pytest.raises(InterpError):
        Interpreter(arith_registry()).run(program, {})


def test_rational_arithmetic_allowed():
    program = parse_program("program t [int a; int b] { b := div(a, 2) + 1; }")
    env = Interpreter(arith_registry()).run(program, {"a": 5})
    assert env["b"] == Fraction(7, 2)


def test_type_errors_raise_interp_error():
    program = parse_program("program t [array A; int x] { x := A + 1; }")
    with pytest.raises(InterpError):
        Interpreter().run(program, {"A": []})


def test_run_path_follows_and_diverges():
    sorts = {"x": ast.Sort.INT, "y": ast.Sort.INT}
    items = (
        Def("y", 1, parse_expr("x") and ast.add(ast.Var("x#0"), ast.n(1))),
        Guard(ast.lt(ast.Var("y#1"), ast.n(10))),
    )
    env = run_path(items, {"x": 3}, sorts)
    assert env is not None and env["y#1"] == 4
    assert run_path(items, {"x": 100}, sorts) is None


def test_run_path_substitutes_holes():
    sorts = {"x": ast.Sort.INT, "y": ast.Sort.INT}
    items = (
        Def("y", 1, ast.HoleExpr("e1", (("x", 0),))),
    )
    env = run_path(items, {"x": 3}, sorts,
                   expr_solution={"e1": parse_expr("x + 10")})
    assert env["y#1"] == 13
