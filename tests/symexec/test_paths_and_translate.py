"""Path-condition and translation tests."""

import pytest

from repro.axioms.strings import STRING_EXTERNS
from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred
from repro.smt import terms as T
from repro.symexec.paths import Def, Guard, Path, path_variables, substitute_items
from repro.symexec.translate import TranslationError, Translator

SORTS = {"x": ast.Sort.INT, "A": ast.Sort.ARRAY, "s": ast.Sort.STR,
         "D": ast.Sort.STRARRAY}


def test_path_hashable_and_unknowns():
    items = (Def("x", 1, ast.HoleExpr("e1", (("x", 0),))),
             Guard(ast.HolePred("p1", (("x", 1),))))
    p = Path(items, (("x", 1),))
    assert p == Path(items, (("x", 1),))
    assert p.unknowns == frozenset({"e1", "p1"})
    assert p.final_version("x") == 1
    assert p.final_version("missing") == 0


def test_substitute_items_defs_become_equalities():
    items = (Def("x", 1, ast.n(5)), Guard(ast.lt(ast.Var("x#1"), ast.n(9))))
    ground = substitute_items(items, {}, {})
    assert ground[0] == ast.eq(ast.Var("x#1"), ast.n(5))
    assert ground[1] == ast.lt(ast.Var("x#1"), ast.n(9))


def test_substitute_items_resolves_holes_with_vmaps():
    items = (Def("x", 2, ast.HoleExpr("e1", (("x", 1),))),)
    ground = substitute_items(items, {"e1": parse_expr("x + 1")}, {})
    # The candidate's x is renamed to version 1 per the hole's vmap.
    assert ground[0] == ast.eq(ast.Var("x#2"),
                               ast.add(ast.Var("x#1"), ast.n(1)))


def test_path_variables():
    items = (Def("x", 1, parse_expr("0")),
             Guard(ast.lt(ast.Var("x#1"), ast.Var("n#0"))))
    assert path_variables(items) == frozenset({"x", "n"})


def test_translator_versioned_sorts():
    tr = Translator(SORTS)
    term = tr.expr(ast.Var("x#3"))
    assert term.sort is T.INT
    arr = tr.expr(ast.Var("A#0"))
    assert arr.sort is T.ARR


def test_translator_rejects_holes():
    tr = Translator(SORTS)
    with pytest.raises(TranslationError):
        tr.expr(ast.Unknown("e1"))
    with pytest.raises(TranslationError):
        tr.pred(ast.UnknownPred("p1"))


def test_translator_rejects_undeclared():
    tr = Translator(SORTS)
    with pytest.raises(TranslationError):
        tr.expr(ast.Var("ghost#0"))


def test_translator_extern_signatures():
    tr = Translator(SORTS, STRING_EXTERNS)
    term = tr.expr(parse_expr("strlen(sel(D, 0))").__class__ and
                   ast.FunApp("strlen", (ast.sel(ast.Var("D#0"), ast.n(0)),)))
    assert term.sort is T.INT
    str_term = tr.expr(ast.FunApp("single", (ast.n(1),)))
    assert str_term.sort is T.STR


def test_translator_comparison_sorts():
    tr = Translator(SORTS)
    eq = tr.pred(ast.eq(ast.Var("s#0"), ast.Var("s#0")))
    assert eq is T.TRUE  # same term
    with pytest.raises(TranslationError):
        tr.pred(ast.lt(ast.Var("s#0"), ast.Var("s#0")))  # ordering on strings


def test_translator_arith_ops():
    tr = Translator(SORTS)
    t = tr.expr(parse_expr("(x / 4) * 3 + x % 2"))
    assert t.sort is T.INT
