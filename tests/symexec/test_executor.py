"""Symbolic-execution tests: Figure 3 rules, guidance, enumeration."""

import random

import pytest

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.lang.transform import desugar_program
from repro.symexec.executor import (
    ExecConfig,
    SymbolicExecutor,
    count_paths,
    enumerate_paths,
    loop_guard_and_body,
    loops_of,
)
from repro.symexec.paths import Def, Guard

STRAIGHT = desugar_program(parse_program("""
program t [int x; int y] {
  x := 1;
  y := x + 1;
}
"""))

LOOPY = desugar_program(parse_program("""
program t [int n; int i] {
  in(n);
  i := 0;
  while (i < n) {
    i := i + 1;
  }
  out(i);
}
"""))


def test_assn_rule_versions_monotonically():
    ex = SymbolicExecutor(STRAIGHT)
    path = ex.find_path({}, {}, set())
    defs = [i for i in path.items if isinstance(i, Def)]
    assert defs[0].versioned_var == "x#1"
    assert defs[1].versioned_var == "y#1"
    # y's RHS is evaluated under the version map after x's assignment.
    assert "x#1" in ast.expr_vars(defs[1].expr)


def test_exit_rule_avoids_explored_paths():
    ex = SymbolicExecutor(LOOPY)
    rng = random.Random(0)
    seen = set()
    lengths = set()
    for _ in range(3):
        path = ex.find_path({}, {}, seen, rng)
        assert path is not None
        assert path not in seen
        seen.add(path)
        lengths.add(len(path.items))
    assert len(lengths) == 3  # different unroll counts


def test_assume_rule_prunes_infeasible():
    program = desugar_program(parse_program("""
    program t [int x] {
      x := 1;
      if (x = 2) { x := 99; } else { x := 3; }
    }
    """))
    ex = SymbolicExecutor(program)
    path = ex.find_path({}, {}, set(), random.Random(0))
    # Only the else-branch is feasible: x ends at version with value 3.
    final_def = [i for i in path.items if isinstance(i, Def)][-1]
    assert final_def.expr == ast.n(3)


def test_guided_by_solution():
    program = desugar_program(parse_program("""
    program t [int x; int y] {
      x := 5;
      if ([p1]) { y := 1; } else { y := 2; }
    }
    """))
    ex = SymbolicExecutor(program)
    # With p1 -> (x > 10), only the else branch is feasible.
    sol = {"p1": (parse_pred("x > 10"),)}
    for seed in range(4):
        path = ex.find_path({}, sol, set(), random.Random(seed))
        final_def = [i for i in path.items if isinstance(i, Def)][-1]
        assert final_def.expr == ast.n(2)


def test_loop_entry_records():
    ex = SymbolicExecutor(LOOPY)
    path = ex.find_path({}, {}, set(), random.Random(1))
    assert len(path.loop_entries) == 1
    loop_id, prefix_len, vmap = path.loop_entries[0]
    assert prefix_len <= len(path.items)
    assert dict(vmap)["i"] == 1  # i assigned once before the loop


def test_concrete_cosimulation_reduces_smt_calls():
    config = ExecConfig()
    with_seeds = SymbolicExecutor(LOOPY, config=config,
                                  seed_inputs=[{"n": 2}, {"n": 0}])
    path = with_seeds.find_path({}, {}, set(), random.Random(0))
    assert path is not None
    assert with_seeds.concrete_hits > 0


def test_enumerate_paths_unroll_bounds():
    body = LOOPY.body
    assert sum(1 for _ in enumerate_paths(body, max_unroll=0)) == 1
    assert sum(1 for _ in enumerate_paths(body, max_unroll=3)) == 4


def test_count_paths_nested_explosion():
    program = desugar_program(parse_program("""
    program t [int a; int b] {
      while (a < 3) {
        while (b < 3) { b := b + 1; }
        a := a + 1;
      }
    }
    """))
    # Nested loops: counts grow quickly with the unroll bound.
    c1 = count_paths(program.body, 1)
    c2 = count_paths(program.body, 2)
    c3 = count_paths(program.body, 3)
    assert c1 < c2 < c3


def test_loops_of_and_guard_split():
    loops = loops_of(LOOPY.body)
    assert len(loops) == 1
    guard, body = loop_guard_and_body(loops[0])
    assert guard == parse_pred("i < n")


def test_max_items_bound_prevents_runaway():
    program = desugar_program(parse_program("""
    program t [int i] {
      while (i >= 0) { i := i + 1; }
    }
    """))
    ex = SymbolicExecutor(program, config=ExecConfig(max_items=20, max_unroll=50,
                                                     max_backtracks=100))
    path = ex.find_path({}, {}, set(), random.Random(0))
    assert path is None or len(path.items) <= 20
