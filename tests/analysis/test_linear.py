"""Affine forms and the linear refutation engine (Fourier–Motzkin).

The engine is refutation-only: every ``True`` from ``linear_unsat`` /
``fm_unsat`` must be a genuine proof of emptiness, and anything the
engine cannot see (non-linear terms, undecidable select indices) must
come back ``False``, never a wrong refutation.  The cross-check tests
mirror real ground shapes from the runlength/sumi screens.
"""

import pytest

from repro.analysis.linear import (
    Affine,
    LinearRefuter,
    affine_cmp,
    affine_expr,
    affine_pred,
    fm_unsat,
    linear_unsat,
)
from repro.lang import ast
from repro.lang.ast import ArithOp, BinOp, CmpOp, Sort, Var

INT = Sort.INT


def div(a, b):
    return BinOp(ArithOp.DIV, a, b)


def mod(a, b):
    return BinOp(ArithOp.MOD, a, b)


# -- affine forms -------------------------------------------------------------


def test_affine_arithmetic_cancels_terms():
    x, y = Affine.of_var("x"), Affine.of_var("y")
    s = x + y - x
    assert s == y
    assert (x - x).is_const and (x - x).const == 0
    assert x.scale(3).terms == (("x", 3),)


def test_affine_exact_div_requires_all_divisible():
    a = Affine.make({"x": 4, "y": -6}, 8)
    half = a.exact_div(2)
    assert half == Affine.make({"x": 2, "y": -3}, 4)
    assert a.exact_div(3) is None  # 4 % 3 != 0
    assert a.exact_div(0) is None
    # Negative constants follow floor semantics exactly.
    b = Affine.make({"x": 2}, -4)
    assert b.exact_div(2) == Affine.make({"x": 1}, -2)


def test_affine_expr_folds_definitions():
    env = {"i#1": Affine.make({"i#0": 1}, 1)}  # i#1 = i#0 + 1
    got = affine_expr(ast.sub(Var("i#1"), Var("i#0")), env)
    assert got == Affine.of_const(1)


def test_affine_expr_rejects_nonlinear_and_non_int():
    assert affine_expr(ast.mul(Var("x"), Var("y")), {}) is None
    assert affine_expr(Var("A"), {}, is_int=lambda n: n != "A") is None
    # Division folds only when exact for every valuation.
    assert affine_expr(div(ast.mul(Var("x"), ast.n(4)), ast.n(2)), {}) \
        == Affine.make({"x": 2}, 0)
    assert affine_expr(div(Var("x"), ast.n(2)), {}) is None
    # x*3 % 3 is 0 for every x; x % 2 is unknown.
    assert affine_expr(mod(ast.mul(Var("x"), ast.n(3)), ast.n(3)), {}) \
        == Affine.of_const(0)
    assert affine_expr(mod(Var("x"), ast.n(2)), {}) is None


def test_affine_cmp_decides_constant_difference_only():
    x = Affine.of_var("x")
    assert affine_cmp(CmpOp.LT, x, x + Affine.of_const(1)) is True
    assert affine_cmp(CmpOp.GE, x, x + Affine.of_const(1)) is False
    assert affine_cmp(CmpOp.LT, x, Affine.of_var("y")) is None


def test_affine_pred_three_valued_connectives():
    env = {}
    tauto = ast.le(Var("x"), ast.add(Var("x"), ast.n(1)))
    unknown = ast.le(Var("x"), Var("y"))
    assert affine_pred(tauto, env) is True
    assert affine_pred(ast.Not(tauto), env) is False
    assert affine_pred(ast.conj([tauto, unknown]), env) is None
    assert affine_pred(ast.conj([ast.Not(tauto), unknown]), env) is False
    assert affine_pred(ast.Or((tauto, unknown)), env) is True


# -- fm_unsat -----------------------------------------------------------------


def test_fm_refutes_relational_cycle():
    # x < y, y < z, z < x has no model.
    ineqs = [((("x", 1), ("y", -1)), 1),
             ((("y", 1), ("z", -1)), 1),
             ((("x", -1), ("z", 1)), 1)]
    assert fm_unsat(ineqs)


def test_fm_open_system_is_not_refuted():
    ineqs = [((("x", 1), ("y", -1)), 1)]  # x < y: satisfiable
    assert not fm_unsat(ineqs)


def test_integer_tightening_catches_rational_gaps():
    # 2x >= 5 and 2x <= 5 has the rational point x=2.5 but no integer
    # one; gcd/floor tightening at translation time turns it into
    # x >= 3 and x <= 2, which Fourier-Motzkin then refutes.
    preds = [ast.ge(ast.mul(ast.n(2), Var("x#0")), ast.n(5)),
             ast.le(ast.mul(ast.n(2), Var("x#0")), ast.n(5))]
    assert linear_unsat(preds)


def test_fm_respects_budget_caps():
    ineqs = [((("x", 1), ("y", -1)), 1),
             ((("y", 1), ("x", -1)), 1)]
    assert not fm_unsat(ineqs, max_ineqs=1)  # over budget: no proof


# -- linear_unsat / LinearRefuter ---------------------------------------------


def test_linear_unsat_relational_contradiction():
    preds = [ast.lt(Var("mp#1"), Var("m#0")),
             ast.ge(Var("mp#1"), Var("m#0"))]
    assert linear_unsat(preds)


def test_linear_unsat_through_ssa_definitions():
    # mp#2 = mp#1 + 1 makes mp#2 <= mp#1 impossible.
    preds = [ast.eq(Var("mp#2"), ast.add(Var("mp#1"), ast.n(1))),
             ast.le(Var("mp#2"), Var("mp#1"))]
    assert linear_unsat(preds)


def test_linear_unsat_never_refutes_satisfiable_system():
    preds = [ast.ge(Var("x#0"), ast.n(0)),
             ast.le(Var("x#0"), ast.n(3))]
    assert not linear_unsat(preds)


def test_linear_unsat_self_referential_equality_is_not_a_definition():
    # x = x + 1 must refute, not be absorbed as a definition.
    preds = [ast.eq(Var("x#0"), ast.add(Var("x#0"), ast.n(1)))]
    assert linear_unsat(preds)


def test_opaque_literals_refute_propositionally():
    # sel(A,i) = sel(B,j) both asserted and denied: the atoms are
    # outside the linear fragment, but the clash is propositional.
    atom = ast.eq(ast.sel(Var("A#0"), Var("i#0")),
                  ast.sel(Var("B#0"), Var("j#0")))
    is_int = lambda n: not n.startswith(("A", "B"))
    assert linear_unsat([atom, ast.Not(atom)], is_int)
    # NE is canonicalised onto the EQ literal.
    ne = ast.ne(ast.sel(Var("A#0"), Var("i#0")),
                ast.sel(Var("B#0"), Var("j#0")))
    assert linear_unsat([atom, ne], is_int)
    assert not linear_unsat([atom], is_int)


def test_read_over_write_resolution():
    # N#1 = upd(upd(N#0, 0, 7), 1, 9); reading index 0 must see 7.
    is_int = lambda n: not n.startswith("N")
    upd2 = ast.upd(ast.upd(Var("N#0"), ast.n(0), ast.n(7)),
                   ast.n(1), ast.n(9))
    preds = [ast.eq(Var("N#1"), upd2),
             ast.eq(Var("r#0"), ast.sel(Var("N#1"), ast.n(0))),
             ast.le(Var("r#0"), ast.n(0))]
    assert linear_unsat(preds, is_int)
    # Reading index 1 sees the outer write.
    preds9 = [ast.eq(Var("N#1"), upd2),
              ast.eq(Var("r#0"), ast.sel(Var("N#1"), ast.n(1))),
              ast.ne(Var("r#0"), ast.n(9))]
    assert linear_unsat(preds9, is_int)


def test_select_congruence_via_term_variables():
    # Two structurally equal irreducible selects share one term
    # variable, so x = sel(A,i), y = sel(A,i), x < y is refutable.
    is_int = lambda n: not n.startswith("A")
    preds = [ast.eq(Var("x#0"), ast.sel(Var("A#0"), Var("i#0"))),
             ast.eq(Var("y#0"), ast.sel(Var("A#0"), Var("i#0"))),
             ast.lt(Var("x#0"), Var("y#0"))]
    assert linear_unsat(preds, is_int)


def test_undecidable_select_index_is_not_refuted():
    # sel over an update at a symbolic index whose offset from the read
    # index is unknown: the engine must abstain.
    is_int = lambda n: not n.startswith("A")
    preds = [ast.eq(Var("A#1"), ast.upd(Var("A#0"), Var("i#0"), ast.n(7))),
             ast.eq(Var("x#0"), ast.sel(Var("A#1"), Var("j#0"))),
             ast.ne(Var("x#0"), ast.n(7))]
    assert not linear_unsat(preds, is_int)


def test_refuter_guard_disjunction_prunes_branches():
    # (x <= 0 or x >= 5) and 1 <= x <= 4 is empty; each DNF branch
    # falls to Fourier-Motzkin separately.
    preds = [ast.Or((ast.le(Var("x#0"), ast.n(0)),
                     ast.ge(Var("x#0"), ast.n(5)))),
             ast.ge(Var("x#0"), ast.n(1)),
             ast.le(Var("x#0"), ast.n(4))]
    assert linear_unsat(preds)
    preds_open = preds[:-1]
    assert not linear_unsat(preds_open)


def test_refuter_width_cap_drops_facts_soundly():
    # With width 1 the disjunction cannot expand; the remaining facts
    # alone are satisfiable, so the answer must be False (not a crash,
    # not a bogus refutation).
    preds = [ast.Or((ast.le(Var("x#0"), ast.n(0)),
                     ast.ge(Var("x#0"), ast.n(5)))),
             ast.ge(Var("x#0"), ast.n(1)),
             ast.le(Var("x#0"), ast.n(4))]
    r = LinearRefuter(width=1)
    assert r.unsat(preds) is False
