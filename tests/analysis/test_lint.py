"""One unit test per linter diagnostic kind, plus suite-wide cleanliness."""

import pytest

from repro.lang.ast import Sort
from repro.lang.parser import parse_program
from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    failing,
    has_errors,
    worst_severity,
)
from repro.analysis.lint import (
    DEAD_STORE,
    DECL_CONFLICT,
    DUPLICATE_IO,
    SORT_ERROR,
    STATIC_FALSE,
    STUCK_LOOP,
    UNDECLARED_VAR,
    UNWRITABLE_OUTPUT,
    USE_BEFORE_DEF,
    check_writable_outputs,
    lint_program,
    lint_template,
)
from repro.analysis.sorts import Signature
from repro.analysis.suitelint import lint_suite, run_suite_lint


def codes(diags):
    return [d.code for d in diags]


def only(diags, code):
    found = [d for d in diags if d.code == code]
    assert found, f"expected a {code} diagnostic in {[str(d) for d in diags]}"
    return found[0]


def test_use_before_def_located():
    p = parse_program("program p [int x; int y] { y := x + 1; out(y); }")
    d = only(lint_program(p), USE_BEFORE_DEF)
    assert d.severity == ERROR
    assert d.line == 1 and "'x'" in d.message
    assert d.program == "p"


def test_use_before_def_spares_arrays_and_inputs():
    p = parse_program(
        "program p [int x; array A] { in(x); A := upd(A, 0, x); out(A); }")
    assert USE_BEFORE_DEF not in codes(lint_program(p))


def test_sort_error_on_assignment_mismatch():
    p = parse_program("program p [int x; array A] { in(A); x := A; out(x); }")
    d = only(lint_program(p), SORT_ERROR)
    assert d.severity == ERROR and d.line == 2
    assert "ARRAY" in d.message and "'x'" in d.message


def test_sort_error_line_within_parallel_assign():
    p = parse_program(
        "program p [int x; int y; array A] "
        "{ in(A); x, y := 0, A; out(x); }")
    d = only(lint_program(p), SORT_ERROR)
    # Parallel assignment: first component is line 2, second line 3.
    assert d.line == 3


def test_sort_error_on_bad_extern_argument():
    p = parse_program("program p [int x; array A] { in(A); x := f(A); out(x); }")
    sigs = {"f": Signature((Sort.INT,), Sort.INT)}
    d = only(lint_program(p, externs=sigs), SORT_ERROR)
    assert d.severity == ERROR
    # Without signatures the same call lints clean.
    assert SORT_ERROR not in codes(lint_program(p))


def test_unwritable_output():
    p = parse_program("program p [int x; int y] { in(x); out(y); }")
    d = only(lint_program(p), UNWRITABLE_OUTPUT)
    assert d.severity == ERROR and "'y'" in d.message
    # The fail-fast subset sees exactly the same finding.
    sub = check_writable_outputs(p)
    assert codes(sub) == [UNWRITABLE_OUTPUT]
    # ... and entry_defined context clears it.
    assert check_writable_outputs(p, entry_defined=("y",)) == []


def test_undeclared_var_reported_once():
    p = parse_program("program p [int x] { in(x); y := x; y := y + 1; out(y); }")
    found = [d for d in lint_program(p) if d.code == UNDECLARED_VAR]
    assert len(found) == 1 and "'y'" in found[0].message


def test_decl_conflict_between_program_and_template():
    prog = parse_program("program p [array A] { in(A); out(A); }")
    inv = parse_program("program q [int A] { in(A); out(A); }")
    d = only(lint_template(prog, inv), DECL_CONFLICT)
    assert d.severity == ERROR and "'A'" in d.message


def test_static_false_branch():
    p = parse_program("""
      program p [int x] {
        in(x);
        x := 1;
        if (x > 5) { x := 2; } else { skip; }
        out(x);
      }
    """)
    d = only(lint_program(p), STATIC_FALSE)
    assert d.severity == WARNING and d.line == 3


def test_stuck_loop_warns_only_without_holes():
    p = parse_program("""
      program p [int x; int y] {
        in(x);
        y := 0;
        while (x > 0) { y := y + 1; }
        out(y);
      }
    """)
    d = only(lint_program(p), STUCK_LOOP)
    assert d.severity == WARNING and d.line == 3
    holey = parse_program("""
      program p [int x; int y] {
        in(x);
        y := 0;
        while (x > 0) { y := [e1]; }
        out(y);
      }
    """)
    assert STUCK_LOOP not in codes(lint_program(holey))


def test_duplicate_io_warning():
    p = parse_program("program p [int x] { in(x); out(x); out(x); }")
    d = only(lint_program(p), DUPLICATE_IO)
    assert d.severity == WARNING and "out" in d.message


def test_dead_store_info_gated_on_holes():
    p = parse_program(
        "program p [int x; int y] { in(x); y := 1; y := x; out(y); }")
    d = only(lint_program(p), DEAD_STORE)
    assert d.severity == INFO and d.line == 2
    holey = parse_program(
        "program p [int x; int y] { in(x); y := 1; y := [e1]; out(y); }")
    assert DEAD_STORE not in codes(lint_program(holey))


def test_template_lint_uses_forward_program_context():
    prog = parse_program("program p [int x; int y] { in(x); y := x + 1; out(y); }")
    inv = parse_program("program q [int x; int y] { x := y - 1; out(x); }")
    # y is only "defined" because the forward program wrote it.
    assert lint_template(prog, inv) == []
    assert USE_BEFORE_DEF in codes(lint_program(inv))


def test_diagnostic_rendering_and_filters():
    d = Diagnostic(code="use-before-def", severity=ERROR,
                   message="'x' is read", line=3, program="p",
                   statement="y := x")
    assert str(d) == "p:3: error [use-before-def] 'x' is read  (in `y := x`)"
    w = Diagnostic(code="stuck-loop", severity=WARNING, message="m")
    i = Diagnostic(code="dead-store", severity=INFO, message="m")
    assert has_errors([d, w]) and not has_errors([w, i])
    assert worst_severity([i, w]) == WARNING
    assert failing([d, w, i]) == [d]
    assert failing([d, w, i], strict=True) == [d, w]
    err = AnalysisError([d])
    assert err.diagnostics == (d,) and "use-before-def" in str(err)


def test_suite_lints_clean_under_strict():
    results = lint_suite()
    assert len(results) >= 14
    dirty = {name: [str(d) for d in failing(diags, strict=True)]
             for name, diags in results.items()
             if failing(diags, strict=True)}
    assert dirty == {}


def test_run_suite_lint_exit_code_and_report():
    lines = []
    code = run_suite_lint(names=["sumi"], strict=True, echo=lines.append)
    assert code == 0
    assert any("sumi: ok" in line for line in lines)
    assert any(line.startswith("suite lint:") for line in lines)


def test_empty_candidate_family_lint_on_synthetic_task():
    from repro.analysis.lint import EMPTY_CANDIDATE_FAMILY, lint_unknowns
    from repro.lang.parser import parse_expr, parse_program
    from repro.pins.spec import InversionSpec
    from repro.pins.task import SynthesisTask

    prog = parse_program("""
    program fwd [int n; int s] {
      in(n); assume(n >= 0); assume(n <= 10);
      s := n + 1; out(s);
    }
    """)
    inv = parse_program("""
    program fwd_inv [int s; int np] { np := [e1]; out(np); }
    """)
    task = SynthesisTask(
        name="fwd", program=prog, inverse=inv,
        phi_e=(parse_expr("0 - s"), parse_expr("0 - s - 1")),
        phi_p=(), spec=InversionSpec(scalar_pairs=(("n", "np"),)))
    diags = lint_unknowns(task)
    assert [d.code for d in diags] == [EMPTY_CANDIDATE_FAMILY]
    assert "e1" in diags[0].message and "all 2 refuted" in diags[0].message
    # A feasible family produces no finding.
    ok_task = SynthesisTask(
        name="fwd", program=prog, inverse=inv,
        phi_e=(parse_expr("s - 1"), parse_expr("0 - s")),
        phi_p=(), spec=InversionSpec(scalar_pairs=(("n", "np"),)))
    assert lint_unknowns(ok_task) == []
