"""CFG construction, dataflow fixpoints, and constant/linear folding."""

from repro.lang import ast
from repro.lang.ast import ArithOp, CmpOp, Sort
from repro.lang.parser import parse_expr, parse_pred, parse_stmt
from repro.analysis.cfg import ASSIGN, BRANCH, IN, OUT, build_cfg
from repro.analysis.dataflow import (
    ENTRY_SITE,
    constant_propagation,
    dead_stores,
    definitely_defined,
    live_variables,
    reaching_definitions,
)
from repro.analysis.fold import Lin, const_expr, const_pred, lin_expr, lin_pred


def node_of(cfg, kind, nth=0):
    return [n for n in cfg.statement_nodes() if n.kind == kind][nth]


# -- CFG shape ---------------------------------------------------------------


def test_cfg_loop_shape_and_lines():
    cfg = build_cfg(parse_stmt("""
      in(x);
      y := x + 1;
      while (y > 0) { y := y - 1; }
      out(y);
    """))
    in_node = node_of(cfg, IN)
    first = node_of(cfg, ASSIGN, 0)
    head = node_of(cfg, BRANCH)
    body = node_of(cfg, ASSIGN, 1)
    out = node_of(cfg, OUT)
    # loc_of convention: in=1, assign=2, guard=3, body assign=4, out=5.
    assert [in_node.line, first.line, head.line, body.line, out.line] == [1, 2, 3, 4, 5]
    assert head.index in body.succs          # back edge
    assert body.index in head.succs
    assert out.index in head.succs           # loop exit
    assert cfg.final in out.succs


def test_cfg_parallel_assign_spans_lines():
    cfg = build_cfg(parse_stmt("x, y := 1, 2; z := x;"))
    first, second = (node_of(cfg, ASSIGN, 0), node_of(cfg, ASSIGN, 1))
    assert first.line == 1 and second.line == 3
    assert first.defs() == frozenset({"x", "y"})
    assert second.uses() == frozenset({"x"})


def test_cfg_branch_arms_rejoin():
    cfg = build_cfg(parse_stmt(
        "if (c > 0) { x := 1; } else { y := 2; } z := 3;"))
    branch = node_of(cfg, BRANCH)
    join = node_of(cfg, ASSIGN, 2)
    assert branch.pred == parse_pred("c > 0")
    assert len(branch.succs) == 2
    assert sorted(join.preds) == sorted(
        [node_of(cfg, ASSIGN, 0).index, node_of(cfg, ASSIGN, 1).index])


def test_cfg_exit_reaches_final():
    cfg = build_cfg(parse_stmt("x := 1; exit; y := 2;"))
    exit_node = [n for n in cfg.statement_nodes() if n.kind == "exit"][0]
    assert cfg.final in exit_node.succs
    # The dead tail after `exit` has no predecessors.
    tail = node_of(cfg, ASSIGN, 1)
    assert tail.preds == []


def test_cfg_diverging_body_keeps_final_reachable():
    cfg = build_cfg(parse_stmt("while (0 < 1) { x := x + 1; }"))
    assert cfg.nodes[cfg.final].preds  # entry fallback edge


# -- dataflow ----------------------------------------------------------------


def test_reaching_definitions_joins_paths():
    cfg = build_cfg(parse_stmt("""
      y := 1;
      while (y < 9) { y := y + 1; }
      out(y);
    """))
    out = node_of(cfg, OUT)
    reaching = reaching_definitions(cfg)
    sites = {site for (var, site) in reaching[out.index] if var == "y"}
    assert sites == {node_of(cfg, ASSIGN, 0).index, node_of(cfg, ASSIGN, 1).index}


def test_reaching_definitions_entry_pseudo_defs():
    cfg = build_cfg(parse_stmt("y := x + 1;"))
    assign = node_of(cfg, ASSIGN)
    bare = reaching_definitions(cfg)
    assert ("x", ENTRY_SITE) not in bare[assign.index]
    seeded = reaching_definitions(cfg, entry_defined=("x",))
    assert ("x", ENTRY_SITE) in seeded[assign.index]


def test_definitely_defined_requires_all_paths():
    cfg = build_cfg(parse_stmt(
        "if (c > 0) { x := 1; } else { y := 2; } z := 3;"))
    join = node_of(cfg, ASSIGN, 2)
    must = definitely_defined(cfg, entry_defined=("c",))
    assert must[join.index] == frozenset({"c"})
    # May-analysis sees both, must-analysis neither.
    may = {v for (v, _s) in reaching_definitions(cfg, ("c",))[join.index]}
    assert {"x", "y"} <= may


def test_live_variables_and_dead_stores():
    cfg = build_cfg(parse_stmt("x := 1; y := x + 1; out(y);"))
    second = node_of(cfg, ASSIGN, 1)
    live = live_variables(cfg)
    assert live[second.index] == frozenset({"x"})
    assert dead_stores(cfg) == {}

    overwritten = build_cfg(parse_stmt("x := 1; x := 2; out(x);"))
    dead = dead_stores(overwritten)
    assert dead == {node_of(overwritten, ASSIGN, 0).index: frozenset({"x"})}


def test_dead_stores_skip_parallel_assigns():
    cfg = build_cfg(parse_stmt("x, y := 1, 2; out(y);"))
    assert dead_stores(cfg) == {}


def test_constant_propagation_folds_and_kills():
    cfg = build_cfg(parse_stmt("""
      x := 1;
      y := x + 2;
      while (y > 0) { x := x + 1; y := y - 1; }
      out(x);
    """))
    head = node_of(cfg, BRANCH)
    consts = constant_propagation(cfg)
    # At the loop head x/y are redefined in the body: no stable constant.
    assert consts[head.index] == {}
    # Before the loop, straight-line facts fold.
    second = node_of(cfg, ASSIGN, 1)
    assert consts[second.index] == {"x": 1}


def test_constant_propagation_entry_facts_and_in_kill():
    cfg = build_cfg(parse_stmt("in(x); y := x + 1;"))
    assign = node_of(cfg, ASSIGN)
    consts = constant_propagation(cfg, entry_consts={"x": 5})
    # `in(x)` re-binds x to a fresh input: the entry fact must die.
    assert consts[assign.index] == {}


# -- folding -----------------------------------------------------------------


def test_lin_expr_same_base_arithmetic():
    env = {"x": Lin("n", 2)}
    assert lin_expr(parse_expr("x + 3"), env) == Lin("n", 5)
    assert lin_expr(parse_expr("x - x"), env) == Lin(None, 0)
    assert lin_expr(parse_expr("0 * y"), env) == Lin(None, 0)
    assert lin_expr(parse_expr("1 * x"), env) == Lin("n", 2)
    assert lin_expr(parse_expr("y * y"), env) is None


def test_lin_expr_division_is_floor_and_guarded():
    div = ast.BinOp(ArithOp.DIV, ast.n(-7), ast.n(2))
    mod = ast.BinOp(ArithOp.MOD, ast.n(-7), ast.n(2))
    assert lin_expr(div, {}) == Lin(None, -4)   # floor toward -inf
    assert lin_expr(mod, {}) == Lin(None, 1)
    by_zero = ast.BinOp(ArithOp.DIV, ast.n(1), ast.n(0))
    assert lin_expr(by_zero, {}) is None


def test_lin_pred_same_base_comparison():
    env = {"i": Lin("n", 1)}
    # i = n+1 vs n: n+1 > n holds for every n.
    assert lin_pred(ast.gt(ast.v("i"), ast.v("n")), env) is True
    assert lin_pred(ast.le(ast.v("i"), ast.v("n")), env) is False
    # Different bases: undecidable.
    assert lin_pred(ast.lt(ast.v("i"), ast.v("m")), env) is None


def test_lin_pred_three_valued_connectives():
    env = {"x": Lin(None, 1)}
    unknown = parse_pred("y < 3")
    assert lin_pred(parse_pred("x = 1 && y < 3"), env) is None
    assert lin_pred(parse_pred("x = 2 && y < 3"), env) is False
    assert lin_pred(parse_pred("x = 1 || y < 3"), env) is True
    assert lin_pred(parse_pred("x = 2 || y < 3"), env) is None
    assert lin_pred(ast.negate(parse_pred("x = 1")), env) is False
    assert lin_pred(unknown, env) is None


def test_const_expr_and_pred_adapters():
    assert const_expr(parse_expr("x * 3 + 1"), {"x": 2}) == 7
    assert const_expr(parse_expr("x + y"), {"x": 2}) is None
    assert const_pred(parse_pred("x < y"), {"x": 1, "y": 2}) is True
    assert const_pred(parse_pred("x < y"), {"x": 1}) is None
