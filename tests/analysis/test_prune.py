"""Static pruning of hole spaces and of symbolic-execution branches."""

import random

import pytest

from repro.lang.ast import Sort
from repro.lang.parser import parse_expr, parse_program, parse_stmt
from repro.lang.transform import desugar_program
from repro.analysis.prune import (
    ENV_FLAG,
    PruneReport,
    prune_hole_space,
    static_pruning_enabled,
)
from repro.pins.algorithm import PinsConfig, build_template, run_pins
from repro.pins.template import HoleSpace
from repro.suite import get_benchmark
from repro.symexec.executor import ExecConfig, SymbolicExecutor

INT = Sort.INT
ARRAY = Sort.ARRAY


def space_dict(space):
    return {name: set(cands) for name, cands in space.expr_holes}


# -- the switch ---------------------------------------------------------------


def test_static_pruning_enabled_resolution(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert static_pruning_enabled() is True
    monkeypatch.setenv(ENV_FLAG, "0")
    assert static_pruning_enabled() is False
    monkeypatch.setenv(ENV_FLAG, "off")
    assert static_pruning_enabled() is False
    # An explicit override always wins over the environment.
    assert static_pruning_enabled(True) is True
    monkeypatch.setenv(ENV_FLAG, "1")
    assert static_pruning_enabled(False) is False


# -- hole-space pruning -------------------------------------------------------


def test_prune_drops_candidates_reading_undefined_scalars():
    body = parse_stmt("y := [e1]; out(y);")
    decls = {"x": INT, "y": INT, "z": INT}
    space = HoleSpace(
        expr_holes=(("e1", (parse_expr("x + 1"), parse_expr("z + 1"))),),
        pred_holes=())
    pruned, report = prune_hole_space(space, body, decls,
                                      entry_defined=("x",))
    assert space_dict(pruned)["e1"] == {parse_expr("x + 1")}
    assert report.indicators_removed == 1
    assert report.indicators_before == 2 and report.indicators_after == 1
    assert "1/2" in report.describe().splitlines()[0]


def test_prune_uses_nested_expected_sorts():
    # The hole sits in an array index: only INT candidates can fit.
    body = parse_stmt("A := upd(A, [e1], x); out(A);")
    decls = {"A": ARRAY, "x": INT}
    space = HoleSpace(
        expr_holes=(("e1", (parse_expr("x"), parse_expr("A"))),),
        pred_holes=())
    pruned, _report = prune_hole_space(space, body, decls,
                                       entry_defined=("A", "x"))
    assert space_dict(pruned)["e1"] == {parse_expr("x")}


def test_prune_pred_holes_by_definedness():
    body = parse_stmt("if ([p1]) { y := x; } else { skip; } out(y);")
    decls = {"x": INT, "y": INT, "w": INT}
    from repro.lang.parser import parse_pred
    space = HoleSpace(
        expr_holes=(),
        pred_holes=(("p1", (parse_pred("x > 0"), parse_pred("w > 0"))),))
    pruned, report = prune_hole_space(space, body, decls,
                                      entry_defined=("x",))
    assert dict(pruned.pred_holes)["p1"] == (parse_pred("x > 0"),)
    assert report.indicators_removed == 1


def test_prune_never_empties_a_hole():
    body = parse_stmt("y := [e1]; out(y);")
    decls = {"y": INT, "z": INT}
    original = (parse_expr("z + 1"),)
    space = HoleSpace(expr_holes=(("e1", original),), pred_holes=())
    pruned, report = prune_hole_space(space, body, decls)
    # Every candidate looked prunable: keep the set, record a note.
    assert space_dict(pruned)["e1"] == set(original)
    assert report.indicators_removed == 0
    assert report.notes and "e1" in report.notes[0]


def test_prune_leaves_auxiliary_holes_alone():
    body = parse_stmt("y := [e1]; out(y);")
    decls = {"y": INT, "z": INT}
    cands = (parse_expr("z + 1"),)
    space = HoleSpace(expr_holes=(("e1", cands), ("rank!L1", cands)),
                      pred_holes=(("inv!L1", ()),))
    pruned, report = prune_hole_space(space, body, decls)
    assert dict(pruned.expr_holes)["rank!L1"] == cands
    assert all(h.hole == "e1" for h in report.holes)


@pytest.mark.static_pruning
def test_build_template_prunes_suite_benchmarks():
    for name in ("runlength", "sumi"):
        bench = get_benchmark(name)
        full = build_template(bench.task, static_pruning=False)
        pruned = build_template(bench.task, static_pruning=True)
        assert full.prune_report is None
        report = pruned.prune_report
        assert isinstance(report, PruneReport)
        assert report.indicators_removed > 0, name
        # Pruned candidate sets are subsets of the full ones.
        full_holes = space_dict(full.space)
        for hole, cands in space_dict(pruned.space).items():
            assert cands <= full_holes[hole], (name, hole)
            assert cands, (name, hole)


# -- executor branch pruning --------------------------------------------------


def exec_program():
    return desugar_program(parse_program("""
      program t [int x; int y] {
        in(x);
        y := 1;
        if (y > 2) { x := 0; } else { exit; }
      }
    """))


def test_executor_skips_statically_false_branch_without_smt():
    ex = SymbolicExecutor(exec_program(), config=ExecConfig(const_pruning=True))
    path = ex.find_path({}, {}, set(), random.Random(0))
    assert path is not None
    assert ex.const_prunes == 1  # the y > 2 arm dies without a solver call
    assert ex.oracle.queries == 1


def test_executor_pruning_disabled_falls_back_to_smt():
    ex = SymbolicExecutor(exec_program(), config=ExecConfig(const_pruning=False))
    path = ex.find_path({}, {}, set(), random.Random(0))
    assert path is not None
    assert ex.const_prunes == 0
    assert ex.oracle.queries == 2


# -- end-to-end A/B -----------------------------------------------------------


@pytest.mark.static_pruning
def test_pins_sumi_identical_results_with_fewer_smt_calls():
    bench = get_benchmark("sumi")
    on = run_pins(bench.task, PinsConfig(seed=1, static_pruning=True))
    off = run_pins(bench.task, PinsConfig(seed=1, static_pruning=False))
    assert on.status == off.status == "stabilized"
    # Compare the synthesized inverses; raw solution keys may differ in
    # auxiliary rank!/inv! holes that never reach the instantiated program.
    from repro.lang.pretty import pretty_program
    assert ({pretty_program(p) for p in on.inverse_programs()}
            == {pretty_program(p) for p in off.inverse_programs()})
    assert on.stats.indicators_pruned > 0
    assert off.stats.indicators_pruned == 0
    assert on.stats.symexec_const_prunes > 0
    assert on.stats.symexec_smt_calls <= off.stats.symexec_smt_calls
